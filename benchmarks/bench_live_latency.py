"""Latency and memory bounds for the live monitoring daemon.

Two claims back ``repro-paper watch`` as a long-running monitor:

* **bounded ingest-to-report lag** — while a capture file grows under
  the daemon, the time from "batch of flows appended and flushed" to
  "those flows visible in the daemon's report" stays under a fixed
  bound (poll interval + analysis time), independent of how much the
  daemon has already ingested;
* **flat memory** — tailing a trace 10x longer leaves peak RSS
  essentially unchanged (the rolling windows retire into a cumulative
  tail and open-flow state is bounded), so the daemon can follow a
  capture far larger than memory.

Each measurement runs in a fresh subprocess (clean RSS baseline): a
writer thread appends flows to a pcap in batches while a
:class:`repro.live.daemon.LiveDaemon` tails it; after every batch the
measurement spin-waits until the daemon's report reflects the batch
(minus the streaming pipeline's small completion buffer) and records
the wall-clock lag.

Standalone::

    python benchmarks/bench_live_latency.py [--json-out out.json]

or via pytest (the CI live-smoke job)::

    pytest benchmarks/bench_live_latency.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

FLOWS_1X = 60
BATCHES = 6
SCALE = 10

#: Worst-case observed ingest-to-report lag per batch (seconds).  The
#: daemon polls every POLL_INTERVAL and analyzes a batch in well under
#: a second; generous headroom for loaded CI machines.
LAG_LIMIT_SECONDS = 5.0
#: Trailing flows a batch may leave buffered inside the streaming
#: pipeline (they complete when later packets or the final flush
#: arrive); the lag wait excludes them.
COMPLETION_SLACK_FLOWS = 16
#: RSS at 10x must stay under this multiple of RSS at 1x.
RSS_RATIO_LIMIT = 2.0
POLL_INTERVAL = 0.02
#: Rolling retention used by the measurement daemon: live windows are
#: capped at RETENTION + 1 (the open window plus the kept history) no
#: matter how long the trace runs.
RETENTION = 8


def flow_packets(i: int, start: float):
    """One short request/response flow ending ~0.15s after ``start``."""
    from repro.packet.headers import FLAG_ACK, FLAG_FIN, FLAG_SYN
    from repro.packet.packet import PacketRecord

    server = (0x0A000001, 80)
    client = (0x64400001 + (i % 0xFFFF), 20000 + (i % 40000))

    def pkt(src, dst, flags=FLAG_ACK, payload=0, dt=0.0, seq=0, ack=0):
        return PacketRecord(
            timestamp=start + dt,
            src_ip=src[0],
            src_port=src[1],
            dst_ip=dst[0],
            dst_port=dst[1],
            seq=seq,
            ack=ack,
            flags=flags,
            payload_len=payload,
        )

    stall = 0.8 if i % 5 == 0 else 0.0
    return [
        pkt(client, server, flags=FLAG_SYN, seq=100),
        pkt(server, client, flags=FLAG_SYN | FLAG_ACK, dt=0.01,
            seq=300, ack=101),
        pkt(client, server, payload=80, dt=0.02, seq=101, ack=301),
        pkt(server, client, payload=1448, dt=0.05 + stall, seq=301,
            ack=181),
        pkt(client, server, dt=0.07 + stall, seq=181, ack=1749),
        pkt(server, client, flags=FLAG_FIN | FLAG_ACK, dt=0.08 + stall,
            seq=1749, ack=181),
        pkt(client, server, flags=FLAG_FIN | FLAG_ACK, dt=0.09 + stall,
            seq=181, ack=1750),
        pkt(server, client, dt=0.10 + stall, seq=1750, ack=182),
    ]


def _measure(flows: int) -> dict:
    """Subprocess body: tail a growing pcap, record per-batch lag."""
    import resource
    import threading

    from repro.live.daemon import LiveDaemon
    from repro.live.sources import PcapTailSource
    from repro.packet.pcap import PcapWriter

    tmp = tempfile.mkdtemp(prefix="bench-live-")
    path = os.path.join(tmp, "grow.pcap")
    writer = PcapWriter(path)
    writer.flush()

    daemon = LiveDaemon(
        PcapTailSource(path),
        window_seconds=10.0,
        retention=RETENTION,  # force expiry: live windows stay bounded
        poll_interval=POLL_INTERVAL,
    )
    result = {}
    thread = threading.Thread(
        target=lambda: result.update(report=daemon.run()), daemon=True
    )
    thread.start()

    batch_size = flows // BATCHES
    lags = []
    written = 0
    for batch in range(BATCHES):
        for j in range(batch_size):
            i = written + j
            for record in flow_packets(i, i * 1.0):
                writer.write(record)
        written += batch_size
        writer.flush()
        appended_at = time.monotonic()
        target = max(0, written - COMPLETION_SLACK_FLOWS)
        while True:
            if daemon.report()["runtime"]["flows"] >= target:
                break
            if time.monotonic() - appended_at > 60:
                raise RuntimeError(
                    f"daemon never caught up to {target} flows"
                )
            time.sleep(0.005)
        lags.append(time.monotonic() - appended_at)
    writer.close()

    daemon.stop()
    thread.join(timeout=60)
    report = result["report"]
    size = os.path.getsize(path)
    os.unlink(path)
    os.rmdir(tmp)
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "flows_written": written,
        "flows_reported": report["runtime"]["flows"],
        "records_in": report["runtime"]["records_in"],
        "pcap_bytes": size,
        "live_windows": len(report["windows"]["windows"]),
        "expired_windows": report["windows"]["expired_windows"],
        "max_lag_seconds": max(lags),
        "mean_lag_seconds": sum(lags) / len(lags),
        "max_rss_kb": rss_kb,
    }


def run_measure(flows: int) -> dict:
    """Run one measurement in a fresh interpreter (clean RSS baseline)."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    out = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--measure",
         str(flows)],
        env=env,
        check=True,
        capture_output=True,
        text=True,
        timeout=600,
    )
    return json.loads(out.stdout)


def compare(flows_1x: int = FLOWS_1X) -> dict:
    one = run_measure(flows_1x)
    ten = run_measure(flows_1x * SCALE)
    return {
        "live_1x": one,
        "live_10x": ten,
        "rss_ratio_10x_over_1x": ten["max_rss_kb"] / one["max_rss_kb"],
    }


def test_live_lag_and_memory_bounded():
    """CI gate: per-batch lag bounded, RSS flat at 10x, windows capped."""
    result = compare()
    one, ten = result["live_1x"], result["live_10x"]
    assert ten["flows_reported"] == SCALE * one["flows_written"]
    for label, run in (("1x", one), ("10x", ten)):
        assert run["flows_reported"] == run["flows_written"]
        assert (
            run["max_lag_seconds"] <= LAG_LIMIT_SECONDS
        ), f"ingest-to-report lag unbounded at {label}: {run}"
    assert ten["live_windows"] <= RETENTION + 1, (
        "rolling retention failed to cap live windows"
    )
    assert ten["expired_windows"] > one["expired_windows"]
    assert (
        result["rss_ratio_10x_over_1x"] <= RSS_RATIO_LIMIT
    ), f"daemon RSS grew with trace length: {result}"
    _print_report(result)


def _print_report(result: dict) -> None:
    one, ten = result["live_1x"], result["live_10x"]
    print()
    print("Live daemon lag + memory (peak RSS via getrusage):")
    for label, run in (("1x ", one), ("10x", ten)):
        print(
            f"  {label}: {run['records_in']:>6} records "
            f"({run['pcap_bytes'] / 1024:7.1f} KiB)  "
            f"lag max {run['max_lag_seconds'] * 1000:6.1f} ms / "
            f"mean {run['mean_lag_seconds'] * 1000:6.1f} ms  "
            f"RSS {run['max_rss_kb'] / 1024:6.1f} MiB  "
            f"windows {run['live_windows']} live "
            f"+{run['expired_windows']} expired"
        )
    print(
        f"  RSS ratio 10x/1x: {result['rss_ratio_10x_over_1x']:.2f} "
        f"(limit {RSS_RATIO_LIMIT}), lag limit {LAG_LIMIT_SECONDS}s"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Prove the live daemon's bounded report lag and flat memory."
        )
    )
    parser.add_argument("--flows", type=int, default=FLOWS_1X)
    parser.add_argument("--json-out", help="write the comparison here")
    parser.add_argument(
        "--measure",
        type=int,
        metavar="FLOWS",
        help="(internal) measure one size in this process and print JSON",
    )
    import _emit

    _emit.add_store_argument(parser)
    args = parser.parse_args(argv)

    if args.measure is not None:
        json.dump(_measure(args.measure), sys.stdout)
        print()
        return 0

    import time as _time

    started = _time.perf_counter()
    result = compare(args.flows)
    _print_report(result)
    _emit.emit_result(
        "live_latency",
        result,
        store_path=args.results_store,
        wall_time=_time.perf_counter() - started,
    )
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(result, fh, indent=2)
        print(f"wrote {args.json_out}")
    one, ten = result["live_1x"], result["live_10x"]
    ok = (
        one["max_lag_seconds"] <= LAG_LIMIT_SECONDS
        and ten["max_lag_seconds"] <= LAG_LIMIT_SECONDS
        and result["rss_ratio_10x_over_1x"] <= RSS_RATIO_LIMIT
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
