"""Ablation: F-RTO spurious-timeout detection (RFC 5682).

Spurious timeouts (the paper's ACK delay/loss stalls) trigger full
go-back-N retransmissions; F-RTO probes with new data first, cutting
the waste when the timeout was spurious.
"""

from repro.experiments.ablation import frto_ablation
from repro.workload.services import get_profile


def test_frto_ablation(benchmark):
    profile = get_profile("cloud_storage")
    result = benchmark.pedantic(
        lambda: frto_ablation(profile, flows=120, seed=21),
        rounds=1,
        iterations=1,
    )
    print()
    print("F-RTO ablation (cloud storage):")
    print(
        f"  retransmission ratio: off {result.retx_ratio_off * 100:.1f}%  "
        f"on {result.retx_ratio_on * 100:.1f}%"
    )
    print(
        f"  timeouts: off {result.timeouts_off}  on {result.timeouts_on}; "
        f"spurious detected by F-RTO: {result.spurious_detected}"
    )
    print(
        f"  mean latency: off {result.mean_latency_off:.2f}s  "
        f"on {result.mean_latency_on:.2f}s"
    )
    # F-RTO must not increase the retransmission ratio.
    assert result.retx_ratio_on <= result.retx_ratio_off * 1.1
