"""Shared fixtures for the benchmark suite.

The paper's measurement section is one dataset analyzed many ways, so
the simulation runs once per pytest session (`dataset` fixture) and
each bench target measures the *analysis* that regenerates its table
or figure, then prints the paper-style output.

Simulation reuse happens at two levels: the session-scoped fixture,
and the on-disk dataset cache (``REPRO_CACHE_DIR``), which carries the
simulation across bench invocations — the second run of this suite
skips simulation entirely.  Set ``REPRO_WORKERS`` to shard cold
simulations across cores (0 = one worker per core); results are
byte-identical at any worker count.

Scale note: `FLOWS_PER_SERVICE` flows per service keeps the whole
bench suite in the minutes range; the shapes reported in
EXPERIMENTS.md are stable at this size.  Crank it up for tighter
percentiles.
"""

import os

import pytest

from repro.config import RunConfig
from repro.experiments.dataset import build_dataset
from repro.experiments.mitigation import (
    compare_policies,
    make_short_flow_profile,
)
from repro.workload.services import get_profile

FLOWS_PER_SERVICE = 150
DATASET_SEED = 20141222

MITIGATION_FLOWS = 300
MITIGATION_SEED = 5


def bench_workers() -> int:
    """Worker processes for cold simulations (``REPRO_WORKERS``)."""
    return int(os.environ.get("REPRO_WORKERS", "0"))


@pytest.fixture(scope="session")
def dataset():
    """The simulated three-service dataset, analyzed by TAPO."""
    return build_dataset(
        flows_per_service=FLOWS_PER_SERVICE,
        seed=DATASET_SEED,
        run=RunConfig(workers=bench_workers()),
    )


@pytest.fixture(scope="session")
def reports(dataset):
    return dataset.reports


@pytest.fixture(scope="session")
def mitigation_comparisons():
    """Table 8/9 policy sweep: web search + cloud-storage short flows."""
    workers = bench_workers()
    web = compare_policies(
        get_profile("web_search"),
        flows=MITIGATION_FLOWS,
        seed=MITIGATION_SEED,
        t1=5,
        short_flow_max=None,
        workers=workers,
    )
    cloud_short = compare_policies(
        make_short_flow_profile(get_profile("cloud_storage")),
        flows=MITIGATION_FLOWS,
        seed=MITIGATION_SEED,
        t1=10,
        short_flow_max=None,
        workers=workers,
    )
    return [web, cloud_short]
