"""Shared fixtures for the benchmark suite.

The paper's measurement section is one dataset analyzed many ways, so
the simulation runs once per pytest session (`dataset` fixture) and
each bench target measures the *analysis* that regenerates its table
or figure, then prints the paper-style output.

Scale note: `FLOWS_PER_SERVICE` flows per service keeps the whole
bench suite in the minutes range; the shapes reported in
EXPERIMENTS.md are stable at this size.  Crank it up for tighter
percentiles.
"""

import pytest

from repro.experiments.dataset import build_dataset
from repro.experiments.mitigation import (
    compare_policies,
    make_short_flow_profile,
)
from repro.workload.services import get_profile

FLOWS_PER_SERVICE = 150
DATASET_SEED = 20141222

MITIGATION_FLOWS = 300
MITIGATION_SEED = 5


@pytest.fixture(scope="session")
def dataset():
    """The simulated three-service dataset, analyzed by TAPO."""
    return build_dataset(
        flows_per_service=FLOWS_PER_SERVICE, seed=DATASET_SEED
    )


@pytest.fixture(scope="session")
def reports(dataset):
    return dataset.reports


@pytest.fixture(scope="session")
def mitigation_comparisons():
    """Table 8/9 policy sweep: web search + cloud-storage short flows."""
    web = compare_policies(
        get_profile("web_search"),
        flows=MITIGATION_FLOWS,
        seed=MITIGATION_SEED,
        t1=5,
        short_flow_max=None,
    )
    cloud_short = compare_policies(
        make_short_flow_profile(get_profile("cloud_storage")),
        flows=MITIGATION_FLOWS,
        seed=MITIGATION_SEED,
        t1=10,
        short_flow_max=None,
    )
    return [web, cloud_short]
