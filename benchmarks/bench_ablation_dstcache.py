"""Ablation: the destination RTT-metrics cache behind Fig. 1's RTOs."""

from repro.experiments.ablation import destination_cache_ablation
from repro.workload.services import get_profile


def test_destination_cache_ablation(benchmark):
    profile = get_profile("cloud_storage")
    result = benchmark.pedantic(
        lambda: destination_cache_ablation(profile, flows=120, seed=13),
        rounds=1,
        iterations=1,
    )
    # Cached metrics keep early-flow RTOs conservative, so far fewer
    # retransmissions fire spuriously.  (The recorded-at-timeout RTO
    # median is confounded by backoff: more spurious timeouts without
    # the cache mean more doubled values in the fresh sample.)
    assert result.spurious_fresh > result.spurious_cached
    assert result.timeouts_fresh > result.timeouts_cached
    print()
    print("Destination-cache ablation (cloud storage):")
    print(
        f"  median RTO at timeout: cached {result.rto_p50_cached:.2f}s   "
        f"fresh {result.rto_p50_fresh:.2f}s"
    )
    print(
        f"  spurious retransmissions: cached {result.spurious_cached}   "
        f"fresh {result.spurious_fresh}"
    )
    print(
        f"  timeouts: cached {result.timeouts_cached}   "
        f"fresh {result.timeouts_fresh}"
    )
