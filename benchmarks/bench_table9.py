"""Table 9: retransmission packet ratio under each policy."""

from repro.experiments.tables import format_table9


def test_table9(benchmark, mitigation_comparisons):
    ratios = benchmark(
        lambda: {
            c.service: c.retransmission_ratios()
            for c in mitigation_comparisons
        }
    )
    for service, by_policy in ratios.items():
        # Probing policies retransmit more than native Linux, never less
        # (the paper's Table 9 ordering).
        assert by_policy["srto"] >= by_policy["native"], service
        assert by_policy["tlp"] >= by_policy["native"], service
    print()
    print(format_table9(mitigation_comparisons))
