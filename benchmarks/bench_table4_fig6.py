"""Figure 6 + Table 4: initial receive windows and zero-window risk."""

from repro.experiments.tables import format_fig6_table4

BINS = [2, 11, 45, 182, 648, 1297, 4096]


def test_fig6_table4(benchmark, reports):
    def compute():
        return {
            name: (
                report.init_rwnd_values(),
                report.zero_rwnd_prob_by_init(BINS),
            )
            for name, report in reports.items()
        }

    data = benchmark(compute)
    init_values, probs = data["software_download"]
    assert min(init_values) <= 11  # old clients with tiny windows exist
    # Table 4's shape: smaller initial windows -> higher zero-rwnd risk.
    small_bins = [probs[b][0] for b in (2, 11) if probs[b][1] > 0]
    large_bins = [probs[b][0] for b in (648, 1297, 4096) if probs[b][1] > 0]
    if small_bins and large_bins:
        assert max(small_bins) >= max(large_bins)
    print()
    print(format_fig6_table4(reports))
