"""Figure 2: the illustrative stalled flow (zero window -> RTT
variation -> timeouts over a 400 KB transfer)."""

from repro.core import StallCause
from repro.experiments.illustrative import run_illustrative_flow


def test_fig2(benchmark):
    result = benchmark.pedantic(
        run_illustrative_flow, rounds=3, iterations=1
    )
    assert result.total_bytes == 400_000
    causes = {s.cause for s in result.analysis.stalls}
    assert StallCause.ZERO_RWND in causes
    assert StallCause.RETRANSMISSION in causes
    print()
    print(
        f"Figure 2: {result.total_bytes} bytes in "
        f"{result.transfer_time:.2f}s, stalled {result.stalled_time:.2f}s "
        f"({result.stalled_time / result.transfer_time * 100:.0f}% of "
        "the transfer)."
    )
    for stall in result.analysis.stalls:
        print("  " + stall.describe())
