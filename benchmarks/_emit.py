"""Shared bench -> longitudinal-results-store emitter.

Every ``bench_*.py`` standalone entry point already writes an ad-hoc
nested JSON result (``--json-out``).  This helper converts that same
dict into one schema-versioned record of
:class:`repro.results.store.ResultsStore`, so longitudinal trend
tracking (``repro-paper results trends``, the daemon's ``/dashboard``)
covers every benchmark without per-bench schema work:

* nested numeric leaves flatten to ``metrics`` (``{"decode":
  {"speedup": 11.2}}`` -> ``decode_speedup``) via
  :func:`repro.results.store.flatten_metrics`;
* the bench's ``config``/``gates`` sections hash into ``config_hash``
  so runs under different settings never alias in a trend series;
* non-numeric context rides in ``meta``.

Usage, inside a bench's ``main()``::

    import _emit
    _emit.add_store_argument(parser)      # --results-store (also
                                          #  honors $REPRO_RESULTS_STORE)
    ...
    _emit.emit_result("tapo_throughput", result,
                      store_path=args.results_store,
                      wall_time=elapsed)
"""

from __future__ import annotations

import os

#: Environment fallback for ``--results-store`` — CI exports this once
#: and every bench in the job appends to the same store.
ENV_VAR = "REPRO_RESULTS_STORE"


def add_store_argument(parser) -> None:
    """Add the shared ``--results-store`` flag to a bench parser."""
    parser.add_argument(
        "--results-store",
        default=os.environ.get(ENV_VAR) or None,
        metavar="PATH",
        help=(
            "append this run to the longitudinal results store at "
            f"PATH (default: ${ENV_VAR} when set, else disabled)"
        ),
    )


def emit_result(
    name: str,
    result: dict,
    *,
    store_path: "str | None" = None,
    wall_time: "float | None" = None,
    kind: str = "bench",
    meta: "dict | None" = None,
):
    """Append one bench result to the store; returns the record.

    No-op (returns ``None``) when no store path is configured, so
    benches behave exactly as before unless opted in.  The producing
    configuration is taken from the result's own ``config`` and
    ``gates`` sections — two runs with different repeat counts or gate
    floors get different ``config_hash`` values.
    """
    store_path = store_path or os.environ.get(ENV_VAR) or None
    if not store_path:
        return None
    from repro.results.store import ResultsStore

    config = {
        key: result[key] for key in ("config", "gates") if key in result
    }
    record_meta = {"bench": name}
    if meta:
        record_meta.update(meta)
    with ResultsStore(store_path) as store:
        record = store.append(
            kind,
            name,
            metrics=result,
            wall_time=wall_time,
            config=config or None,
            meta=record_meta,
        )
    print(f"appended {kind}/{name} record to {store_path}")
    return record
