#!/usr/bin/env python3
"""Chaos smoke for the cross-host cluster (the CI chaos-smoke job).

Runs a 4-shard ``--listen`` coordinator with three real
``repro-paper cluster-worker`` subprocesses dialing in, each through
its own :class:`repro.testing.faults.ChaosProxy`:

* worker A: clean link;
* worker B: 1% of post-handshake chunks truncated mid-frame (each cut
  hard-closes the connection, so B keeps dying and redialing) **and**
  the kill-once seam armed (``REPRO_CLUSTER_KILL_SHARD``), so one
  worker process additionally dies via ``os._exit`` after computing a
  shard but before reporting it;
* worker C: blackholed after the handshake bytes — the connection
  stays open but silent, the half-open shape only the coordinator's
  heartbeat deadline can detect.

The run must complete anyway (reassignment + redial + in-process
fallback), and the merged report must be byte-identical to a
single-process run of the same captures.  A second coordinator pass
with ``--resume`` over the same checkpoint spool must then resume all
4 shards without recomputing any (the checkpoint-reuse guarantee).

Emits a JSON artifact (``--json-out``) with the chaos counters and
gate verdicts; exits non-zero if any gate fails.

Usage::

    python benchmarks/bench_cluster_chaos.py [--outdir chaos-out]
        [--flows 24] [--json-out chaos.json]
"""

from __future__ import annotations

import argparse
import json
import os
import secrets
import subprocess
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
import _emit  # noqa: E402

from repro.cluster import Coordinator, NetConfig, run_cluster  # noqa: E402
from repro.config import RunConfig  # noqa: E402
from repro.packet.pcap import write_pcap  # noqa: E402
from repro.testing.faults import ChaosProxy, NetFaultPlan  # noqa: E402
from repro.testing.traces import generate_trace  # noqa: E402

N_SHARDS = 4
#: Enough to let the ~1.5 KiB handshake + first ASSIGN through before
#: faults arm.
HANDSHAKE_GRACE_BYTES = 2048
#: Lets the ~350-byte handshake through in each direction but swallows
#: the first ASSIGN frame: the worker authenticates, gets marked
#: working, and then never hears (or says) another word — the
#: half-open shape only the heartbeat deadline can detect, engaged
#: by byte count so it does not race the run's speed.
BLACKHOLE_AFTER_BYTES = 400

PLANS = {
    "clean": NetFaultPlan(),
    "truncate": NetFaultPlan(
        truncate_rate=0.01, bytes_before_faults=HANDSHAKE_GRACE_BYTES
    ),
    "blackhole": NetFaultPlan(blackhole_after=BLACKHOLE_AFTER_BYTES),
}


def start_worker(
    address: tuple[str, int],
    secret: str,
    outdir: Path,
    name: str,
    extra_env: dict | None = None,
) -> subprocess.Popen:
    """One real dial-in worker subprocess, logging to ``outdir``."""
    cmd = [
        sys.executable, "-m", "repro.cli", "cluster-worker",
        "--connect", f"{address[0]}:{address[1]}",
        "--cluster-secret", secret,
        "--max-retries", "3",
        "--retry-backoff", "0.2",
        "--backoff-seed", "7",
        "--idle-timeout", "5",
        "--stats",
    ]
    log = (outdir / f"worker-{name}.log").open("w")
    env = {**os.environ, "PYTHONPATH": os.environ.get("PYTHONPATH", "")}
    env.update(extra_env or {})
    return subprocess.Popen(cmd, stdout=log, stderr=log, env=env)


def reap(proc: subprocess.Popen, grace: float = 15.0) -> int | None:
    """Wait for a worker, escalating to terminate/kill; its exit code
    (negative = signal), or None if it had to be killed."""
    try:
        return proc.wait(timeout=grace)
    except subprocess.TimeoutExpired:
        proc.terminate()
        try:
            return proc.wait(timeout=5.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            return None


def run_chaos(outdir: Path, flows: int, seed: int) -> dict:
    """The full scenario; returns the artifact dict (see ``gates``)."""
    capdir = outdir / "captures"
    capdir.mkdir(parents=True, exist_ok=True)
    paths = [capdir / "cap-000.pcap", capdir / "cap-001.pcap"]
    half = flows // 2
    write_pcap(paths[0], generate_trace(seed=seed, flows=half))
    write_pcap(
        paths[1],
        generate_trace(seed=seed + 1, flows=flows - half, start=1100.0),
    )

    secret = secrets.token_hex(16)
    spool = outdir / "spool"
    coordinator = Coordinator(
        paths,
        n_shards=N_SHARDS,
        service="chaos",
        checkpoint_dir=spool,
        heartbeat_interval=0.5,
        heartbeat_deadline=4.0,
        jitter_seed=seed,
        run=RunConfig(max_retries=6, retry_backoff=0.1),
        net=NetConfig(secret=secret, worker_grace=20.0),
    )
    address = coordinator.bind()

    box: dict = {}

    def serve():
        try:
            box["result"] = coordinator.run()
        except BaseException as exc:
            box["error"] = exc

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()

    started = time.monotonic()
    sentinel = outdir / "cluster_kill_once.sentinel"
    sentinel.unlink(missing_ok=True)
    kill_env = {
        # Every worker arms the seam; the O_EXCL sentinel guarantees
        # exactly one death fleet-wide, whoever draws the shard first.
        "REPRO_CLUSTER_KILL_SHARD": "2",
        "REPRO_CLUSTER_KILL_DIR": str(outdir),
    }
    proxies: dict[str, ChaosProxy] = {}
    workers: dict[str, subprocess.Popen] = {}
    try:
        for name, plan in PLANS.items():
            proxy = ChaosProxy(*address, seed=seed, plan=plan)
            proxy.start()
            proxies[name] = proxy
            workers[name] = start_worker(
                proxy.address, secret, outdir, name, extra_env=kill_env,
            )
        thread.join(timeout=180)
        alive = thread.is_alive()
    finally:
        exits = {name: reap(proc) for name, proc in workers.items()}
        for proxy in proxies.values():
            proxy.stop()
    if alive:
        raise RuntimeError("coordinator did not finish within 180s")
    if "error" in box:
        raise box["error"]
    result = box["result"]
    wall_time = time.monotonic() - started

    chaos_json = result.report.to_json()
    single_json = run_cluster(
        paths, shards=1, service="chaos"
    ).report.to_json()

    resumed = Coordinator(
        paths,
        n_shards=N_SHARDS,
        service="chaos",
        checkpoint_dir=spool,
        resume=True,
        net=NetConfig(secret=secret, worker_grace=0.1),
    ).run()

    artifact = {
        "config": {
            "n_shards": N_SHARDS,
            "flows": flows,
            "seed": seed,
            "plans": sorted(PLANS),
        },
        "chaos": {
            "workers_died": result.workers_died,
            "reassignments": result.reassignments,
            "heartbeat_misses": result.heartbeat_misses,
            "auth_failures": result.auth_failures,
            "kill_sentinel": sentinel.exists(),
            "worker_exits": exits,
            "workers_seen": len(result.workers),
            "wall_time": round(wall_time, 3),
        },
        "parity": {
            "flows": len(result.report.flows),
            "byte_identical": chaos_json == single_json,
        },
        "resume": {
            "shards_resumed": resumed.shards_resumed,
            "byte_identical": resumed.report.to_json() == chaos_json,
        },
    }
    artifact["gates"] = {
        "completed_under_chaos": True,
        "byte_identical": artifact["parity"]["byte_identical"],
        "kill_happened": artifact["chaos"]["kill_sentinel"],
        "death_detected": result.workers_died >= 1,
        "reassigned": result.reassignments >= 1,
        "blackhole_detected": result.heartbeat_misses >= 1,
        "resume_skips_all_shards": resumed.shards_resumed == N_SHARDS,
        "resume_byte_identical": artifact["resume"]["byte_identical"],
    }
    (outdir / "report.json").write_text(chaos_json + "\n")
    return artifact


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--outdir", default="chaos-out")
    parser.add_argument("--flows", type=int, default=24)
    parser.add_argument("--seed", type=int, default=20141222)
    parser.add_argument("--json-out", default=None, metavar="PATH")
    _emit.add_store_argument(parser)
    args = parser.parse_args(argv)

    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    started = time.monotonic()
    artifact = run_chaos(outdir, args.flows, args.seed)
    elapsed = time.monotonic() - started

    failed = [k for k, ok in artifact["gates"].items() if not ok]
    payload = json.dumps(artifact, indent=2, sort_keys=True)
    if args.json_out:
        Path(args.json_out).write_text(payload + "\n")
    _emit.emit_result(
        "cluster_chaos", artifact,
        store_path=args.results_store, wall_time=elapsed,
    )
    print(payload)
    if failed:
        print(f"FAIL: gates not met: {', '.join(failed)}", file=sys.stderr)
        return 1
    chaos = artifact["chaos"]
    print(
        f"PASS: survived 1 kill + blackhole + {PLANS['truncate'].truncate_rate:.0%} "
        f"truncation ({chaos['workers_died']} deaths, "
        f"{chaos['reassignments']} reassignments, "
        f"{chaos['heartbeat_misses']} heartbeat misses); "
        "merged report byte-identical, resume recomputed nothing"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
