"""Table 5: breakdown of timeout-retransmission stalls."""

from repro.core.stalls import RetxCause
from repro.experiments.tables import format_table5


def test_table5(benchmark, reports):
    breakdowns = benchmark(
        lambda: {n: r.retx_breakdown() for n, r in reports.items()}
    )
    # Double retransmissions are a top contributor of retransmission
    # stall time for the bulk services (the paper's key finding).
    cloud = breakdowns["cloud_storage"]
    assert cloud[RetxCause.DOUBLE].time_share > 0.1
    total_vol = sum(e.volume_share for e in cloud.values())
    assert abs(total_vol - 1.0) < 1e-6 or total_vol == 0
    print()
    print(format_table5(reports))
