"""TAPO analysis throughput: columnar fast path vs object pipeline.

The paper integrated TAPO into daily production analysis, so its own
speed matters.  This bench measures single-core packets-per-second at
two depths on the simulated ``cloud_storage`` dataset:

* **decode stage** — pcap bytes to analyzable packet data.  The object
  path materializes one :class:`~repro.packet.packet.PacketRecord` per
  packet; the columnar path decodes slabs straight into
  :class:`~repro.packet.columnar.PacketColumns` parallel arrays.  This
  is where the ~10x win lives.
* **end to end** — ``Tapo.analyze_pcap`` with and without
  ``columnar``.  The dataset is deliberately stall-heavy (that is the
  paper's point), so most flows trip the first-pass screen and fall
  back to the object oracle; the end-to-end gain is therefore modest
  and honest.  Reports must be byte-identical either way.

Results go to ``BENCH_tapo.json`` for the CI ``perf-smoke`` job, which
gates on the floors and ratios below.

Standalone::

    python benchmarks/bench_tapo_throughput.py --json-out BENCH_tapo.json

or via pytest (the CI perf-smoke job)::

    pytest benchmarks/bench_tapo_throughput.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import pytest

FLOWS = 150
SEED = 20141222
#: Best-of count.  Machine noise on shared runners easily swings a
#: single run by 20%; five repeats keep the best-of stable enough for
#: the ratio gates.
REPEATS = 5

#: Absolute single-core floors, in kpps.  The old bench gated the
#: object pipeline at 20 kpps end to end; the columnar default raises
#: that floor, and the decode stage gets its own (much higher) one.
#: Both leave wide headroom under locally measured rates so CI
#: machine jitter does not flake the job.
E2E_FLOOR_KPPS = 25.0
DECODE_FLOOR_KPPS = 300.0
#: The tentpole claim: columnar decode is at least 10x the object
#: decode on the same core and the same capture.
DECODE_SPEEDUP_MIN = 10.0
#: Regression gate: the columnar default may never cost more than 20%
#: end to end versus the object pipeline, even on fallback-heavy input.
E2E_REGRESSION_RATIO = 0.8


def build_pcap(path) -> int:
    """Write the merged cloud_storage capture; return its packet count.

    All per-flow traces are interleaved into one time-sorted capture —
    the shape a real server-side tap produces.
    """
    from repro.config import RunConfig
    from repro.experiments.dataset import build_dataset
    from repro.packet.pcap import PcapWriter

    workers = int(os.environ.get("REPRO_WORKERS", "0"))
    dataset = build_dataset(
        flows_per_service=FLOWS,
        seed=SEED,
        services=("cloud_storage",),
        run=RunConfig(workers=workers),
    )
    packets = []
    for trace in dataset.runs["cloud_storage"].traces:
        packets.extend(trace)
    packets.sort(key=lambda record: record.timestamp)
    with PcapWriter(path) as writer:
        for record in packets:
            writer.write(record)
    return len(packets)


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def measure(path: str, packets: int, repeats: int = REPEATS) -> dict:
    """Time both pipelines at both depths; verify report parity.

    Both sides of each comparison are timed *interleaved*, round by
    round, and the speedup gate uses the median of per-round ratios:
    shared machines drift by 2x over tens of seconds, and timing one
    side in a fast window and the other in a slow one would make the
    ratio meaningless.  Adjacent measurements see the same machine.
    """
    from repro.config import AnalysisConfig
    from repro.core import ServiceReport, Tapo
    from repro.packet import columnar as columnar_module
    from repro.packet.pcap import PcapReader

    def decode_objects():
        with PcapReader(path) as reader:
            count = 0
            for _record in reader.iter_records():
                count += 1
        assert count == packets

    def decode_columns():
        with PcapReader(path) as reader:
            count = 0
            for cols in reader.iter_columns():
                count += len(cols)
        assert count == packets

    tapo_cols = Tapo(config=AnalysisConfig())
    tapo_objs = Tapo(config=AnalysisConfig(columnar=False))
    results: dict[str, list] = {}

    def e2e_columnar():
        results["columnar"] = tapo_cols.analyze_pcap(path)

    def e2e_object():
        results["object"] = tapo_objs.analyze_pcap(path)

    rounds: dict[str, list[float]] = {
        "decode_obj": [],
        "decode_col": [],
        "e2e_obj": [],
        "e2e_col": [],
    }

    def round_pair(obj_key, obj_fn, col_key, col_fn, flip):
        # Alternate which side goes first so a monotonic machine
        # slowdown biases the per-round ratio both ways and cancels
        # in the median, instead of always flattering one side.
        if flip:
            rounds[col_key].append(_timed(col_fn))
            rounds[obj_key].append(_timed(obj_fn))
        else:
            rounds[obj_key].append(_timed(obj_fn))
            rounds[col_key].append(_timed(col_fn))

    for i in range(repeats):
        round_pair("decode_obj", decode_objects,
                   "decode_col", decode_columns, i % 2 == 1)
    for i in range(repeats):
        round_pair("e2e_obj", e2e_object,
                   "e2e_col", e2e_columnar, i % 2 == 1)
    decode_obj_s = min(rounds["decode_obj"])
    decode_col_s = min(rounds["decode_col"])
    e2e_obj_s = min(rounds["e2e_obj"])
    e2e_col_s = min(rounds["e2e_col"])
    decode_speedup = _median(
        [o / c for o, c in zip(rounds["decode_obj"], rounds["decode_col"])]
    )
    e2e_speedup = _median(
        [o / c for o, c in zip(rounds["e2e_obj"], rounds["e2e_col"])]
    )

    fast = ServiceReport("cloud_storage", flows=results["columnar"])
    slow = ServiceReport("cloud_storage", flows=results["object"])
    parity = fast.to_json() == slow.to_json()

    def kpps(seconds: float) -> float:
        return packets / seconds / 1e3

    return {
        "dataset": {
            "service": "cloud_storage",
            "flows": FLOWS,
            "packets": packets,
            "seed": SEED,
        },
        "config": {
            "repeats": repeats,
            "numpy_accelerated": columnar_module._np is not None,
            "python": sys.version.split()[0],
        },
        "decode": {
            "object_kpps": kpps(decode_obj_s),
            "columnar_kpps": kpps(decode_col_s),
            "speedup": decode_speedup,
        },
        "end_to_end": {
            "object_kpps": kpps(e2e_obj_s),
            "columnar_kpps": kpps(e2e_col_s),
            "speedup": e2e_speedup,
            "fast_flows": tapo_cols.fast_flows,
            "fallback_flows": tapo_cols.fallback_flows,
        },
        "parity": parity,
        "gates": {
            "e2e_floor_kpps": E2E_FLOOR_KPPS,
            "decode_floor_kpps": DECODE_FLOOR_KPPS,
            "decode_speedup_min": DECODE_SPEEDUP_MIN,
            "e2e_regression_ratio": E2E_REGRESSION_RATIO,
        },
    }


def check_gates(result: dict) -> list[str]:
    """Return a list of human-readable gate violations (empty = pass)."""
    failures = []
    decode, e2e = result["decode"], result["end_to_end"]
    if not result["parity"]:
        failures.append("columnar and object reports are not byte-identical")
    if decode["speedup"] < DECODE_SPEEDUP_MIN:
        failures.append(
            f"decode speedup {decode['speedup']:.1f}x < "
            f"{DECODE_SPEEDUP_MIN}x"
        )
    if decode["columnar_kpps"] < DECODE_FLOOR_KPPS:
        failures.append(
            f"columnar decode {decode['columnar_kpps']:.0f} kpps < "
            f"{DECODE_FLOOR_KPPS} kpps floor"
        )
    if e2e["columnar_kpps"] < E2E_FLOOR_KPPS:
        failures.append(
            f"columnar end-to-end {e2e['columnar_kpps']:.0f} kpps < "
            f"{E2E_FLOOR_KPPS} kpps floor"
        )
    if e2e["speedup"] < E2E_REGRESSION_RATIO:
        failures.append(
            f"columnar end-to-end regressed below "
            f"{E2E_REGRESSION_RATIO}x the object pipeline"
        )
    return failures


def _print_report(result: dict) -> None:
    decode, e2e = result["decode"], result["end_to_end"]
    print()
    print(
        f"TAPO throughput ({result['dataset']['packets']} packets, "
        f"single core, best of {result['config']['repeats']}, "
        f"pre-PR object decode baseline ~126 kpps on the reference "
        f"machine):"
    )
    print(
        f"  decode:     object {decode['object_kpps']:8.0f} kpps   "
        f"columnar {decode['columnar_kpps']:8.0f} kpps   "
        f"({decode['speedup']:.1f}x)"
    )
    print(
        f"  end-to-end: object {e2e['object_kpps']:8.0f} kpps   "
        f"columnar {e2e['columnar_kpps']:8.0f} kpps   "
        f"({e2e['speedup']:.2f}x, {e2e['fast_flows']} fast / "
        f"{e2e['fallback_flows']} fallback flows)"
    )
    print(f"  report parity: {result['parity']}")


# -- pytest entry points (the CI perf-smoke gate) ------------------------
@pytest.fixture(scope="module")
def bench_result(tmp_path_factory):
    path = tmp_path_factory.mktemp("tapo") / "cloud_storage.pcap"
    packets = build_pcap(path)
    result = measure(str(path), packets)
    _print_report(result)
    return result


def test_reports_byte_identical(bench_result):
    assert bench_result["parity"]


def test_columnar_decode_throughput(bench_result):
    decode = bench_result["decode"]
    assert decode["speedup"] >= DECODE_SPEEDUP_MIN, decode
    assert decode["columnar_kpps"] >= DECODE_FLOOR_KPPS, decode


def test_end_to_end_throughput(bench_result):
    e2e = bench_result["end_to_end"]
    assert e2e["columnar_kpps"] >= E2E_FLOOR_KPPS, e2e
    assert e2e["speedup"] >= E2E_REGRESSION_RATIO, e2e
    # Both pipeline branches must actually have run.
    assert e2e["fast_flows"] > 0
    assert e2e["fallback_flows"] > 0


def main(argv: list[str] | None = None) -> int:
    import _emit

    parser = argparse.ArgumentParser(
        description="Measure TAPO single-core throughput, both pipelines."
    )
    parser.add_argument("--json-out", help="write BENCH_tapo.json here")
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument(
        "--pcap", help="reuse an existing capture instead of simulating"
    )
    _emit.add_store_argument(parser)
    args = parser.parse_args(argv)

    import tempfile

    started = time.perf_counter()
    if args.pcap:
        from repro.packet.pcap import PcapReader

        with PcapReader(args.pcap) as reader:
            packets = sum(1 for _ in reader.iter_records())
        result = measure(args.pcap, packets, args.repeats)
    else:
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "cloud_storage.pcap")
            packets = build_pcap(path)
            result = measure(path, packets, args.repeats)

    _print_report(result)
    _emit.emit_result(
        "tapo_throughput",
        result,
        store_path=args.results_store,
        wall_time=time.perf_counter() - started,
    )
    failures = check_gates(result)
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    if args.json_out:
        out_dir = os.path.dirname(args.json_out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.json_out, "w") as fh:
            json.dump(result, fh, indent=2)
        print(f"wrote {args.json_out}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
