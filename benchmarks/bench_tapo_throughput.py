"""TAPO analysis throughput: packets per second through the full
pipeline (the paper integrated TAPO into daily production analysis, so
its own speed matters)."""

from repro.core.tapo import Tapo


def test_tapo_throughput(benchmark, dataset):
    service = "cloud_storage"
    traces = dataset.runs[service].traces
    packets = sum(len(t) for t in traces)
    tapo = Tapo()

    def analyze_all():
        total = 0
        for trace in traces:
            total += len(tapo.analyze_packets(trace))
        return total

    flows = benchmark(analyze_all)
    assert flows == len(traces)
    rate = packets / benchmark.stats.stats.mean
    print(f"\nTAPO throughput: {rate / 1e3:.0f} kpps over {packets} packets")
    assert rate > 20_000  # comfortably faster than line-rate capture replay
