"""Figure 1: per-flow RTT and RTO distributions; RTO/RTT ratio."""

from repro.core.report import percentile
from repro.experiments.tables import format_fig1


def test_fig1(benchmark, reports):
    def series():
        return {
            name: (
                r.rtt_values(),
                r.rto_values(),
                r.rto_over_rtt_values(),
            )
            for name, r in reports.items()
        }

    data = benchmark(series)
    for name, (rtts, rtos, ratios) in data.items():
        assert rtts, name
        if rtos:
            # The paper's headline: RTO well above the RTT.
            assert percentile(rtos, 50) > percentile(rtts, 50)
        if ratios:
            assert percentile(ratios, 50) > 1.5
    print()
    print(format_fig1(reports))
