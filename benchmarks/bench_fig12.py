"""Figure 12: in-flight size when continuous-loss stalls happen."""

from repro.experiments.tables import format_fig12


def test_fig12(benchmark, reports):
    values = benchmark(
        lambda: {
            n: r.continuous_loss_in_flights() for n, r in reports.items()
        }
    )
    collected = [v for series in values.values() for v in series]
    # Continuous loss requires at least a 4-packet window by definition.
    assert all(v >= 4 for v in collected)
    print()
    print(format_fig12(reports))
