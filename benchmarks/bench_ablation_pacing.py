"""Ablation: pacing as the continuous-loss mitigation (Sec. 4.3)."""

from repro.experiments.ablation import pacing_ablation
from repro.workload.services import get_profile


def test_pacing_ablation(benchmark):
    profile = get_profile("cloud_storage")
    result = benchmark.pedantic(
        lambda: pacing_ablation(profile, flows=120, seed=9),
        rounds=1,
        iterations=1,
    )
    # Pacing must not increase burst-kill (continuous loss) stalls.
    assert (
        result.continuous_loss_paced <= result.continuous_loss_unpaced + 1
    )
    print()
    print("Pacing ablation (cloud storage):")
    print(
        f"  stalls:          unpaced {result.stalls_unpaced:>4}   "
        f"paced {result.stalls_paced:>4}"
    )
    print(
        f"  continuous loss: unpaced {result.continuous_loss_unpaced:>4}   "
        f"paced {result.continuous_loss_paced:>4}"
    )
    print(
        f"  retx stall time: unpaced {result.retx_time_unpaced:>7.1f}s "
        f"paced {result.retx_time_paced:>7.1f}s"
    )
    print(
        f"  mean latency:    unpaced {result.mean_latency_unpaced:>7.2f}s "
        f"paced {result.mean_latency_paced:>7.2f}s"
    )
