"""Trace-overhead smoke: tracing *off* must cost ≤2% of the hot loop.

The flight-recorder hooks ride the simulator's hottest paths (the
event loop, the sender's ACK clock, the RTO estimator), guarded by a
single ``is None`` check each.  This bench pins that guarantee:

* ``measure_loop_overhead`` times the hooked :class:`EventLoop` with
  ``observer=None`` against an inline replica of the pre-hook loop
  (same heap, same tie-breaking, no observer branches) on a
  chained-timer workload, min-of-repeats;
* ``measure_flow_overhead`` times whole-flow simulation with tracing
  off vs on — informational (tracing *on* is allowed to cost more).

Under pytest (the CI smoke job) the untraced ratio is asserted at
``REPRO_TRACE_OVERHEAD_MAX`` (default 1.02, i.e. ≤2%)::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py \
        --events 200000 --repeats 5 --json-out out/trace_overhead.json
"""

from __future__ import annotations

import argparse
import heapq
import itertools
import json
import os
import sys
import time

from repro.netsim.engine import EventLoop, _Event
from repro.experiments.runner import run_flow
from repro.workload.generator import generate_flows
from repro.workload.services import get_profile

DEFAULT_EVENTS = 200_000
DEFAULT_REPEATS = 9
DEFAULT_FLOWS = 6
DEFAULT_SEED = 20141222

#: Default ceiling on (hooked, untraced) / baseline wall time.
OVERHEAD_BUDGET = 1.02


class _BaselineTimer:
    """Pre-hook ``Timer``: cancel just flags the event."""

    __slots__ = ("_engine", "_event")

    def __init__(self, engine, event):
        self._engine = engine
        self._event = event

    def cancel(self):
        self._event.cancelled = True


class _BaselineLoop:
    """Replica of the event loop as it was before the observer hooks.

    Kept faithful on purpose: same ``_Event``, same heap discipline,
    same ``Timer``-handle allocation, same sanity checks and local
    bindings in ``run`` — the only difference from :class:`EventLoop`
    is the absence of the observer branches, so the timing delta
    isolates exactly what the hooks cost when unset.
    """

    __slots__ = ("now", "_heap", "_tie", "events_run")

    def __init__(self, start_time: float = 0.0):
        self.now = start_time
        self._heap = []
        self._tie = itertools.count()
        self.events_run = 0

    def schedule_at(self, when, callback):
        if when < self.now:
            raise RuntimeError("cannot schedule in the past")
        event = _Event(when, next(self._tie), callback)
        heapq.heappush(self._heap, event)
        return _BaselineTimer(self, event)

    def schedule(self, delay, callback):
        if delay < 0:
            raise RuntimeError("negative delay")
        return self.schedule_at(self.now + delay, callback)

    def run(self):
        heap = self._heap
        heappop = heapq.heappop
        while True:
            while heap and heap[0].cancelled:
                heappop(heap)
            if not heap:
                return
            event = heappop(heap)
            self.now = event.time
            self.events_run += 1
            event.callback()


def _drive(loop, events: int) -> None:
    """Chained-timer workload: each event schedules the next, and every
    fourth event also schedules-and-cancels a decoy timer (the pattern
    an ACK-clocked sender re-arming its RTO produces)."""
    remaining = events

    def tick():
        nonlocal remaining
        remaining -= 1
        if remaining <= 0:
            return
        loop.schedule(0.001, tick)
        if remaining % 4 == 0:
            loop.schedule(1.0, tick).cancel()

    loop.schedule(0.0, tick)
    loop.run()


def _timed_run(make_loop, events: int) -> float:
    # CPU time, not wall time: the loops are pure CPU, and process_time
    # is immune to scheduler preemption on noisy CI runners.
    loop = make_loop()
    started = time.process_time()
    _drive(loop, events)
    return time.process_time() - started


def measure_loop_overhead(
    events: int = DEFAULT_EVENTS, repeats: int = DEFAULT_REPEATS
) -> dict:
    """Hooked-but-untraced loop vs the pre-hook baseline replica.

    Baseline and hooked runs are interleaved (so scheduler/thermal
    drift lands on both sides equally) and the minimum of ``repeats``
    runs is compared — min-of-N converges on the true floor, which is
    what the ≤2% budget is about; means would fold CI noise in.
    """
    _timed_run(_BaselineLoop, events)  # warmup (heap, allocator, JIT-y caches)
    _timed_run(EventLoop, events)
    baseline = hooked = float("inf")
    for _ in range(repeats):
        baseline = min(baseline, _timed_run(_BaselineLoop, events))
        hooked = min(hooked, _timed_run(EventLoop, events))
    return {
        "events": events,
        "repeats": repeats,
        "baseline_s": baseline,
        "hooked_untraced_s": hooked,
        "overhead_ratio": hooked / baseline if baseline > 0 else 1.0,
    }


def measure_flow_overhead(
    flows: int = DEFAULT_FLOWS, seed: int = DEFAULT_SEED
) -> dict:
    """Whole-flow simulation, tracing off vs on (informational)."""

    def simulate(trace: bool) -> float:
        scenarios = list(
            generate_flows(get_profile("web_search"), flows, seed=seed)
        )
        started = time.perf_counter()
        for scenario in scenarios:
            run_flow(scenario, trace=trace)
        return time.perf_counter() - started

    off = min(simulate(False) for _ in range(3))
    on = min(simulate(True) for _ in range(3))
    return {
        "flows": flows,
        "untraced_s": off,
        "traced_s": on,
        "traced_ratio": on / off if off > 0 else 1.0,
    }


def overhead_budget() -> float:
    return float(
        os.environ.get("REPRO_TRACE_OVERHEAD_MAX", str(OVERHEAD_BUDGET))
    )


# ----------------------------------------------------------------------
# pytest entry points (the CI trace-overhead smoke job)
# ----------------------------------------------------------------------
def test_untraced_loop_overhead_within_budget():
    # Best of three measurement rounds: a noise spike fails one round,
    # a real hook regression fails all three.
    budget = overhead_budget()
    report = None
    for _ in range(3):
        report = measure_loop_overhead()
        if report["overhead_ratio"] <= budget:
            return
    assert report["overhead_ratio"] <= budget, (
        f"untraced hook overhead {report['overhead_ratio']:.4f}x exceeds "
        f"budget {budget:.2f}x: {report}"
    )


def test_untraced_flow_results_identical():
    """The ratio above is only meaningful if results stay identical."""

    def signature():
        scenario = list(
            generate_flows(get_profile("web_search"), 1, seed=DEFAULT_SEED)
        )[0]
        result = run_flow(scenario, trace=True)
        return [
            (p.timestamp, p.seq, p.ack, p.flags, p.payload_len)
            for p in result.packets
        ]

    first = signature()
    assert first == signature()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=DEFAULT_EVENTS)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--flows", type=int, default=DEFAULT_FLOWS)
    parser.add_argument("--json-out", help="also write the report here")
    import _emit

    _emit.add_store_argument(parser)
    args = parser.parse_args(argv)

    import time as _time

    started = _time.perf_counter()
    report = {
        "loop": measure_loop_overhead(args.events, args.repeats),
        "flow": measure_flow_overhead(args.flows),
        "budget": overhead_budget(),
    }
    _emit.emit_result(
        "trace_overhead",
        report,
        store_path=args.results_store,
        wall_time=_time.perf_counter() - started,
    )
    text = json.dumps(report, indent=2)
    print(text)
    if args.json_out:
        out_dir = os.path.dirname(args.json_out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.json_out, "w") as handle:
            handle.write(text)
    ratio = report["loop"]["overhead_ratio"]
    print(
        f"untraced hook overhead: {100 * (ratio - 1):+.2f}% "
        f"(budget +{100 * (overhead_budget() - 1):.0f}%)",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
