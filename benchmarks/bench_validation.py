"""Classifier validation: TAPO inference vs simulator ground truth.

The paper can only bound its unknowns (4-8 % undetermined stalls); the
simulator knows the truth, so this target quantifies how much of the
sender's state a passive tool recovers.
"""

from repro.experiments.validation import validate_inference
from repro.workload.services import get_profile


def test_inference_validation(benchmark):
    result = benchmark.pedantic(
        lambda: validate_inference(
            get_profile("cloud_storage"), flows=100, seed=3
        ),
        rounds=1,
        iterations=1,
    )
    assert result.retx_exact  # wire events must match exactly
    assert result.exact_share > 0.85
    assert result.timeout_error < 0.2
    assert result.fast_retx_error < 0.2
    print()
    print("TAPO inference vs ground truth (cloud storage):")
    print(f"  flows exactly matched:  {result.exact_share * 100:.0f}%")
    print(
        f"  timeouts:  true {result.true_timeouts}  "
        f"inferred {result.inferred_timeouts}  "
        f"(err {result.timeout_error * 100:.1f}%)"
    )
    print(
        f"  fast retx: true {result.true_fast_retx}  "
        f"inferred {result.inferred_fast_retx}  "
        f"(err {result.fast_retx_error * 100:.1f}%)"
    )
    print(
        f"  retransmissions: true {result.true_retx}  "
        f"inferred {result.inferred_retx}  (exact)"
    )
