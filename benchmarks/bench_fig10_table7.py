"""Figure 10 + Table 7: tail-retransmission stall context."""

from repro.experiments.tables import format_fig10_table7


def test_fig10_table7(benchmark, reports):
    def compute():
        return {
            name: (
                report.tail_positions(),
                report.tail_in_flights(),
                report.tail_state_shares(),
            )
            for name, report in reports.items()
        }

    data = benchmark(compute)
    for name, (positions, in_flights, _states) in data.items():
        # Fig. 10b: tails happen with few packets in flight.
        if in_flights:
            assert min(in_flights) <= 4, name
    print()
    print(format_fig10_table7(reports))
