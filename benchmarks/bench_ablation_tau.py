"""Ablation: TAPO's stall threshold multiplier (the paper's tau = 2)."""

from repro.experiments.ablation import tau_sensitivity
from repro.workload.services import get_profile


def test_tau_sensitivity(benchmark):
    profile = get_profile("software_download")
    points = benchmark.pedantic(
        lambda: tau_sensitivity(
            profile, flows=100, seed=17, taus=(1.5, 2.0, 3.0, 4.0)
        ),
        rounds=1,
        iterations=1,
    )
    # More permissive thresholds detect (weakly) fewer stalls.
    counts = [p.stalls for p in points]
    assert counts == sorted(counts, reverse=True)
    print()
    print("TAPO threshold sensitivity (software download):")
    print(f"{'tau':>5}{'stalls':>8}{'stalled_s':>11}{'flows_w_stalls':>16}")
    for p in points:
        print(
            f"{p.tau:>5.1f}{p.stalls:>8}{p.stalled_time:>11.1f}"
            f"{p.flows_with_stalls:>16}"
        )
