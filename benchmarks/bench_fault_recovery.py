"""Fault-recovery gate: 1% corruption must not cost 1% of the report.

The robustness contract (ISSUE: fault-tolerant ingestion & analysis)
is that a trace with ~1% of its pcap records damaged, analyzed under a
lenient error budget, still yields **>= 99% of its flows analyzed**,
with flows untouched by the damage classified byte-identically to the
clean baseline, and with every loss accounted for (skipped-flow
records + fault counters — nothing silent).

The trace is synthetic and deterministic; corruption comes from the
seedable harness (:func:`repro.testing.faults.corrupt_pcap_records`),
so a seed fully reproduces a run.  CI runs a fixed 3-seed matrix.

Standalone::

    python benchmarks/bench_fault_recovery.py [--seed N] [--json-out f]

or via pytest (the CI fault-smoke job)::

    pytest benchmarks/bench_fault_recovery.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path

FLOWS = 150
DATA_SEGMENTS = 8
CORRUPT_FRACTION = 0.01
DEFAULT_SEED = 20141222  # first day of the paper's collection window

#: The gate: fraction of baseline flows that must still be analyzed.
COVERAGE_FLOOR = 0.99
#: Flows whose packets were untouched must classify identically.
CLEAN_MATCH_FLOOR = 1.0


def synthetic_packets(flows: int = FLOWS):
    """Deterministic request/response flows, one second apart."""
    from repro.packet.headers import FLAG_ACK, FLAG_FIN, FLAG_SYN
    from repro.packet.packet import PacketRecord

    server = (0x0A000001, 80)
    mss = 1448
    for i in range(flows):
        start = i * 1.0
        client = (0x64400001 + i, 20000 + (i % 40000))

        def pkt(src, dst, flags=FLAG_ACK, payload=0, dt=0.0, seq=0, ack=0):
            return PacketRecord(
                timestamp=start + dt,
                src_ip=src[0],
                src_port=src[1],
                dst_ip=dst[0],
                dst_port=dst[1],
                seq=seq,
                ack=ack,
                flags=flags,
                payload_len=payload,
            )

        yield pkt(client, server, flags=FLAG_SYN, seq=100)
        yield pkt(server, client, flags=FLAG_SYN | FLAG_ACK, dt=0.01,
                  seq=300, ack=101)
        yield pkt(client, server, payload=80, dt=0.02, seq=101, ack=301)
        seq = 301
        for j in range(DATA_SEGMENTS):
            dt = 0.03 + j * 0.002
            yield pkt(server, client, payload=mss, dt=dt, seq=seq, ack=181)
            yield pkt(client, server, dt=dt + 0.001, seq=181, ack=seq + mss)
            seq += mss
        dt = 0.03 + DATA_SEGMENTS * 0.002
        yield pkt(server, client, flags=FLAG_FIN | FLAG_ACK, dt=dt,
                  seq=seq, ack=181)
        yield pkt(client, server, flags=FLAG_FIN | FLAG_ACK, dt=dt + 0.001,
                  seq=181, ack=seq + 1)
        yield pkt(server, client, dt=dt + 0.002, seq=seq + 1, ack=182)


def _signature(analysis):
    return (
        analysis.data_packets,
        analysis.retransmissions,
        round(analysis.duration, 9),
        tuple(
            (round(s.start_time, 9), s.cause, s.retx_cause)
            for s in analysis.stalls
        ),
    )


def run_recovery(seed: int = DEFAULT_SEED, flows: int = FLOWS) -> dict:
    """Corrupt, analyze, and score one seed; returns the JSON record."""
    from repro.config import AnalysisConfig
    from repro.core.tapo import Tapo
    from repro.errors import ErrorBudget, ReproError
    from repro.obs.metrics import MetricsRegistry
    from repro.packet.flow import FlowKey
    from repro.packet.pcap import PcapReader, write_pcap
    from repro.testing.faults import corrupt_pcap_records

    with tempfile.TemporaryDirectory(prefix="repro_fault_") as tmp:
        clean = Path(tmp) / "clean.pcap"
        packets = list(synthetic_packets(flows))
        write_pcap(clean, packets)
        bad = Path(tmp) / "bad.pcap"
        plan = corrupt_pcap_records(
            clean, bad, fraction=CORRUPT_FRACTION, seed=seed
        )
        # Which flows own a damaged record (clean record order == packet
        # order): those are allowed to diverge; the rest must not.
        damaged_keys = {
            FlowKey.from_packet(packets[index]) for index in plan.damaged
        }

        baseline = {
            a.flow.key: _signature(a)
            for a in Tapo().analyze_pcap(str(clean))
        }

        registry = MetricsRegistry()
        tapo = Tapo(AnalysisConfig(errors=ErrorBudget.lenient()))
        report = tapo.report_stream(str(bad), service="bench", registry=registry)

        got = {a.flow.key: _signature(a) for a in report.flows}
        clean_keys = [k for k in baseline if k not in damaged_keys]
        matched = sum(
            1 for k in clean_keys if got.get(k) == baseline[k]
        )
        strict_raised = False
        try:
            with PcapReader(bad) as reader:
                list(reader)
        except ReproError:
            strict_raised = True

        return {
            "seed": seed,
            "flows_total": len(baseline),
            "records_total": plan.records_total,
            "records_damaged": plan.records_damaged,
            "damage_plan": plan.describe(),
            "flows_analyzed": len(report.flows),
            "flows_skipped": len(report.skipped),
            "coverage": len(report.flows) / max(1, len(baseline)),
            "clean_flows": len(clean_keys),
            "clean_flows_matched": matched,
            "clean_match_rate": matched / max(1, len(clean_keys)),
            "corrupt_records_counted": registry[
                "repro_fault_corrupt_records_total"
            ].value,
            "resyncs": registry["repro_fault_resyncs_total"].value,
            "strict_raised_typed": strict_raised,
        }


def _gate(result: dict) -> list[str]:
    """Return the list of violated acceptance criteria (empty = pass)."""
    failures = []
    if result["coverage"] < COVERAGE_FLOOR:
        failures.append(
            f"coverage {result['coverage']:.4f} < {COVERAGE_FLOOR}"
        )
    if result["clean_match_rate"] < CLEAN_MATCH_FLOOR:
        failures.append(
            f"clean-flow match rate {result['clean_match_rate']:.4f} "
            f"< {CLEAN_MATCH_FLOOR}"
        )
    if not result["strict_raised_typed"]:
        failures.append("strict mode did not raise a typed ReproError")
    if result["corrupt_records_counted"] < 1:
        failures.append("framing damage left no trace in the registry")
    return failures


def _print_report(result: dict) -> None:
    print()
    print(f"Fault recovery (seed {result['seed']}):")
    print(
        f"  damaged {result['records_damaged']}/{result['records_total']} "
        f"records -> analyzed {result['flows_analyzed']}/"
        f"{result['flows_total']} flows "
        f"(coverage {result['coverage']:.2%}, "
        f"{result['flows_skipped']} quarantined)"
    )
    print(
        f"  untouched flows identical to baseline: "
        f"{result['clean_flows_matched']}/{result['clean_flows']} "
        f"({result['clean_match_rate']:.2%})"
    )
    print(
        f"  counters: {result['corrupt_records_counted']} corrupt records, "
        f"{result['resyncs']} resyncs; strict raised typed error: "
        f"{result['strict_raised_typed']}"
    )


def test_fault_recovery_gate():
    """CI gate: 1% corruption, >=99% coverage, clean flows identical."""
    seed = int(os.environ.get("REPRO_FAULT_SEED", str(DEFAULT_SEED)))
    result = run_recovery(seed=seed)
    failures = _gate(result)
    assert not failures, f"{failures}: {result}"
    _print_report(result)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Prove >=99% flow coverage on a 1%-corrupted trace."
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--flows", type=int, default=FLOWS)
    parser.add_argument("--json-out", help="write the result record here")
    import _emit

    _emit.add_store_argument(parser)
    args = parser.parse_args(argv)

    import time as _time

    started = _time.perf_counter()
    result = run_recovery(seed=args.seed, flows=args.flows)
    _print_report(result)
    _emit.emit_result(
        "fault_recovery",
        result,
        store_path=args.results_store,
        wall_time=_time.perf_counter() - started,
    )
    if args.json_out:
        out_dir = os.path.dirname(args.json_out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.json_out, "w") as fh:
            json.dump(result, fh, indent=2)
        print(f"wrote {args.json_out}")
    failures = _gate(result)
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.path.insert(
        0,
        os.path.abspath(
            os.path.join(os.path.dirname(__file__), os.pardir, "src")
        ),
    )
    sys.exit(main())
