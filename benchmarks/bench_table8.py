"""Table 8: latency reduction of TLP and S-RTO over native Linux."""

from repro.experiments.tables import format_table8


def test_table8(benchmark, mitigation_comparisons):
    def reductions():
        out = {}
        for comparison in mitigation_comparisons:
            for policy in ("tlp", "srto"):
                for q in comparison.QUANTILES:
                    out[(comparison.service, policy, q)] = (
                        comparison.reduction(policy, q)
                    )
                out[(comparison.service, policy, "mean")] = (
                    comparison.mean_reduction(policy)
                )
        return out

    data = benchmark(reductions)
    # The paper's headline shape: S-RTO improves the cloud-storage
    # short-flow tail more than TLP does.
    cloud = next(
        c for c in mitigation_comparisons if "cloud" in c.service
    )
    assert cloud.reduction("srto", 95) <= cloud.reduction("tlp", 95)
    assert cloud.mean_reduction("srto") <= cloud.mean_reduction("tlp")
    print()
    print(format_table8(mitigation_comparisons))
