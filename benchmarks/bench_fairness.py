"""Fairness at a shared bottleneck (the paper's Sec. 5.2 claim).

"[The retransmission increase] does not hurt TCP fairness as the
congestion window still follows the AIMD principle" — verified by
competing an S-RTO flow against a native flow through one queue.
"""

from repro.experiments.fairness import run_fairness


def test_srto_fairness(benchmark):
    result = benchmark.pedantic(
        lambda: run_fairness(
            policy="srto",
            policy_kwargs={"t1": 10, "t2": 5},
            duration=30.0,
            seed=2,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"S-RTO vs native at a shared bottleneck: "
        f"share {result.policy_share * 100:.1f}% / "
        f"{(1 - result.policy_share) * 100:.1f}%, "
        f"Jain index {result.jain_index:.4f}"
    )
    assert 0.35 <= result.policy_share <= 0.65
    assert result.jain_index > 0.95
