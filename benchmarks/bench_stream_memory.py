"""Memory-bound proof for the streaming pipeline.

The streaming contract (``Tapo.analyze_stream``) is that memory is
bounded by *open-flow state*, not trace length.  This bench generates
a synthetic trace of sequential short flows lazily (never holding the
trace in memory), streams it through the full demux→analyze pipeline
in a subprocess, and records the subprocess's peak RSS
(``getrusage.ru_maxrss``) plus the demuxer's own
``peak_buffered_packets`` counter.

Run at 1x and 10x the packet count, both must stay flat:

* ``peak_buffered_packets`` is the demuxer's actual buffer bound and
  must not grow with trace length at all (sequential flows close and
  evict before the next one ramps up);
* peak RSS may wiggle with allocator noise but must stay well below
  proportional growth (the batch path, measured for contrast, holds
  every packet and grows linearly).

Standalone::

    python benchmarks/bench_stream_memory.py [--json-out out.json]

or via pytest (the CI streaming-smoke job)::

    pytest benchmarks/bench_stream_memory.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time

FLOWS_1X = 100
DATA_SEGMENTS = 48  # per flow: 3 handshake + 2*48 data/ack + 3 close
SCALE = 10

#: RSS at 10x must stay under this multiple of RSS at 1x.  Linear
#: growth would show up as ~6-8x (interpreter baseline amortizes the
#: rest); flat streaming lands near 1.0.
RSS_RATIO_LIMIT = 2.0
#: The demuxer's packet buffer bound must not grow with trace length.
BUFFER_RATIO_LIMIT = 1.2


def synthetic_packets(flows: int):
    """Lazily yield ``flows`` sequential request/response flows.

    Each flow: handshake, ``DATA_SEGMENTS`` server data segments (each
    acked), clean FIN close.  Flows are spaced 1 trace-second apart so
    each closes (and is evicted) before the next ramps up.
    """
    from repro.packet.headers import FLAG_ACK, FLAG_FIN, FLAG_SYN
    from repro.packet.packet import PacketRecord

    server = (0x0A000001, 80)
    mss = 1448
    for i in range(flows):
        start = i * 1.0
        client = (0x64400001 + (i % 0xFFFF), 20000 + (i % 40000))

        def pkt(src, dst, flags=FLAG_ACK, payload=0, dt=0.0, seq=0, ack=0):
            return PacketRecord(
                timestamp=start + dt,
                src_ip=src[0],
                src_port=src[1],
                dst_ip=dst[0],
                dst_port=dst[1],
                seq=seq,
                ack=ack,
                flags=flags,
                payload_len=payload,
            )

        yield pkt(client, server, flags=FLAG_SYN, seq=100)
        yield pkt(server, client, flags=FLAG_SYN | FLAG_ACK, dt=0.01,
                  seq=300, ack=101)
        yield pkt(client, server, payload=80, dt=0.02, seq=101, ack=301)
        seq = 301
        for j in range(DATA_SEGMENTS):
            dt = 0.03 + j * 0.002
            yield pkt(server, client, payload=mss, dt=dt, seq=seq, ack=181)
            yield pkt(client, server, dt=dt + 0.001, seq=181, ack=seq + mss)
            seq += mss
        dt = 0.03 + DATA_SEGMENTS * 0.002
        yield pkt(server, client, flags=FLAG_FIN | FLAG_ACK, dt=dt,
                  seq=seq, ack=181)
        yield pkt(client, server, flags=FLAG_FIN | FLAG_ACK, dt=dt + 0.001,
                  seq=181, ack=seq + 1)
        yield pkt(server, client, dt=dt + 0.002, seq=seq + 1, ack=182)


def packets_per_flow() -> int:
    return 6 + 2 * DATA_SEGMENTS


def _measure(flows: int, mode: str) -> dict:
    """Subprocess body: stream (or batch) ``flows`` flows, report peaks."""
    import resource

    from repro.config import RunConfig
    from repro.core.tapo import Tapo
    from repro.packet.flow import StreamStats

    stats = StreamStats()
    analyzed = 0
    stalls = 0
    if mode == "stream":
        for analysis in Tapo().analyze_stream(
            synthetic_packets(flows),
            run=RunConfig(workers=1, idle_timeout=30.0, close_linger=2.0),
            stats=stats,
        ):
            analyzed += 1
            stalls += len(analysis.stalls)
    else:  # batch contrast: holds the whole trace
        for analysis in Tapo().analyze_packets(synthetic_packets(flows)):
            analyzed += 1
            stalls += len(analysis.stalls)
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "mode": mode,
        "flows": analyzed,
        "packets": flows * packets_per_flow(),
        "stalls": stalls,
        "max_rss_kb": rss_kb,
        "peak_buffered_packets": stats.peak_buffered_packets,
        "peak_active_flows": stats.peak_active_flows,
    }


def run_measure(flows: int, mode: str = "stream") -> dict:
    """Run one measurement in a fresh interpreter (clean RSS baseline)."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    out = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--measure",
         str(flows), "--mode", mode],
        env=env,
        check=True,
        capture_output=True,
        text=True,
        timeout=600,
    )
    return json.loads(out.stdout)


def compare(flows_1x: int = FLOWS_1X) -> dict:
    one = run_measure(flows_1x)
    ten = run_measure(flows_1x * SCALE)
    batch_ten = run_measure(flows_1x * SCALE, mode="batch")
    return {
        "stream_1x": one,
        "stream_10x": ten,
        "batch_10x": batch_ten,
        "rss_ratio_10x_over_1x": ten["max_rss_kb"] / one["max_rss_kb"],
        "buffer_ratio_10x_over_1x": (
            ten["peak_buffered_packets"]
            / max(1, one["peak_buffered_packets"])
        ),
    }


def test_stream_memory_stays_flat():
    """CI gate: 10x packets, flat RSS and flat demux buffer."""
    result = compare()
    one, ten = result["stream_1x"], result["stream_10x"]
    assert ten["flows"] == SCALE * one["flows"]
    assert (
        result["buffer_ratio_10x_over_1x"] <= BUFFER_RATIO_LIMIT
    ), f"demux buffer grew with trace length: {result}"
    assert (
        result["rss_ratio_10x_over_1x"] <= RSS_RATIO_LIMIT
    ), f"peak RSS grew superlinearly with trace length: {result}"
    _print_report(result)


def _print_report(result: dict) -> None:
    one, ten, batch = (
        result["stream_1x"],
        result["stream_10x"],
        result["batch_10x"],
    )
    print()
    print("Streaming memory bound (peak RSS via getrusage):")
    print(
        f"  stream 1x:  {one['packets']:>8} packets  "
        f"{one['max_rss_kb'] / 1024:7.1f} MiB  "
        f"peak buffered {one['peak_buffered_packets']} pkts"
    )
    print(
        f"  stream 10x: {ten['packets']:>8} packets  "
        f"{ten['max_rss_kb'] / 1024:7.1f} MiB  "
        f"peak buffered {ten['peak_buffered_packets']} pkts"
    )
    print(
        f"  batch  10x: {batch['packets']:>8} packets  "
        f"{batch['max_rss_kb'] / 1024:7.1f} MiB  (holds whole trace)"
    )
    print(
        f"  RSS ratio 10x/1x: {result['rss_ratio_10x_over_1x']:.2f} "
        f"(limit {RSS_RATIO_LIMIT}), buffer ratio: "
        f"{result['buffer_ratio_10x_over_1x']:.2f} "
        f"(limit {BUFFER_RATIO_LIMIT})"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Prove the streaming pipeline's flat memory profile."
    )
    parser.add_argument("--flows", type=int, default=FLOWS_1X)
    parser.add_argument("--json-out", help="write the comparison here")
    parser.add_argument(
        "--measure",
        type=int,
        metavar="FLOWS",
        help="(internal) measure one size in this process and print JSON",
    )
    parser.add_argument(
        "--mode", choices=("stream", "batch"), default="stream"
    )
    import _emit

    _emit.add_store_argument(parser)
    args = parser.parse_args(argv)

    if args.measure is not None:
        json.dump(_measure(args.measure, args.mode), sys.stdout)
        print()
        return 0

    started = time.perf_counter()
    result = compare(args.flows)
    _print_report(result)
    _emit.emit_result(
        "stream_memory",
        result,
        store_path=args.results_store,
        wall_time=time.perf_counter() - started,
    )
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(result, fh, indent=2)
        print(f"wrote {args.json_out}")
    ok = (
        result["buffer_ratio_10x_over_1x"] <= BUFFER_RATIO_LIMIT
        and result["rss_ratio_10x_over_1x"] <= RSS_RATIO_LIMIT
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
