"""Figure 3: ratio of stalled time to transmission time."""

from repro.experiments.tables import format_fig3


def test_fig3(benchmark, reports):
    ratios = benchmark(
        lambda: {n: r.stall_ratio_values() for n, r in reports.items()}
    )
    for name, values in ratios.items():
        stalled = sum(1 for v in values if v > 0)
        assert stalled > 0, name
    print()
    print(format_fig3(reports))
