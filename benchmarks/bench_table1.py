"""Table 1: flow-level statistics of the dataset."""

from repro.experiments.tables import format_table1


def bench_table1(benchmark, reports):
    rows = benchmark(
        lambda: {name: r.table1_row() for name, r in reports.items()}
    )
    assert all(row["flows"] > 0 for row in rows.values())
    # Flow-size ordering of the paper's Table 1.
    assert (
        rows["cloud_storage"]["avg_flow_size"]
        > rows["software_download"]["avg_flow_size"]
        > rows["web_search"]["avg_flow_size"]
    )
    print()
    print(format_table1(reports))


def test_table1(benchmark, reports):
    bench_table1(benchmark, reports)
