"""Figure 7 + Table 6: double-retransmission stall context."""

from repro.core.stalls import DoubleKind
from repro.experiments.tables import format_fig7_table6


def test_fig7_table6(benchmark, reports):
    def compute():
        return {
            name: (
                report.double_positions(),
                report.double_in_flights(),
                report.double_kind_shares(),
            )
            for name, report in reports.items()
        }

    data = benchmark(compute)
    positions, in_flights, kinds = data["cloud_storage"]
    if positions:
        # Fig. 7a: roughly uniform positions — doubles appear both in
        # the first and the second half of flows.
        assert any(p < 0.5 for p in positions)
        shares = kinds[DoubleKind.F_DOUBLE] + kinds[DoubleKind.T_DOUBLE]
        assert shares == 0.0 or abs(shares - 1.0) < 1e-9
    print()
    print(format_fig7_table6(reports))
