"""Table 3: percentage of stalls by cause (volume and time)."""

from repro.core.stalls import StallCause
from repro.experiments.tables import format_table3


def test_table3(benchmark, reports):
    breakdowns = benchmark(
        lambda: {n: r.cause_breakdown() for n, r in reports.items()}
    )
    # Shape checks against the paper: retransmission stalls are a
    # leading network-side contributor of stall time everywhere, and
    # zero-window stalls concentrate in software download.
    for name, bd in breakdowns.items():
        assert bd[StallCause.RETRANSMISSION].time_share > 0.05, name
    soft = breakdowns["software_download"][StallCause.ZERO_RWND]
    cloud = breakdowns["cloud_storage"][StallCause.ZERO_RWND]
    assert soft.volume_share > cloud.volume_share
    print()
    print(format_table3(reports))
