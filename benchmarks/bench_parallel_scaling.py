"""Parallel-runner scaling: speedup at 1/2/4/8 workers + cache warmup.

Emits a JSON speedup report (stdout, and optionally a file) so the
bench trajectory tooling can track parallel efficiency over time::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py \
        --flows 60 --workers 1 2 4 8 --json-out out/scaling.json

Under pytest this runs at a small flow count as a smoke test: every
worker count must produce byte-identical results, and the report must
be well-formed.  Wall-clock assertions are deliberately absent — CI
machines (and this one) may have a single core.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

from repro.experiments.dataset import build_dataset, clear_cache
from repro.experiments.parallel import run_flows_parallel
from repro.workload.generator import generate_flows
from repro.workload.services import get_profile

DEFAULT_WORKERS = (1, 2, 4, 8)
DEFAULT_FLOWS = 60
DEFAULT_SEED = 20141222


def _trace_signature(run) -> list:
    return [
        [
            (p.timestamp, p.seq, p.ack, p.flags, p.payload_len, p.window)
            for p in result.packets
        ]
        for result in run.results
    ]


def measure_scaling(
    flows: int = DEFAULT_FLOWS,
    seed: int = DEFAULT_SEED,
    service: str = "web_search",
    workers_list: tuple[int, ...] = DEFAULT_WORKERS,
) -> dict:
    """Run the same seeded batch at each worker count; report speedups.

    Scenarios are regenerated per run (loss/jitter models are stateful),
    which is exactly what every caller of the runner does.
    """
    profile = get_profile(service)
    points = []
    baseline_wall = None
    baseline_signature = None
    for workers in workers_list:
        scenarios = generate_flows(profile, flows, seed=seed)
        run = run_flows_parallel(scenarios, workers=workers)
        metrics = run.metrics
        signature = _trace_signature(run)
        if baseline_signature is None:
            baseline_wall = metrics.wall_time
            baseline_signature = signature
        identical = signature == baseline_signature
        points.append(
            {
                "workers": workers,
                "wall_time": metrics.wall_time,
                "speedup": (
                    baseline_wall / metrics.wall_time
                    if metrics.wall_time > 0
                    else 0.0
                ),
                "events_per_sec": metrics.events_per_sec,
                "packets_per_sec": metrics.packets_per_sec,
                "utilization": metrics.utilization,
                "chunks": metrics.chunks,
                "chunks_retried": metrics.chunks_retried,
                "identical_to_serial": identical,
            }
        )
    return {
        "bench": "parallel_scaling",
        "service": service,
        "flows": flows,
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "baseline_wall_time": baseline_wall,
        "points": points,
    }


def measure_cache(flows: int = 20, seed: int = DEFAULT_SEED) -> dict:
    """Cold build vs warm on-disk load, in a throwaway cache dir."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        saved = os.environ.get("REPRO_CACHE_DIR")
        os.environ["REPRO_CACHE_DIR"] = tmp
        try:
            clear_cache()
            started = time.perf_counter()
            build_dataset(flows_per_service=flows, seed=seed)
            cold = time.perf_counter() - started
            clear_cache()  # drop the memo; disk entry remains
            started = time.perf_counter()
            build_dataset(flows_per_service=flows, seed=seed)
            warm = time.perf_counter() - started
        finally:
            clear_cache()
            if saved is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = saved
    return {
        "flows_per_service": flows,
        "cold_wall_time": cold,
        "warm_wall_time": warm,
        "speedup": cold / warm if warm > 0 else 0.0,
    }


def build_report(
    flows: int,
    seed: int,
    service: str,
    workers_list: tuple[int, ...],
    cache_flows: int,
) -> dict:
    report = measure_scaling(
        flows=flows, seed=seed, service=service, workers_list=workers_list
    )
    report["cache"] = measure_cache(flows=cache_flows, seed=seed)
    return report


def test_parallel_scaling_smoke():
    """Tiny-scale smoke run: report shape + cross-worker identity."""
    flows = int(os.environ.get("REPRO_BENCH_SCALING_FLOWS", "8"))
    report = build_report(
        flows=flows,
        seed=DEFAULT_SEED,
        service="web_search",
        workers_list=(1, 2, 4),
        cache_flows=4,
    )
    assert report["points"][0]["workers"] == 1
    assert all(point["identical_to_serial"] for point in report["points"])
    assert all(point["wall_time"] > 0 for point in report["points"])
    assert report["cache"]["warm_wall_time"] > 0
    # Warm loads must beat re-simulating; huge margins on real machines,
    # so 1x is a safe floor even for this tiny smoke size.
    assert report["cache"]["speedup"] > 1.0
    print()
    print(json.dumps(report, indent=2))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Parallel flow-runner scaling benchmark"
    )
    parser.add_argument("--flows", type=int, default=DEFAULT_FLOWS)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--service", default="web_search")
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=list(DEFAULT_WORKERS),
        help="worker counts to measure (default: 1 2 4 8)",
    )
    parser.add_argument("--cache-flows", type=int, default=20)
    parser.add_argument(
        "--json-out", help="also write the JSON report to this path"
    )
    import _emit

    _emit.add_store_argument(parser)
    args = parser.parse_args(argv)
    started = time.perf_counter()
    report = build_report(
        flows=args.flows,
        seed=args.seed,
        service=args.service,
        workers_list=tuple(args.workers),
        cache_flows=args.cache_flows,
    )
    _emit.emit_result(
        "parallel_scaling",
        report,
        store_path=args.results_store,
        wall_time=time.perf_counter() - started,
    )
    text = json.dumps(report, indent=2)
    print(text)
    if args.json_out:
        out_dir = os.path.dirname(args.json_out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.json_out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.json_out}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
