"""Parallel-runner scaling: speedup at 1/2/4/8 workers + cache warmup.

Emits a JSON speedup report (stdout, and optionally a file) so the
bench trajectory tooling can track parallel efficiency over time::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py \
        --flows 60 --workers 1 2 4 8 --json-out out/scaling.json

``--cluster`` adds a second section measuring the sharded analysis
cluster (``repro.cluster``) at 1/2/4 shards over a generated capture;
every point asserts the merged report is byte-identical to the
single-process run.  ``--min-cluster-speedup X`` turns the best
cluster speedup into a hard gate (exit 1 below X) — CI passes 3.0 on
multi-core runners.

Under pytest this runs at a small flow count as a smoke test: every
worker count must produce byte-identical results, and the report must
be well-formed.  Wall-clock assertions are deliberately absent — CI
machines (and this one) may have a single core.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

from repro.experiments.dataset import build_dataset, clear_cache
from repro.experiments.parallel import run_flows_parallel
from repro.workload.generator import generate_flows
from repro.workload.services import get_profile

DEFAULT_WORKERS = (1, 2, 4, 8)
DEFAULT_FLOWS = 60
DEFAULT_SEED = 20141222
DEFAULT_SHARDS = (1, 2, 4)
DEFAULT_CLUSTER_FLOWS = 48


def _trace_signature(run) -> list:
    return [
        [
            (p.timestamp, p.seq, p.ack, p.flags, p.payload_len, p.window)
            for p in result.packets
        ]
        for result in run.results
    ]


def measure_scaling(
    flows: int = DEFAULT_FLOWS,
    seed: int = DEFAULT_SEED,
    service: str = "web_search",
    workers_list: tuple[int, ...] = DEFAULT_WORKERS,
) -> dict:
    """Run the same seeded batch at each worker count; report speedups.

    Scenarios are regenerated per run (loss/jitter models are stateful),
    which is exactly what every caller of the runner does.
    """
    profile = get_profile(service)
    points = []
    baseline_wall = None
    baseline_signature = None
    for workers in workers_list:
        scenarios = generate_flows(profile, flows, seed=seed)
        run = run_flows_parallel(scenarios, workers=workers)
        metrics = run.metrics
        signature = _trace_signature(run)
        if baseline_signature is None:
            baseline_wall = metrics.wall_time
            baseline_signature = signature
        identical = signature == baseline_signature
        points.append(
            {
                "workers": workers,
                "wall_time": metrics.wall_time,
                "speedup": (
                    baseline_wall / metrics.wall_time
                    if metrics.wall_time > 0
                    else 0.0
                ),
                "events_per_sec": metrics.events_per_sec,
                "packets_per_sec": metrics.packets_per_sec,
                "utilization": metrics.utilization,
                "chunks": metrics.chunks,
                "chunks_retried": metrics.chunks_retried,
                "identical_to_serial": identical,
            }
        )
    return {
        "bench": "parallel_scaling",
        "service": service,
        "flows": flows,
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "baseline_wall_time": baseline_wall,
        "points": points,
    }


def measure_cluster_scaling(
    flows: int = DEFAULT_CLUSTER_FLOWS,
    seed: int = DEFAULT_SEED,
    shards_list: tuple[int, ...] = DEFAULT_SHARDS,
    transport: str = "pipe",
) -> dict:
    """Time the sharded cluster at each shard count over one capture.

    Byte-identity against the single-process report is asserted at
    every point — a scaling number for a wrong answer is worthless.
    """
    from repro.cluster import run_cluster
    from repro.core.tapo import Tapo
    from repro.packet.pcap import write_pcap
    from repro.testing.traces import generate_trace

    with tempfile.TemporaryDirectory(prefix="repro-bench-cluster-") as tmp:
        pcap = os.path.join(tmp, "trace.pcap")
        write_pcap(pcap, generate_trace(seed=seed, flows=flows))

        started = time.perf_counter()
        from repro.core.report import ServiceReport

        reference = ServiceReport(service="bench")
        for analysis in Tapo().analyze_pcap(pcap):
            reference.add(analysis)
        baseline_wall = time.perf_counter() - started
        reference_json = reference.canonical_sort().to_json()

        packets = sum(
            len(analysis.flow.packets) for analysis in reference.flows
        )
        points = []
        for shards in shards_list:
            started = time.perf_counter()
            result = run_cluster(
                pcap, shards=shards, transport=transport, service="bench"
            )
            wall = time.perf_counter() - started
            identical = result.report.to_json() == reference_json
            if not identical:
                raise AssertionError(
                    f"{shards}-shard report diverged from single-process"
                )
            points.append(
                {
                    "shards": shards,
                    "wall_time": wall,
                    "speedup": baseline_wall / wall if wall > 0 else 0.0,
                    "packets_per_sec": packets / wall if wall > 0 else 0.0,
                    "workers_died": result.workers_died,
                    "identical_to_single_process": identical,
                }
            )
    return {
        "flows": flows,
        "seed": seed,
        "transport": transport,
        "cpu_count": os.cpu_count(),
        "single_process_wall_time": baseline_wall,
        "points": points,
        "best_speedup": max(point["speedup"] for point in points),
    }


def measure_cache(flows: int = 20, seed: int = DEFAULT_SEED) -> dict:
    """Cold build vs warm on-disk load, in a throwaway cache dir."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        saved = os.environ.get("REPRO_CACHE_DIR")
        os.environ["REPRO_CACHE_DIR"] = tmp
        try:
            clear_cache()
            started = time.perf_counter()
            build_dataset(flows_per_service=flows, seed=seed)
            cold = time.perf_counter() - started
            clear_cache()  # drop the memo; disk entry remains
            started = time.perf_counter()
            build_dataset(flows_per_service=flows, seed=seed)
            warm = time.perf_counter() - started
        finally:
            clear_cache()
            if saved is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = saved
    return {
        "flows_per_service": flows,
        "cold_wall_time": cold,
        "warm_wall_time": warm,
        "speedup": cold / warm if warm > 0 else 0.0,
    }


def build_report(
    flows: int,
    seed: int,
    service: str,
    workers_list: tuple[int, ...],
    cache_flows: int,
    cluster: bool = False,
    cluster_flows: int = DEFAULT_CLUSTER_FLOWS,
    shards_list: tuple[int, ...] = DEFAULT_SHARDS,
    transport: str = "pipe",
) -> dict:
    report = measure_scaling(
        flows=flows, seed=seed, service=service, workers_list=workers_list
    )
    report["cache"] = measure_cache(flows=cache_flows, seed=seed)
    if cluster:
        report["cluster"] = measure_cluster_scaling(
            flows=cluster_flows,
            seed=seed,
            shards_list=shards_list,
            transport=transport,
        )
    return report


def test_parallel_scaling_smoke():
    """Tiny-scale smoke run: report shape + cross-worker identity."""
    flows = int(os.environ.get("REPRO_BENCH_SCALING_FLOWS", "8"))
    report = build_report(
        flows=flows,
        seed=DEFAULT_SEED,
        service="web_search",
        workers_list=(1, 2, 4),
        cache_flows=4,
    )
    assert report["points"][0]["workers"] == 1
    assert all(point["identical_to_serial"] for point in report["points"])
    assert all(point["wall_time"] > 0 for point in report["points"])
    assert report["cache"]["warm_wall_time"] > 0
    # Warm loads must beat re-simulating; huge margins on real machines,
    # so 1x is a safe floor even for this tiny smoke size.
    assert report["cache"]["speedup"] > 1.0
    print()
    print(json.dumps(report, indent=2))


def test_cluster_scaling_smoke():
    """Cluster section at tiny scale: byte-parity at every shard count.

    No wall-clock assertion — measure_cluster_scaling raises on any
    divergence, so a passing run IS the correctness signal; speedup is
    only gated via --min-cluster-speedup on multi-core CI runners.
    """
    report = measure_cluster_scaling(
        flows=int(os.environ.get("REPRO_BENCH_CLUSTER_FLOWS", "12")),
        seed=DEFAULT_SEED,
        shards_list=(1, 2),
    )
    assert [point["shards"] for point in report["points"]] == [1, 2]
    assert all(
        point["identical_to_single_process"] for point in report["points"]
    )
    assert all(point["workers_died"] == 0 for point in report["points"])
    print()
    print(json.dumps(report, indent=2))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Parallel flow-runner scaling benchmark"
    )
    parser.add_argument("--flows", type=int, default=DEFAULT_FLOWS)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--service", default="web_search")
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=list(DEFAULT_WORKERS),
        help="worker counts to measure (default: 1 2 4 8)",
    )
    parser.add_argument("--cache-flows", type=int, default=20)
    parser.add_argument(
        "--cluster",
        action="store_true",
        help="also measure repro.cluster sharded scaling",
    )
    parser.add_argument(
        "--cluster-flows", type=int, default=DEFAULT_CLUSTER_FLOWS
    )
    parser.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=list(DEFAULT_SHARDS),
        help="shard counts for the cluster section (default: 1 2 4)",
    )
    parser.add_argument(
        "--transport",
        choices=("pipe", "socket"),
        default="pipe",
        help="cluster coordinator/worker transport",
    )
    parser.add_argument(
        "--min-cluster-speedup",
        type=float,
        default=None,
        help=(
            "fail (exit 1) if the best cluster speedup is below this; "
            "implies --cluster.  CI passes 3.0 on multi-core runners"
        ),
    )
    parser.add_argument(
        "--json-out", help="also write the JSON report to this path"
    )
    import _emit

    _emit.add_store_argument(parser)
    args = parser.parse_args(argv)
    cluster = args.cluster or args.min_cluster_speedup is not None
    started = time.perf_counter()
    report = build_report(
        flows=args.flows,
        seed=args.seed,
        service=args.service,
        workers_list=tuple(args.workers),
        cache_flows=args.cache_flows,
        cluster=cluster,
        cluster_flows=args.cluster_flows,
        shards_list=tuple(args.shards),
        transport=args.transport,
    )
    _emit.emit_result(
        "parallel_scaling",
        report,
        store_path=args.results_store,
        wall_time=time.perf_counter() - started,
    )
    text = json.dumps(report, indent=2)
    print(text)
    if args.json_out:
        out_dir = os.path.dirname(args.json_out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.json_out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.json_out}", file=sys.stderr)
    if args.min_cluster_speedup is not None:
        best = report["cluster"]["best_speedup"]
        if best < args.min_cluster_speedup:
            print(
                f"FAIL: best cluster speedup {best:.2f}x < required "
                f"{args.min_cluster_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
        print(
            f"cluster speedup gate passed: {best:.2f}x >= "
            f"{args.min_cluster_speedup:.2f}x",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
