"""Matrix-runner throughput: the tournament must stay cheap to re-run.

The scenario × policy matrix is only useful if a full sweep fits in a
coffee break and a resumed sweep is near-instant, so this bench pins
both properties on a reduced grid:

* **cold throughput** — every cell simulated from scratch; gated at a
  ``REPRO_BENCH_MATRIX_FLOOR`` cells-per-minute floor (wall clock);
* **warm resume** — the identical sweep against the per-cell cache
  must replay from disk at least ``RESUME_SPEEDUP_MIN``x faster;
* **determinism** — two cold runs produce identical rankings (the
  throughput number is only comparable across runs if they do the
  same work).

Results go to ``BENCH_matrix.json`` for the CI job::

    PYTHONPATH=src python benchmarks/bench_matrix.py \
        --json-out bench-out/BENCH_matrix.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time

import pytest

from repro.experiments.cache import DatasetCache
from repro.matrix.runner import MatrixConfig, run_matrix

DEFAULT_FLOWS = 40
DEFAULT_POLICIES = ("native", "srto", "tracks")
DEFAULT_WORKLOADS = ("web_search",)
DEFAULT_PATHS = ("wan", "datacenter")

#: Wall-clock floor: a cold reduced grid must sustain at least this
#: many cells per minute (generous — one cell is sub-second here).
FLOOR_CELLS_PER_MIN = 6.0

#: A cache-warm sweep must beat the cold one by at least this factor.
RESUME_SPEEDUP_MIN = 3.0


def floor_cells_per_min() -> float:
    return float(
        os.environ.get("REPRO_BENCH_MATRIX_FLOOR", str(FLOOR_CELLS_PER_MIN))
    )


def bench_config(flows: int = DEFAULT_FLOWS, **overrides) -> MatrixConfig:
    base = MatrixConfig(
        flows=flows,
        policies=DEFAULT_POLICIES,
        workloads=DEFAULT_WORKLOADS,
        paths=DEFAULT_PATHS,
        use_cache=False,
    )
    return dataclasses.replace(base, **overrides)


def measure(flows: int = DEFAULT_FLOWS, cache_root=None) -> dict:
    """Cold run, repeat cold run (determinism), then warm resume."""
    cold = run_matrix(bench_config(flows))
    again = run_matrix(bench_config(flows))

    warm_wall = None
    if cache_root is not None:
        cache = DatasetCache(root=cache_root, max_entries=64)
        cached_config = bench_config(flows, use_cache=True)
        run_matrix(cached_config, cache=cache)  # populate
        warm = run_matrix(cached_config, cache=cache)
        assert all(cell.cached for cell in warm.cells)
        warm_wall = warm.wall_time

    cells = len(cold.cells)
    return {
        "config": {
            "flows": flows,
            "policies": list(DEFAULT_POLICIES),
            "workloads": list(DEFAULT_WORKLOADS),
            "paths": list(DEFAULT_PATHS),
        },
        "cells": cells,
        "cold_wall_s": cold.wall_time,
        "cells_per_min": 60.0 * cells / cold.wall_time,
        "slowest_cell_s": max(c.wall_time for c in cold.cells),
        "warm_wall_s": warm_wall,
        "resume_speedup": (
            cold.wall_time / warm_wall if warm_wall else None
        ),
        "deterministic": cold.rankings() == again.rankings(),
        "rankings": cold.rankings(),
        "gates": {"floor_cells_per_min": floor_cells_per_min(),
                  "resume_speedup_min": RESUME_SPEEDUP_MIN},
    }


def check_gates(result: dict) -> list[str]:
    failures = []
    if not result["deterministic"]:
        failures.append("matrix rankings differ between identical runs")
    if result["cells_per_min"] < result["gates"]["floor_cells_per_min"]:
        failures.append(
            f"cold sweep {result['cells_per_min']:.1f} cells/min < "
            f"{result['gates']['floor_cells_per_min']} floor"
        )
    speedup = result["resume_speedup"]
    if speedup is not None and speedup < RESUME_SPEEDUP_MIN:
        failures.append(
            f"cache resume only {speedup:.1f}x faster than cold "
            f"(< {RESUME_SPEEDUP_MIN}x)"
        )
    return failures


# -- pytest entry points (the CI matrix-smoke gate) ----------------------
@pytest.fixture(scope="module")
def bench_result(tmp_path_factory):
    flows = int(os.environ.get("REPRO_BENCH_MATRIX_FLOWS", DEFAULT_FLOWS))
    return measure(flows, cache_root=tmp_path_factory.mktemp("matrix"))


def test_cold_throughput_above_floor(bench_result):
    assert bench_result["cells_per_min"] >= floor_cells_per_min(), (
        bench_result
    )


def test_warm_resume_speedup(bench_result):
    assert bench_result["resume_speedup"] is not None
    assert bench_result["resume_speedup"] >= RESUME_SPEEDUP_MIN, bench_result


def test_rankings_deterministic(bench_result):
    assert bench_result["deterministic"]


def main(argv: list[str] | None = None) -> int:
    import tempfile

    import _emit

    parser = argparse.ArgumentParser(
        description="Measure matrix-runner throughput and cache resume."
    )
    parser.add_argument("--flows", type=int, default=DEFAULT_FLOWS)
    parser.add_argument("--json-out", help="write BENCH_matrix.json here")
    _emit.add_store_argument(parser)
    args = parser.parse_args(argv)

    started = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        result = measure(args.flows, cache_root=tmp)
    failures = check_gates(result)

    _emit.emit_result(
        "matrix",
        {k: v for k, v in result.items() if k != "rankings"},
        store_path=args.results_store,
        wall_time=time.perf_counter() - started,
        meta={"rankings": result["rankings"]},
    )
    text = json.dumps(result, indent=2, sort_keys=True)
    print(text)
    if args.json_out:
        out_dir = os.path.dirname(args.json_out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.json_out, "w") as handle:
            handle.write(text)
    print(
        f"matrix: {result['cells']} cells cold in "
        f"{result['cold_wall_s']:.1f}s "
        f"({result['cells_per_min']:.0f} cells/min), resume "
        f"{result['resume_speedup']:.0f}x",
        file=sys.stderr,
    )
    for failure in failures:
        print(f"GATE FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
