"""Ablation: S-RTO's T1 threshold (Sec. 5.1 calls it application-tuned)."""

from repro.experiments.ablation import sweep_srto_parameters
from repro.experiments.mitigation import make_short_flow_profile
from repro.workload.services import get_profile


def test_srto_parameter_sweep(benchmark):
    profile = make_short_flow_profile(get_profile("cloud_storage"))
    points = benchmark.pedantic(
        lambda: sweep_srto_parameters(
            profile, flows=120, seed=5, t1_values=(3, 5, 10, 20)
        ),
        rounds=1,
        iterations=1,
    )
    baseline = points[0]
    assert baseline.t1 == 0
    # Some S-RTO configuration improves the p95 tail over native.
    best = min(p.p95_latency for p in points[1:])
    assert best <= baseline.p95_latency * 1.05
    print()
    print("S-RTO parameter sweep (cloud-storage short flows):")
    print(f"{'T1':>4}{'T2':>4}{'p90':>9}{'p95':>9}{'mean':>9}{'retx':>7}")
    for p in points:
        label = "nat" if p.t1 == 0 else str(p.t1)
        print(
            f"{label:>4}{p.t2 or '-':>4}{p.p90_latency:>9.3f}"
            f"{p.p95_latency:>9.3f}{p.mean_latency:>9.3f}"
            f"{p.retransmission_ratio * 100:>6.1f}%"
        )
