"""Figure 11: in-flight size computed on each ACK."""

from repro.experiments.tables import format_fig11


def test_fig11(benchmark, reports):
    values = benchmark(
        lambda: {n: r.in_flight_values() for n, r in reports.items()}
    )
    for name, series in values.items():
        assert series, name
        small = sum(1 for v in series if v < 4) / len(series)
        assert small > 0.05, name  # a visible small-window share
    # Web search flows are short: more tiny in-flight samples.
    web_small = sum(1 for v in values["web_search"] if v < 4) / len(
        values["web_search"]
    )
    cloud_small = sum(1 for v in values["cloud_storage"] if v < 4) / len(
        values["cloud_storage"]
    )
    assert web_small > cloud_small
    print()
    print(format_fig11(reports))
