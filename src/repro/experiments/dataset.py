"""Dataset construction: simulate the three services and analyze them.

The paper's measurement section is one dataset (Table 1) analyzed many
ways (Figs. 1-12, Tables 3-7).  :func:`build_dataset` runs the
simulator once per service, pushes every trace through TAPO, and
returns per-service :class:`~repro.core.report.ServiceReport` objects.
Results are memoized per (flows, seed) so the benchmark suite shares
one simulation run across all table/figure targets.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.report import ServiceReport
from ..core.tapo import Tapo
from ..workload.generator import generate_flows
from ..workload.services import SERVICE_PROFILES, get_profile
from .runner import DatasetRun, run_flows

SERVICES = tuple(sorted(SERVICE_PROFILES))

_CACHE: dict[tuple, "Dataset"] = {}


@dataclass
class Dataset:
    """Simulated traces plus their TAPO analyses, per service."""

    flows_per_service: int
    seed: int
    runs: dict[str, DatasetRun]
    reports: dict[str, ServiceReport]

    @property
    def total_flows(self) -> int:
        return sum(len(r.results) for r in self.runs.values())

    @property
    def total_packets(self) -> int:
        return sum(r.total_packets() for r in self.runs.values())

    def report(self, service: str) -> ServiceReport:
        return self.reports[service]


def build_dataset(
    flows_per_service: int = 150,
    seed: int = 20141222,  # first day of the paper's collection window
    services: tuple[str, ...] = SERVICES,
    use_cache: bool = True,
) -> Dataset:
    """Simulate and analyze the dataset; memoized by parameters."""
    key = (flows_per_service, seed, services)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    tapo = Tapo()
    runs: dict[str, DatasetRun] = {}
    reports: dict[str, ServiceReport] = {}
    for service in services:
        profile = get_profile(service)
        run = run_flows(generate_flows(profile, flows_per_service, seed=seed))
        report = ServiceReport(service=service)
        for trace in run.traces:
            for analysis in tapo.analyze_packets(trace):
                report.add(analysis)
        runs[service] = run
        reports[service] = report
    dataset = Dataset(
        flows_per_service=flows_per_service,
        seed=seed,
        runs=runs,
        reports=reports,
    )
    if use_cache:
        _CACHE[key] = dataset
    return dataset


def clear_cache() -> None:
    """Drop memoized datasets (tests use this to force re-simulation)."""
    _CACHE.clear()
