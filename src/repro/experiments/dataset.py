"""Dataset construction: simulate the three services and analyze them.

The paper's measurement section is one dataset (Table 1) analyzed many
ways (Figs. 1-12, Tables 3-7).  :func:`build_dataset` runs the
simulator once per service, pushes every trace through TAPO, and
returns per-service :class:`~repro.core.report.ServiceReport` objects.

Two cache layers keep re-analysis cheap:

* an in-process LRU memo (bounded to :data:`MEMO_MAX_ENTRIES` builds)
  shares one dataset across all table/figure targets of a run;
* a content-addressed on-disk cache (:mod:`repro.experiments.cache`)
  shares simulations **across processes** — pytest, the benches, and
  the CLI all reuse the same build.  Disable with ``use_cache=False``
  or ``REPRO_DISK_CACHE=0``.

``workers`` shards the simulation across processes (see
:mod:`repro.experiments.parallel`); the result is byte-identical to a
serial build with the same parameters.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field

from ..config import RunConfig, warn_deprecated_kwargs
from ..core.report import ServiceReport
from ..core.tapo import Tapo
from ..obs.metrics import phase_span
from ..workload.generator import generate_flows
from ..workload.services import SERVICE_PROFILES, get_profile
from .cache import (
    DatasetCache,
    dataset_cache_key,
    dataset_fingerprint,
    disk_cache_enabled,
)
from .metrics import RunMetrics
from .runner import DatasetRun, run_flows

SERVICES = tuple(sorted(SERVICE_PROFILES))

#: Upper bound on distinct (flows, seed, services) builds kept alive
#: in-process; beyond this the least-recently-used build is dropped.
MEMO_MAX_ENTRIES = 8

_CACHE: OrderedDict[tuple, "Dataset"] = OrderedDict()


@dataclass
class Dataset:
    """Simulated traces plus their TAPO analyses, per service."""

    flows_per_service: int
    seed: int
    runs: dict[str, DatasetRun]
    reports: dict[str, ServiceReport]
    metrics: RunMetrics = field(default_factory=RunMetrics)

    @property
    def total_flows(self) -> int:
        return sum(len(r.results) for r in self.runs.values())

    @property
    def total_packets(self) -> int:
        return sum(r.total_packets() for r in self.runs.values())

    def report(self, service: str) -> ServiceReport:
        return self.reports[service]


def _memoize(key: tuple, dataset: "Dataset") -> None:
    _CACHE[key] = dataset
    _CACHE.move_to_end(key)
    while len(_CACHE) > MEMO_MAX_ENTRIES:
        _CACHE.popitem(last=False)


def build_dataset(
    flows_per_service: int = 150,
    seed: int = 20141222,  # first day of the paper's collection window
    services: tuple[str, ...] = SERVICES,
    use_cache: bool | None = None,
    workers: int | None = None,
    run: RunConfig | None = None,
) -> Dataset:
    """Simulate and analyze the dataset; cached by parameters.

    Execution knobs (worker processes, cache usage) come from ``run``,
    a :class:`repro.config.RunConfig`.  The ``use_cache``/``workers``
    keywords are deprecated shims for it.

    Cache layers are consulted in order: in-process memo, then the
    on-disk store, then a fresh (optionally parallel) simulation.
    ``use_cache=False`` bypasses both layers entirely — nothing is
    read or written.
    """
    legacy = [
        name
        for name, value in (("use_cache", use_cache), ("workers", workers))
        if value is not None
    ]
    if legacy:
        warn_deprecated_kwargs(
            "build_dataset", legacy, "a RunConfig (run=...)"
        )
    run = run or RunConfig()
    if use_cache is not None:
        run = run.replace(use_cache=use_cache)
    if workers is not None:
        run = run.replace(workers=workers)
    use_cache = run.use_cache
    workers = run.workers
    key = dataset_cache_key(flows_per_service, seed, services)
    if use_cache and key in _CACHE:
        _CACHE.move_to_end(key)
        dataset = _CACHE[key]
        dataset.metrics.cache_hits += 1
        return dataset

    disk = (
        DatasetCache() if use_cache and disk_cache_enabled() else None
    )
    fingerprint = None
    phases: dict[str, float] = {}
    if disk is not None:
        fingerprint = dataset_fingerprint(flows_per_service, seed, services)
        started = time.perf_counter()
        with phase_span(phases, "cache_load"):
            cached = disk.load(fingerprint)
        if cached is not None and not isinstance(cached, Dataset):
            # The entry unpickled cleanly but isn't a Dataset — some
            # other writer landed on our fingerprint.  Treat it like
            # any other corruption: invalidate and rebuild.
            disk.corruptions += 1
            try:
                disk.path_for(fingerprint).unlink()
            except OSError:
                pass
            cached = None
        if cached is not None:
            cached.metrics.cache_hits += 1
            cached.metrics.cache_corruptions += disk.corruptions
            cached.metrics.wall_time = time.perf_counter() - started
            cached.metrics.phases = dict(phases)
            _memoize(key, cached)
            return cached

    started = time.perf_counter()
    tapo = Tapo()
    runs: dict[str, DatasetRun] = {}
    reports: dict[str, ServiceReport] = {}
    for service in services:
        profile = get_profile(service)
        with phase_span(phases, "simulate"):
            run = run_flows(
                generate_flows(profile, flows_per_service, seed=seed),
                workers=workers,
            )
        report = ServiceReport(service=service)
        with phase_span(phases, "analyze"):
            for trace in run.traces:
                for analysis in tapo.analyze_packets(trace):
                    report.add(analysis)
        runs[service] = run
        reports[service] = report
    metrics = RunMetrics.merged(
        [run.metrics for run in runs.values() if run.metrics is not None]
    )
    metrics.wall_time = time.perf_counter() - started  # include analysis
    metrics.cache_misses += 1
    dataset = Dataset(
        flows_per_service=flows_per_service,
        seed=seed,
        runs=runs,
        reports=reports,
        metrics=metrics,
    )
    if disk is not None and fingerprint is not None:
        with phase_span(phases, "cache_store"):
            disk.store(fingerprint, dataset)
        # Surface the disk layer's own accounting (including corrupted
        # entries it detected and dropped) in the run's metrics.
        metrics.cache_corruptions += disk.corruptions
        metrics.cache_store_failures += disk.store_failures
    # The per-service runs already contributed their "simulate" span
    # via merge(); replace with the dataset-level phase map, which
    # additionally covers analysis and cache traffic.
    metrics.phases = dict(phases)
    if use_cache:
        _memoize(key, dataset)
    return dataset


def clear_cache(disk: bool = False) -> None:
    """Drop memoized datasets (tests use this to force re-simulation).

    With ``disk=True`` the on-disk store is purged as well; by default
    only the in-process memo is cleared.
    """
    _CACHE.clear()
    if disk:
        DatasetCache().clear()
