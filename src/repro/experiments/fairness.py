"""Fairness at a shared bottleneck: does S-RTO starve native flows?

Sec. 5.2 argues S-RTO's extra retransmissions "do not hurt TCP
fairness as the congestion window still follows AIMD".  This harness
tests that claim directly: two long-running bulk flows — one under the
probed policy, one native — share one bottleneck queue, and we compare
their goodputs.  A fair policy keeps the split near 50/50; a policy
that exploited its probes for bandwidth would not.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..netsim.engine import EventLoop
from ..netsim.loss import BernoulliLoss
from ..netsim.topology import SharedBottleneck
from ..packet.headers import ip_from_str
from ..tcp.endpoint import EndpointConfig, TcpEndpoint

SERVER_IP = ip_from_str("10.0.0.1")
CLIENT_NET = ip_from_str("100.64.8.0")


@dataclass
class FairnessResult:
    """Goodput split between a probed flow and a native competitor."""

    policy: str
    policy_bytes: int
    native_bytes: int
    duration: float

    @property
    def policy_share(self) -> float:
        total = self.policy_bytes + self.native_bytes
        if not total:
            return 0.5
        return self.policy_bytes / total

    @property
    def jain_index(self) -> float:
        """Jain's fairness index over the two goodputs (1.0 = fair)."""
        x = [self.policy_bytes, self.native_bytes]
        total = sum(x)
        if not total:
            return 1.0
        return total**2 / (2 * sum(v**2 for v in x))


def run_fairness(
    policy: str = "srto",
    policy_kwargs: dict | None = None,
    duration: float = 30.0,
    rate_bps: float = 8e6,
    loss_rate: float = 0.01,
    seed: int = 1,
) -> FairnessResult:
    """Two greedy senders share one bottleneck for ``duration`` secs."""
    engine = EventLoop()
    rng = random.Random(seed)
    bottleneck = SharedBottleneck(
        engine,
        delay=0.04,
        rate_bps=rate_bps,
        queue_limit=48,
        data_loss=BernoulliLoss(loss_rate),
        rng=rng,
    )

    flows: list[tuple[TcpEndpoint, TcpEndpoint]] = []
    policies = [(policy, policy_kwargs or {}), ("native", {})]
    for index, (flow_policy, kwargs) in enumerate(policies):
        server_cfg = EndpointConfig(
            ip=SERVER_IP,
            port=8000 + index,
            init_cwnd=10,
            policy=flow_policy,
            policy_kwargs=kwargs,
        )
        client_cfg = EndpointConfig(
            ip=CLIENT_NET + 1 + index, port=41000 + index
        )
        server = TcpEndpoint(engine, server_cfg, rng)
        client = TcpEndpoint(engine, client_cfg, rng)
        server.attach_link(
            bottleneck.register_server(
                (server_cfg.ip, server_cfg.port), server.receive
            )
        )
        client.attach_link(
            bottleneck.register_client(
                (client_cfg.ip, client_cfg.port), client.receive
            )
        )
        server.listen()

        def start_bulk(srv=server):
            # A greedy source: keep ~2 MB buffered at all times.
            def refill():
                if srv.sender is not None and not srv.closed:
                    if srv.sender.unsent_bytes < 1 << 20:
                        srv.sender.write(1 << 21)
                    engine.schedule(0.5, refill)

            refill()

        server.on_established = start_bulk
        flows.append((client, server))

    for client, server in flows:
        client.connect((server.config.ip, server.config.port))

    engine.run(until=duration)
    policy_client, _ = flows[0]
    native_client, _ = flows[1]
    result = FairnessResult(
        policy=policy,
        policy_bytes=(
            policy_client.receiver.total_received
            if policy_client.receiver
            else 0
        ),
        native_bytes=(
            native_client.receiver.total_received
            if native_client.receiver
            else 0
        ),
        duration=duration,
    )
    for client, server in flows:
        client.abort()
        server.abort()
    return result
