"""Paper-style table and figure-series formatting.

One function per table/figure of the evaluation; each takes the
per-service reports (or a mitigation comparison) and returns the rows
as text shaped like the paper's tables, so a benchmark run prints
side-by-side comparable output.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from ..core.report import ServiceReport, cdf_points, percentile
from ..core.stalls import CaState, DoubleKind, RetxCause, StallCause
from .mitigation import MitigationComparison

SERVICE_LABELS = {
    "cloud_storage": "cloud stor.",
    "software_download": "soft. down.",
    "web_search": "web search",
}

#: Row order of Table 3.
TABLE3_ROWS = (
    ("server", StallCause.DATA_UNAVAILABLE, "data una."),
    ("server", StallCause.RESOURCE_CONSTRAINT, "rsrc cons."),
    ("client", StallCause.CLIENT_IDLE, "client idle"),
    ("client", StallCause.ZERO_RWND, "zero wnd"),
    ("net.", StallCause.PACKET_DELAY, "pkt delay"),
    ("net.", StallCause.RETRANSMISSION, "retrans."),
)

#: Row order of Table 5.
TABLE5_ROWS = (
    (RetxCause.DOUBLE, "Double retr."),
    (RetxCause.TAIL, "Tail retr."),
    (RetxCause.SMALL_CWND, "Small cwnd"),
    (RetxCause.SMALL_RWND, "Small rwnd"),
    (RetxCause.CONTINUOUS_LOSS, "Cont. loss"),
    (RetxCause.ACK_DELAY_LOSS, "ACK delay/loss"),
    (RetxCause.UNDETERMINED, "Undeter."),
)


def _header(reports: Mapping[str, ServiceReport]) -> list[str]:
    return [SERVICE_LABELS.get(name, name) for name in reports]


def format_table1(reports: Mapping[str, ServiceReport]) -> str:
    """Table 1: flow-level statistics of the dataset."""
    lines = [
        "Table 1: Flow-level statistics of the dataset.",
        f"{'service':<14}{'#flows':>8}{'avg.speed':>12}{'avg.size':>10}"
        f"{'pkt loss':>10}{'avg.RTT':>9}{'avg.RTO':>9}",
    ]
    for name, report in reports.items():
        row = report.table1_row()
        lines.append(
            f"{SERVICE_LABELS.get(name, name):<14}"
            f"{row['flows']:>8}"
            f"{row['avg_speed'] / 1000:>10.0f}KB"
            f"{row['avg_flow_size'] / 1000:>9.0f}K"
            f"{row['pkt_loss'] * 100:>9.1f}%"
            f"{row['avg_rtt'] * 1000:>7.0f}ms"
            f"{row['avg_rto'] * 1000:>7.0f}ms"
        )
    return "\n".join(lines)


def _series_summary(name: str, values: list[float], fmt: str = "{:.3f}") -> str:
    if not values:
        return f"  {name:<28} (no samples)"
    points = [percentile(values, q) for q in (10, 25, 50, 75, 90)]
    rendered = "  ".join(fmt.format(v) for v in points)
    return f"  {name:<28} p10/p25/p50/p75/p90 = {rendered}  (n={len(values)})"


def format_fig1(reports: Mapping[str, ServiceReport]) -> str:
    """Fig. 1: per-flow RTT, RTO and RTO/RTT distributions."""
    lines = ["Figure 1a: per-flow RTT and RTO (seconds)."]
    for name, report in reports.items():
        label = SERVICE_LABELS.get(name, name)
        lines.append(_series_summary(f"{label} RTT", report.rtt_values()))
        lines.append(_series_summary(f"{label} RTO", report.rto_values()))
    lines.append("Figure 1b: RTO / RTT ratio.")
    for name, report in reports.items():
        label = SERVICE_LABELS.get(name, name)
        lines.append(
            _series_summary(
                f"{label} RTO/RTT", report.rto_over_rtt_values(), "{:.1f}"
            )
        )
    return "\n".join(lines)


def format_fig3(reports: Mapping[str, ServiceReport]) -> str:
    """Fig. 3: ratio of stalled time to transmission time."""
    lines = ["Figure 3: stalled time / transmission time."]
    for name, report in reports.items():
        label = SERVICE_LABELS.get(name, name)
        ratios = report.stall_ratio_values()
        with_stall = sum(1 for r in ratios if r > 0)
        over_half = sum(1 for r in ratios if r > 0.5)
        lines.append(
            f"  {label:<14} flows={len(ratios)}  "
            f"stalled>0: {with_stall / max(1, len(ratios)) * 100:.0f}%  "
            f"stalled>50% of lifetime: "
            f"{over_half / max(1, len(ratios)) * 100:.0f}%"
        )
        lines.append(_series_summary(f"{label} ratio", ratios, "{:.2f}"))
    return "\n".join(lines)


def format_table3(reports: Mapping[str, ServiceReport]) -> str:
    """Table 3: % of stalls by cause, volume (#) and time (T)."""
    lines = [
        "Table 3: Percentage of stalls (%) by cause.",
        f"{'cat.':<8}{'stall type':<14}"
        + "".join(f"{label:>18}" for label in _header(reports)),
        f"{'':<8}{'':<14}" + "".join(f"{'#      T':>18}" for _ in reports),
    ]
    breakdowns = {
        name: report.cause_breakdown() for name, report in reports.items()
    }
    for category, cause, label in TABLE3_ROWS:
        cells = []
        for name in reports:
            entry = breakdowns[name][cause]
            cells.append(
                f"{entry.volume_share * 100:>8.1f} {entry.time_share * 100:>8.1f}"
            )
        lines.append(f"{category:<8}{label:<14}" + " ".join(cells))
    cells = []
    for name in reports:
        entry = breakdowns[name][StallCause.UNDETERMINED]
        cells.append(
            f"{entry.volume_share * 100:>8.1f} {entry.time_share * 100:>8.1f}"
        )
    lines.append(f"{'':<8}{'undeter.':<14}" + " ".join(cells))
    return "\n".join(lines)


def format_fig6_table4(reports: Mapping[str, ServiceReport]) -> str:
    """Fig. 6 + Table 4: initial receive windows and zero-rwnd risk."""
    lines = ["Figure 6: distribution of initial receive windows (MSS)."]
    for name, report in reports.items():
        label = SERVICE_LABELS.get(name, name)
        values = [float(v) for v in report.init_rwnd_values()]
        lines.append(_series_summary(f"{label} init rwnd", values, "{:.0f}"))
    lines.append(
        "Table 4: % of flows suffering zero rwnd by initial rwnd (MSS)."
    )
    bins = [2, 11, 45, 182, 648, 1297, 4096]
    header = f"{'init rwnd <=':<14}" + "".join(f"{b:>8}" for b in bins)
    lines.append(header)
    for name, report in reports.items():
        label = SERVICE_LABELS.get(name, name)
        probs = report.zero_rwnd_prob_by_init(bins)
        cells = []
        for b in bins:
            prob, n = probs[b]
            cells.append(f"{prob * 100:>7.1f}%" if n else f"{'-':>8}")
        lines.append(f"{label:<14}" + "".join(cells))
    return "\n".join(lines)


def format_table5(reports: Mapping[str, ServiceReport]) -> str:
    """Table 5: retransmission-stall breakdown."""
    lines = [
        "Table 5: Percentage of retransmission stalls (%) by cause.",
        f"{'stall type':<16}"
        + "".join(f"{label:>18}" for label in _header(reports)),
        f"{'':<16}" + "".join(f"{'#      T':>18}" for _ in reports),
    ]
    breakdowns = {
        name: report.retx_breakdown() for name, report in reports.items()
    }
    for cause, label in TABLE5_ROWS:
        cells = []
        for name in reports:
            entry = breakdowns[name][cause]
            cells.append(
                f"{entry.volume_share * 100:>8.1f} {entry.time_share * 100:>8.1f}"
            )
        lines.append(f"{label:<16}" + " ".join(cells))
    return "\n".join(lines)


def format_fig7_table6(reports: Mapping[str, ServiceReport]) -> str:
    """Fig. 7 + Table 6: double-retransmission stall context."""
    lines = ["Figure 7a: relative position of double-retransmission stalls."]
    for name, report in reports.items():
        label = SERVICE_LABELS.get(name, name)
        lines.append(
            _series_summary(f"{label} position", report.double_positions(), "{:.2f}")
        )
    lines.append("Figure 7b: in-flight size at double-retransmission stalls.")
    for name, report in reports.items():
        label = SERVICE_LABELS.get(name, name)
        values = [float(v) for v in report.double_in_flights()]
        lines.append(_series_summary(f"{label} in_flight", values, "{:.0f}"))
    lines.append("Table 6: f-double vs t-double share of stalled time.")
    for name, report in reports.items():
        label = SERVICE_LABELS.get(name, name)
        shares = report.double_kind_shares()
        lines.append(
            f"  {label:<14} f-double {shares[DoubleKind.F_DOUBLE] * 100:5.1f}%"
            f"   t-double {shares[DoubleKind.T_DOUBLE] * 100:5.1f}%"
        )
    return "\n".join(lines)


def format_fig10_table7(reports: Mapping[str, ServiceReport]) -> str:
    """Fig. 10 + Table 7: tail-retransmission stall context."""
    lines = ["Figure 10a: relative position of tail-retransmission stalls."]
    for name, report in reports.items():
        label = SERVICE_LABELS.get(name, name)
        lines.append(
            _series_summary(f"{label} position", report.tail_positions(), "{:.2f}")
        )
    lines.append("Figure 10b: in-flight size at tail-retransmission stalls.")
    for name, report in reports.items():
        label = SERVICE_LABELS.get(name, name)
        values = [float(v) for v in report.tail_in_flights()]
        lines.append(_series_summary(f"{label} in_flight", values, "{:.0f}"))
    lines.append("Table 7: congestion state at tail-retransmission stalls.")
    for name, report in reports.items():
        label = SERVICE_LABELS.get(name, name)
        shares = report.tail_state_shares()
        lines.append(
            f"  {label:<14} Open {shares[CaState.OPEN] * 100:5.1f}%"
            f"   Recovery {shares[CaState.RECOVERY] * 100:5.1f}%"
        )
    return "\n".join(lines)


def format_fig11(reports: Mapping[str, ServiceReport]) -> str:
    """Fig. 11: in-flight size computed on each ACK."""
    lines = ["Figure 11: per-ACK in-flight size."]
    for name, report in reports.items():
        label = SERVICE_LABELS.get(name, name)
        values = [float(v) for v in report.in_flight_values()]
        below4 = sum(1 for v in values if v < 4)
        lines.append(_series_summary(f"{label} in_flight", values, "{:.0f}"))
        if values:
            lines.append(
                f"    {label}: in_flight < 4 for "
                f"{below4 / len(values) * 100:.0f}% of ACKs"
            )
    return "\n".join(lines)


def format_fig12(reports: Mapping[str, ServiceReport]) -> str:
    """Fig. 12: in-flight size at continuous-loss stalls."""
    lines = ["Figure 12: in-flight size when continuous-loss stalls happen."]
    for name, report in reports.items():
        label = SERVICE_LABELS.get(name, name)
        values = [float(v) for v in report.continuous_loss_in_flights()]
        lines.append(_series_summary(f"{label} in_flight", values, "{:.0f}"))
    return "\n".join(lines)


def format_table8(comparisons: Iterable[MitigationComparison]) -> str:
    """Table 8: latency reduction of TLP and S-RTO vs native Linux."""
    lines = [
        "Table 8: latency reduction vs native Linux "
        "(negative = faster, as in the paper).",
        f"{'service':<24}{'quantile':<10}{'TLP':>10}{'S-RTO':>10}",
    ]
    for comparison in comparisons:
        for q in comparison.QUANTILES:
            lines.append(
                f"{comparison.service:<24}{q:<10}"
                f"{comparison.reduction('tlp', q) * 100:>+9.1f}%"
                f"{comparison.reduction('srto', q) * 100:>+9.1f}%"
            )
        lines.append(
            f"{comparison.service:<24}{'mean':<10}"
            f"{comparison.mean_reduction('tlp') * 100:>+9.1f}%"
            f"{comparison.mean_reduction('srto') * 100:>+9.1f}%"
        )
        lines.append(
            f"{comparison.service:<24}{'#flows':<10}"
            f"{len(comparison.outcomes['tlp'].latencies):>10}"
            f"{len(comparison.outcomes['srto'].latencies):>10}"
        )
    return "\n".join(lines)


def format_table9(comparisons: Iterable[MitigationComparison]) -> str:
    """Table 9: retransmission packet ratio per policy."""
    lines = [
        "Table 9: retransmission packet ratio.",
        f"{'service':<24}{'Linux':>10}{'TLP':>10}{'S-RTO':>10}",
    ]
    for comparison in comparisons:
        ratios = comparison.retransmission_ratios()
        lines.append(
            f"{comparison.service:<24}"
            f"{ratios['native'] * 100:>9.1f}%"
            f"{ratios['tlp'] * 100:>9.1f}%"
            f"{ratios['srto'] * 100:>9.1f}%"
        )
    return "\n".join(lines)


def cdf_table(values: list[float], points: int = 10) -> list[tuple[float, float]]:
    """Down-sampled CDF series for plotting or inspection."""
    full = cdf_points(values)
    if len(full) <= points:
        return full
    step = len(full) / points
    return [full[min(len(full) - 1, int(i * step))] for i in range(1, points + 1)]
