"""Fig. 2: the illustrative stalled flow.

Reconstructs the paper's example — a cloud-storage flow that is stalled
first by a zero receive window (~250 ms), then by RTT variation
(~300 ms), and finally several times by timeouts, taking seconds to
move 400 KB.  The scenario is scripted (fixed pause, delay epoch and
loss bursts) so the figure is deterministic, and the output is the
time/sequence series plus TAPO's stall classification of the same
trace.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..app.client import ClientApp
from ..app.server import ServerApp
from ..app.session import Request, Session
from ..core.flow_analyzer import FlowAnalysis
from ..core.tapo import Tapo
from ..netsim.engine import EventLoop
from ..netsim.link import PathConfig
from ..netsim.loss import JitterModel, LossModel
from ..netsim.trace import CaptureTap
from ..packet.flow import Direction
from ..packet.headers import ip_from_str
from ..tcp.endpoint import EndpointConfig, TcpConnection
from ..tcp.receiver import PausingReader


class ScriptedLoss(LossModel):
    """Drops every packet inside the scripted burst windows."""

    def __init__(self, bursts: list[tuple[float, float]]):
        self.bursts = bursts

    def should_drop(self, rng: random.Random, now: float = 0.0, pkt=None) -> bool:
        return any(start <= now < end for start, end in self.bursts)


class ScriptedDelay(JitterModel):
    """Adds a fixed extra delay inside the scripted epochs."""

    def __init__(self, epochs: list[tuple[float, float, float]]):
        self.epochs = epochs  # (start, end, extra_delay)

    def extra_delay(self, rng: random.Random, now: float = 0.0) -> float:
        for start, end, extra in self.epochs:
            if start <= now < end:
                return extra
        return 0.0


@dataclass
class IllustrativeResult:
    """Everything needed to draw Fig. 2."""

    analysis: FlowAnalysis
    #: (time, relative sequence) of outgoing data packets.
    seq_series: list[tuple[float, int]] = field(default_factory=list)
    #: (time, rtt) samples as the analyzer measured them.
    rtt_series: list[tuple[float, float]] = field(default_factory=list)
    total_bytes: int = 0
    transfer_time: float = 0.0
    stalled_time: float = 0.0


def run_illustrative_flow(response_bytes: int = 400_000) -> IllustrativeResult:
    """Simulate and analyze the Fig. 2 scenario."""
    engine = EventLoop()
    rng = random.Random(2014)
    tap = CaptureTap(engine)
    client = EndpointConfig(
        ip=ip_from_str("100.64.3.7"),
        port=23456,
        rcv_buf=12 << 10,
        max_rcv_buf=12 << 10,
        rcv_buf_auto_grow=False,
        wscale=0,
        # Zero-window stall: the client app stops reading 1.0s in.
        reader=PausingReader(pauses=[(1.0, 0.6)]),
    )
    server = EndpointConfig(ip=ip_from_str("10.0.0.1"), port=80, init_cwnd=10)
    path = PathConfig(
        delay=0.045,
        rate_bps=8e5,  # the paper's example crawls: 400 KB in ~9 s
        queue_limit=32,
        # Timeout stalls: two loss bursts late in the transfer.
        data_loss=ScriptedLoss([(3.4, 3.75), (5.2, 5.65)]),
        # RTT-variation stall: a 350 ms delay epoch around t=2.2s.
        data_jitter=ScriptedDelay([(2.3, 2.7, 0.38)]),
    )
    connection = TcpConnection(engine, client, server, path, rng, tap=tap)
    session = Session(
        requests=[Request(request_bytes=400, response_bytes=response_bytes)]
    )
    ServerApp(engine, connection.server, session)
    ClientApp(engine, connection.client, session)
    connection.open()
    engine.run(until=60.0)
    connection.teardown()

    analysis = Tapo().analyze_flow(_single_flow(tap.packets))
    result = IllustrativeResult(analysis=analysis)
    base_seq = None
    for pkt, direction in analysis.flow.packets:
        if direction is Direction.OUT and pkt.payload_len > 0:
            if base_seq is None:
                base_seq = pkt.seq
            result.seq_series.append(
                (pkt.timestamp, (pkt.seq - base_seq) % (1 << 32))
            )
    sample_times = [t for t, _ in result.seq_series]
    for index, rtt in enumerate(analysis.rtt_samples):
        when = sample_times[min(index, len(sample_times) - 1)] if sample_times else 0.0
        result.rtt_series.append((when, rtt))
    result.total_bytes = analysis.bytes_out
    result.transfer_time = analysis.duration
    result.stalled_time = analysis.stalled_time
    return result


def _single_flow(packets):
    from ..packet.flow import demux

    flows = demux(packets)
    if len(flows) != 1:
        raise RuntimeError(f"expected one flow in the trace, got {len(flows)}")
    return flows[0]
