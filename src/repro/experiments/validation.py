"""Classifier validation: TAPO inferences vs simulator ground truth.

The paper can only report that 4-8 % of stalls end up *undetermined*;
a simulator knows the truth, so we can do better: for a corpus of
flows, compare what TAPO inferred from the trace against the sender's
actual counters —

* timeout retransmissions (TAPO's timing/state inference vs the
  sender's ``rto_timeouts``),
* fast retransmits,
* retransmission totals (exact: both count wire events),
* spurious retransmissions (DSACK-detected vs probes+undo evidence).

Aggregate relative errors quantify how much a passive server-side tool
can actually recover — the question the paper's Sec. 3 methodology
hinges on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.tapo import Tapo
from ..workload.generator import generate_flows
from ..workload.services import ServiceProfile
from .runner import run_flow


@dataclass
class ValidationResult:
    """Aggregate agreement between TAPO and ground truth."""

    flows: int = 0
    true_timeouts: int = 0
    inferred_timeouts: int = 0
    true_fast_retx: int = 0
    inferred_fast_retx: int = 0
    true_retx: int = 0
    inferred_retx: int = 0
    #: Flows where every class matched exactly.
    exact_flows: int = 0
    per_flow_errors: list[tuple[int, int, int]] = field(default_factory=list)

    @property
    def timeout_error(self) -> float:
        """Relative error of the timeout-event count."""
        if not self.true_timeouts:
            return 0.0 if not self.inferred_timeouts else 1.0
        return (
            abs(self.inferred_timeouts - self.true_timeouts)
            / self.true_timeouts
        )

    @property
    def fast_retx_error(self) -> float:
        if not self.true_fast_retx:
            return 0.0 if not self.inferred_fast_retx else 1.0
        return (
            abs(self.inferred_fast_retx - self.true_fast_retx)
            / self.true_fast_retx
        )

    @property
    def retx_exact(self) -> bool:
        """Retransmission counts must match exactly: both sides count
        wire events."""
        return self.true_retx == self.inferred_retx

    @property
    def exact_share(self) -> float:
        return self.exact_flows / max(1, self.flows)


def validate_inference(
    profile: ServiceProfile, flows: int = 100, seed: int = 3
) -> ValidationResult:
    """Run flows and compare TAPO's inferences with sender truth."""
    tapo = Tapo()
    result = ValidationResult()
    for scenario in generate_flows(profile, flows, seed=seed):
        run = run_flow(scenario)
        analyses = tapo.analyze_packets(run.packets)
        if len(analyses) != 1:
            continue
        analysis = analyses[0]
        stats = run.server_stats
        result.flows += 1
        result.true_timeouts += stats.rto_timeouts
        result.inferred_timeouts += analysis.timeouts
        result.true_fast_retx += stats.fast_retransmits
        result.inferred_fast_retx += analysis.fast_retransmits
        result.true_retx += stats.retransmissions
        result.inferred_retx += analysis.retransmissions
        if (
            stats.rto_timeouts == analysis.timeouts
            and stats.fast_retransmits == analysis.fast_retransmits
            and stats.retransmissions == analysis.retransmissions
        ):
            result.exact_flows += 1
        else:
            result.per_flow_errors.append(
                (
                    stats.rto_timeouts - analysis.timeouts,
                    stats.fast_retransmits - analysis.fast_retransmits,
                    stats.retransmissions - analysis.retransmissions,
                )
            )
    return result
