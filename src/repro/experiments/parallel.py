"""Parallel flow simulation across worker processes.

Flows in the dataset are independent (no cross-flow coupling — see
:mod:`repro.experiments.runner`), so a batch of scenarios shards
cleanly across a process pool.  The contract of
:func:`run_flows_parallel` is that its output is **byte-identical** to
the serial path for the same scenarios: each flow carries its own
derived seed, chunks preserve scenario order, and results are
reassembled in submission order regardless of which worker finished
first.

Failure handling degrades rather than crashes: if a worker dies (OOM
killer, interpreter crash) or a chunk raises, the affected chunks are
re-simulated serially in the parent process and the retry is counted
in :class:`~repro.experiments.metrics.RunMetrics`.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from collections.abc import Iterable, Iterator
from concurrent.futures import Executor, Future, ProcessPoolExecutor
from dataclasses import dataclass, field

from ..config import AnalysisConfig
from ..errors import FaultStats, PoisonTaskError, ReproError, SkippedFlow
from ..packet.flow import FlowTrace
from ..workload.generator import FlowScenario
from .metrics import RunMetrics, WorkerStats
from .runner import DatasetRun, FlowRunResult, run_flow

#: Target chunks per worker; >1 smooths load imbalance between
#: fast (short-flow) and slow (stalled-flow) chunks.
_CHUNKS_PER_WORKER = 4


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count request: ``None``/``0`` = all cores."""
    if workers is None or workers == 0:
        return max(1, os.cpu_count() or 1)
    return max(1, int(workers))


def chunk_scenarios(
    scenarios: list[FlowScenario], workers: int, chunk_flows: int | None = None
) -> list[list[FlowScenario]]:
    """Split a scenario list into contiguous, order-preserving chunks."""
    if not scenarios:
        return []
    if chunk_flows is None:
        target = workers * _CHUNKS_PER_WORKER
        chunk_flows = max(1, -(-len(scenarios) // target))
    return [
        scenarios[i : i + chunk_flows]
        for i in range(0, len(scenarios), chunk_flows)
    ]


@dataclass
class _ChunkResult:
    index: int
    results: list[FlowRunResult]
    worker_id: int
    busy_time: float


def _simulate_chunk(
    index: int,
    scenarios: list[FlowScenario],
    max_sim_time: float,
    trace: bool | str = False,
) -> _ChunkResult:
    """Worker entry point: simulate one chunk of scenarios in order."""
    start = time.perf_counter()
    results = [
        run_flow(s, max_sim_time=max_sim_time, trace=trace)
        for s in scenarios
    ]
    return _ChunkResult(
        index=index,
        results=results,
        worker_id=os.getpid(),
        busy_time=time.perf_counter() - start,
    )


def _make_executor(workers: int) -> Executor:
    """Process pool preferring the cheap ``fork`` start method."""
    if "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
        return ProcessPoolExecutor(max_workers=workers, mp_context=context)
    return ProcessPoolExecutor(max_workers=workers)


def run_flows_parallel(
    scenarios: Iterable[FlowScenario],
    max_sim_time: float = 600.0,
    workers: int | None = None,
    chunk_flows: int | None = None,
    executor_factory=None,
    trace: bool | str = False,
) -> DatasetRun:
    """Run a scenario batch across ``workers`` processes.

    Returns the same :class:`DatasetRun` the serial path produces (same
    result order, same per-flow contents), with
    :class:`~repro.experiments.metrics.RunMetrics` attached.  With
    ``workers=1``, no pool is created at all.
    """
    scenario_list = list(scenarios)
    workers = min(
        resolve_workers(workers), max(1, len(scenario_list))
    )
    started = time.perf_counter()
    service = scenario_list[-1].service if scenario_list else ""

    if workers <= 1 or len(scenario_list) <= 1:
        results = [
            run_flow(s, max_sim_time=max_sim_time, trace=trace)
            for s in scenario_list
        ]
        return _assemble(service, results, started, workers=1, chunks=1)

    chunks = chunk_scenarios(scenario_list, workers, chunk_flows)
    chunk_results: list[_ChunkResult | None] = [None] * len(chunks)
    factory = executor_factory or _make_executor
    recovered: set[int] = set()  # chunks that needed any retry
    try:
        with factory(workers) as pool:
            futures = {
                index: pool.submit(
                    _simulate_chunk, index, chunk, max_sim_time, trace
                )
                for index, chunk in enumerate(chunks)
            }
            for index, future in futures.items():
                try:
                    chunk_results[index] = future.result()
                except ReproError:
                    # Deterministic, typed: the simulation itself
                    # rejected its input.  Retrying cannot help.
                    raise
                except Exception:
                    recovered.add(index)
            # Resubmit failed chunks to the pool once before falling
            # back to the parent: one transient worker death should
            # not serialize the recovery.
            for index in sorted(recovered):
                try:
                    chunk_results[index] = pool.submit(
                        _simulate_chunk,
                        index,
                        chunks[index],
                        max_sim_time,
                        trace,
                    ).result()
                except ReproError:
                    raise
                except Exception:
                    pass  # re-run serially below
    except ReproError:
        raise
    except Exception:
        pass  # pool never came up or died wholesale; recover below

    for index, result in enumerate(chunk_results):
        if result is None:
            recovered.add(index)
            chunk_results[index] = _simulate_chunk(
                index, chunks[index], max_sim_time, trace
            )
    retried = len(recovered)

    results: list[FlowRunResult] = []
    worker_stats: dict[int, WorkerStats] = {}
    for chunk_result in chunk_results:
        assert chunk_result is not None  # every chunk ran or was retried
        results.extend(chunk_result.results)
        stats = worker_stats.setdefault(
            chunk_result.worker_id, WorkerStats(chunk_result.worker_id)
        )
        stats.flows += len(chunk_result.results)
        stats.chunks += 1
        stats.events += sum(r.events for r in chunk_result.results)
        stats.busy_time += chunk_result.busy_time

    run = _assemble(
        service,
        results,
        started,
        workers=workers,
        chunks=len(chunks),
    )
    run.metrics.chunks_retried = retried
    run.metrics.worker_stats = list(worker_stats.values())
    return run


# -- streaming flow analysis ----------------------------------------------

#: Flows per analysis work unit; TAPO analysis of one flow is much
#: cheaper than simulating it, so chunks are bigger than simulation's.
_ANALYZE_CHUNK_FLOWS = 32


def _analyze_chunk(
    flows: list[FlowTrace], config: AnalysisConfig
) -> tuple[list, list[SkippedFlow]]:
    """Worker entry point: run TAPO over one chunk of completed flows.

    Returns ``(analyses, skipped)``.  Under a tolerant
    ``config.errors`` budget a crashing flow is quarantined into the
    ``skipped`` list instead of failing the chunk; budget caps are
    *not* enforced here (``enforce=False``) because only the parent
    sees run-wide fault totals.
    """
    from ..core.tapo import Tapo

    tapo = Tapo(config=config)
    analyses = list(tapo._analyze_flows(flows, tapo.faults, enforce=False))
    return analyses, list(tapo.faults.skipped)


@dataclass
class AnalysisPoolStats:
    """Accounting for one :class:`AnalysisPool` pass."""

    flows: int = 0
    flows_skipped: int = 0
    chunks: int = 0
    chunks_retried: int = 0
    chunks_poisoned: int = 0
    in_flight_chunks: int = 0
    peak_in_flight_chunks: int = 0

    def to_registry(self, registry, prefix: str = "repro_stream_") -> None:
        registry.counter(
            prefix + "analysis_chunks_total", "Analysis chunks dispatched"
        ).inc(self.chunks)
        registry.counter(
            prefix + "analysis_chunks_retried_total",
            "Analysis chunks re-run after a worker failure",
        ).inc(self.chunks_retried)
        registry.counter(
            prefix + "analysis_chunks_poisoned_total",
            "Analysis chunks quarantined after repeated worker deaths",
        ).inc(self.chunks_poisoned)
        registry.counter(
            prefix + "analyzed_flows_total", "Flows analyzed"
        ).inc(self.flows)
        registry.counter(
            prefix + "flows_skipped_total",
            "Flows quarantined under a tolerant error budget",
        ).inc(self.flows_skipped)
        registry.gauge(
            prefix + "peak_in_flight_chunks",
            "Most analysis chunks queued or executing at once",
        ).set(float(self.peak_in_flight_chunks))


@dataclass
class AnalysisPool:
    """Fan completed flows out to analyzer workers with backpressure.

    :meth:`map_stream` pulls flows from an iterator, ships them to the
    pool in chunks, and yields :class:`~repro.core.flow_analyzer.FlowAnalysis`
    results **in submission order**.  At most ``max_in_flight`` chunks
    are queued or executing at once; when the bound is hit, no further
    flows are pulled from upstream until a chunk completes — the
    backpressure that keeps a streaming pipeline's memory flat no
    matter how fast the packet source is.

    ``workers=1`` analyzes inline with no pool and no pickling.

    Failure handling distinguishes *deterministic* faults from
    *transient* ones.  A :class:`~repro.errors.ReproError` escaping a
    worker is deterministic — the analyzer itself rejected the input —
    so it propagates (strict budgets) rather than being retried; under
    tolerant budgets workers quarantine such flows internally and the
    error never escapes.  Anything else (a dead worker, a broken pool)
    is treated as transient: the chunk is retried up to ``max_retries``
    times in fresh single-worker pools with exponential backoff, then
    re-run serially in the parent, and only if *that* also dies is the
    chunk declared poisoned — strict budgets raise
    :class:`~repro.errors.PoisonTaskError`, tolerant budgets quarantine
    the chunk's flows as :class:`~repro.errors.SkippedFlow` records.
    """

    config: AnalysisConfig = field(default_factory=AnalysisConfig)
    workers: int | None = 1
    chunk_flows: int | None = None
    max_in_flight: int | None = None
    executor_factory: object = None
    max_retries: int = 2
    retry_backoff: float = 0.1
    stats: AnalysisPoolStats = field(default_factory=AnalysisPoolStats)
    faults: FaultStats = field(default_factory=FaultStats)

    def map_stream(self, flows: Iterable[FlowTrace]) -> Iterator:
        workers = resolve_workers(self.workers)
        chunk_flows = self.chunk_flows or _ANALYZE_CHUNK_FLOWS
        if workers <= 1:
            yield from self._map_serial(flows)
            return
        max_in_flight = self.max_in_flight or 2 * workers
        factory = self.executor_factory or _make_executor
        in_flight: deque[tuple[Future | None, list[FlowTrace]]] = deque()
        with factory(workers) as pool:
            chunk: list[FlowTrace] = []
            for flow in flows:
                chunk.append(flow)
                if len(chunk) >= chunk_flows:
                    if len(in_flight) >= max_in_flight:
                        yield from self._drain_one(in_flight)
                    self._submit(pool, in_flight, chunk)
                    chunk = []
            if chunk:
                if len(in_flight) >= max_in_flight:
                    yield from self._drain_one(in_flight)
                self._submit(pool, in_flight, chunk)
            while in_flight:
                yield from self._drain_one(in_flight)

    def _map_serial(self, flows: Iterable[FlowTrace]) -> Iterator:
        from ..core.tapo import Tapo

        tapo = Tapo(config=self.config)
        stats = self.stats
        before = self.faults.flows_skipped
        for analysis in tapo._analyze_flows(flows, self.faults):
            stats.flows += 1
            yield analysis
        stats.flows_skipped += self.faults.flows_skipped - before
        stats.chunks = 1 if stats.flows else 0

    def _submit(
        self,
        pool: Executor,
        in_flight: deque,
        chunk: list[FlowTrace],
    ) -> None:
        try:
            future = pool.submit(_analyze_chunk, chunk, self.config)
        except Exception:
            # The pool is broken (e.g. a previous chunk killed a
            # worker).  Queue the chunk anyway; _drain_one recovers it
            # through the retry path.
            future = None
        in_flight.append((future, chunk))
        stats = self.stats
        stats.chunks += 1
        stats.in_flight_chunks = len(in_flight)
        if stats.in_flight_chunks > stats.peak_in_flight_chunks:
            stats.peak_in_flight_chunks = stats.in_flight_chunks

    def _drain_one(self, in_flight: deque) -> Iterator:
        future, chunk = in_flight.popleft()
        if future is None:
            results, skipped = self._retry_chunk(chunk)
        else:
            try:
                results, skipped = future.result()
            except ReproError:
                # Deterministic: the analyzer itself refused the input
                # under a strict budget.  Retrying cannot help.
                raise
            except Exception:
                results, skipped = self._retry_chunk(chunk)
        self.stats.in_flight_chunks = len(in_flight)
        self.stats.flows += len(results)
        self.stats.flows_skipped += len(skipped)
        for record in skipped:
            self.faults.record_skip(record)
        self.config.errors.check(
            self.faults.flows_skipped,
            self.stats.flows + self.faults.flows_skipped,
            "quarantined flows",
        )
        yield from results

    def _retry_chunk(
        self, chunk: list[FlowTrace]
    ) -> tuple[list, list[SkippedFlow]]:
        """Recover a chunk whose worker died or whose pool broke.

        Fresh single-worker pools isolate each attempt from the (very
        possibly broken) main pool; the final attempt runs serially in
        the parent.  A chunk that outlives every attempt is poison.
        """
        self.stats.chunks_retried += 1
        self.faults.tasks_retried += 1
        factory = self.executor_factory or _make_executor
        delay = self.retry_backoff
        for attempt in range(max(0, self.max_retries)):
            if attempt:
                time.sleep(delay)
                delay *= 2
            try:
                with factory(1) as rescue:
                    return rescue.submit(
                        _analyze_chunk, chunk, self.config
                    ).result()
            except ReproError:
                raise
            except Exception:
                continue
        try:
            return _analyze_chunk(chunk, self.config)
        except ReproError:
            raise
        except Exception as exc:
            return self._poison_chunk(chunk, exc)

    def _poison_chunk(
        self, chunk: list[FlowTrace], cause: Exception
    ) -> tuple[list, list[SkippedFlow]]:
        """Quarantine a chunk that killed every worker that ran it."""
        self.stats.chunks_poisoned += 1
        self.faults.tasks_poisoned += 1
        error = PoisonTaskError(
            f"chunk of {len(chunk)} flows failed every worker "
            f"({self.max_retries} retries): "
            f"{type(cause).__name__}: {cause}"
        )
        if not self.config.errors.tolerant:
            raise error from cause
        return [], [
            SkippedFlow.from_exception(flow, error) for flow in chunk
        ]


def _assemble(
    service: str,
    results: list[FlowRunResult],
    started: float,
    workers: int,
    chunks: int,
) -> DatasetRun:
    metrics = RunMetrics(
        wall_time=time.perf_counter() - started,
        flows=len(results),
        events=sum(r.events for r in results),
        packets=sum(len(r.packets) for r in results),
        workers=workers,
        chunks=chunks,
        trace_events=sum(len(r.trace_events or ()) for r in results),
        trace_events_dropped=sum(r.trace_dropped for r in results),
    )
    metrics.phases["simulate"] = metrics.wall_time
    return DatasetRun(service=service, results=results, metrics=metrics)
