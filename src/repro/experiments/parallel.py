"""Parallel flow simulation across worker processes.

Flows in the dataset are independent (no cross-flow coupling — see
:mod:`repro.experiments.runner`), so a batch of scenarios shards
cleanly across a process pool.  The contract of
:func:`run_flows_parallel` is that its output is **byte-identical** to
the serial path for the same scenarios: each flow carries its own
derived seed, chunks preserve scenario order, and results are
reassembled in submission order regardless of which worker finished
first.

Failure handling degrades rather than crashes: if a worker dies (OOM
killer, interpreter crash) or a chunk raises, the affected chunks are
re-simulated serially in the parent process and the retry is counted
in :class:`~repro.experiments.metrics.RunMetrics`.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections.abc import Iterable
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass

from ..workload.generator import FlowScenario
from .metrics import RunMetrics, WorkerStats
from .runner import DatasetRun, FlowRunResult, run_flow

#: Target chunks per worker; >1 smooths load imbalance between
#: fast (short-flow) and slow (stalled-flow) chunks.
_CHUNKS_PER_WORKER = 4


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count request: ``None``/``0`` = all cores."""
    if workers is None or workers == 0:
        return max(1, os.cpu_count() or 1)
    return max(1, int(workers))


def chunk_scenarios(
    scenarios: list[FlowScenario], workers: int, chunk_flows: int | None = None
) -> list[list[FlowScenario]]:
    """Split a scenario list into contiguous, order-preserving chunks."""
    if not scenarios:
        return []
    if chunk_flows is None:
        target = workers * _CHUNKS_PER_WORKER
        chunk_flows = max(1, -(-len(scenarios) // target))
    return [
        scenarios[i : i + chunk_flows]
        for i in range(0, len(scenarios), chunk_flows)
    ]


@dataclass
class _ChunkResult:
    index: int
    results: list[FlowRunResult]
    worker_id: int
    busy_time: float


def _simulate_chunk(
    index: int,
    scenarios: list[FlowScenario],
    max_sim_time: float,
    trace: bool | str = False,
) -> _ChunkResult:
    """Worker entry point: simulate one chunk of scenarios in order."""
    start = time.perf_counter()
    results = [
        run_flow(s, max_sim_time=max_sim_time, trace=trace)
        for s in scenarios
    ]
    return _ChunkResult(
        index=index,
        results=results,
        worker_id=os.getpid(),
        busy_time=time.perf_counter() - start,
    )


def _make_executor(workers: int) -> Executor:
    """Process pool preferring the cheap ``fork`` start method."""
    if "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
        return ProcessPoolExecutor(max_workers=workers, mp_context=context)
    return ProcessPoolExecutor(max_workers=workers)


def run_flows_parallel(
    scenarios: Iterable[FlowScenario],
    max_sim_time: float = 600.0,
    workers: int | None = None,
    chunk_flows: int | None = None,
    executor_factory=None,
    trace: bool | str = False,
) -> DatasetRun:
    """Run a scenario batch across ``workers`` processes.

    Returns the same :class:`DatasetRun` the serial path produces (same
    result order, same per-flow contents), with
    :class:`~repro.experiments.metrics.RunMetrics` attached.  With
    ``workers=1``, no pool is created at all.
    """
    scenario_list = list(scenarios)
    workers = min(
        resolve_workers(workers), max(1, len(scenario_list))
    )
    started = time.perf_counter()
    service = scenario_list[-1].service if scenario_list else ""

    if workers <= 1 or len(scenario_list) <= 1:
        results = [
            run_flow(s, max_sim_time=max_sim_time, trace=trace)
            for s in scenario_list
        ]
        return _assemble(service, results, started, workers=1, chunks=1)

    chunks = chunk_scenarios(scenario_list, workers, chunk_flows)
    chunk_results: list[_ChunkResult | None] = [None] * len(chunks)
    retried = 0
    factory = executor_factory or _make_executor
    failed: list[int] = []
    try:
        with factory(workers) as pool:
            futures = {
                index: pool.submit(
                    _simulate_chunk, index, chunk, max_sim_time, trace
                )
                for index, chunk in enumerate(chunks)
            }
            for index, future in futures.items():
                try:
                    chunk_results[index] = future.result()
                except Exception:
                    # Worker died or the chunk raised; re-run serially
                    # below rather than losing the whole batch.
                    failed.append(index)
    except Exception:
        failed = [i for i, r in enumerate(chunk_results) if r is None]

    for index in failed:
        if chunk_results[index] is not None:
            continue
        retried += 1
        chunk_results[index] = _simulate_chunk(
            index, chunks[index], max_sim_time, trace
        )

    results: list[FlowRunResult] = []
    worker_stats: dict[int, WorkerStats] = {}
    for chunk_result in chunk_results:
        assert chunk_result is not None  # every chunk ran or was retried
        results.extend(chunk_result.results)
        stats = worker_stats.setdefault(
            chunk_result.worker_id, WorkerStats(chunk_result.worker_id)
        )
        stats.flows += len(chunk_result.results)
        stats.chunks += 1
        stats.events += sum(r.events for r in chunk_result.results)
        stats.busy_time += chunk_result.busy_time

    run = _assemble(
        service,
        results,
        started,
        workers=workers,
        chunks=len(chunks),
    )
    run.metrics.chunks_retried = retried
    run.metrics.worker_stats = list(worker_stats.values())
    return run


def _assemble(
    service: str,
    results: list[FlowRunResult],
    started: float,
    workers: int,
    chunks: int,
) -> DatasetRun:
    metrics = RunMetrics(
        wall_time=time.perf_counter() - started,
        flows=len(results),
        events=sum(r.events for r in results),
        packets=sum(len(r.packets) for r in results),
        workers=workers,
        chunks=chunks,
        trace_events=sum(len(r.trace_events or ()) for r in results),
        trace_events_dropped=sum(r.trace_dropped for r in results),
    )
    metrics.phases["simulate"] = metrics.wall_time
    return DatasetRun(service=service, results=results, metrics=metrics)
