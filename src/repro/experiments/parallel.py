"""Parallel flow simulation across worker processes.

Flows in the dataset are independent (no cross-flow coupling — see
:mod:`repro.experiments.runner`), so a batch of scenarios shards
cleanly across a process pool.  The contract of
:func:`run_flows_parallel` is that its output is **byte-identical** to
the serial path for the same scenarios: each flow carries its own
derived seed, chunks preserve scenario order, and results are
reassembled in submission order regardless of which worker finished
first.

Failure handling degrades rather than crashes: if a worker dies (OOM
killer, interpreter crash) or a chunk raises, the affected chunks are
re-simulated serially in the parent process and the retry is counted
in :class:`~repro.experiments.metrics.RunMetrics`.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from collections.abc import Iterable, Iterator
from concurrent.futures import Executor, Future, ProcessPoolExecutor
from dataclasses import dataclass, field

from ..config import AnalysisConfig
from ..packet.flow import FlowTrace
from ..workload.generator import FlowScenario
from .metrics import RunMetrics, WorkerStats
from .runner import DatasetRun, FlowRunResult, run_flow

#: Target chunks per worker; >1 smooths load imbalance between
#: fast (short-flow) and slow (stalled-flow) chunks.
_CHUNKS_PER_WORKER = 4


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count request: ``None``/``0`` = all cores."""
    if workers is None or workers == 0:
        return max(1, os.cpu_count() or 1)
    return max(1, int(workers))


def chunk_scenarios(
    scenarios: list[FlowScenario], workers: int, chunk_flows: int | None = None
) -> list[list[FlowScenario]]:
    """Split a scenario list into contiguous, order-preserving chunks."""
    if not scenarios:
        return []
    if chunk_flows is None:
        target = workers * _CHUNKS_PER_WORKER
        chunk_flows = max(1, -(-len(scenarios) // target))
    return [
        scenarios[i : i + chunk_flows]
        for i in range(0, len(scenarios), chunk_flows)
    ]


@dataclass
class _ChunkResult:
    index: int
    results: list[FlowRunResult]
    worker_id: int
    busy_time: float


def _simulate_chunk(
    index: int,
    scenarios: list[FlowScenario],
    max_sim_time: float,
    trace: bool | str = False,
) -> _ChunkResult:
    """Worker entry point: simulate one chunk of scenarios in order."""
    start = time.perf_counter()
    results = [
        run_flow(s, max_sim_time=max_sim_time, trace=trace)
        for s in scenarios
    ]
    return _ChunkResult(
        index=index,
        results=results,
        worker_id=os.getpid(),
        busy_time=time.perf_counter() - start,
    )


def _make_executor(workers: int) -> Executor:
    """Process pool preferring the cheap ``fork`` start method."""
    if "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
        return ProcessPoolExecutor(max_workers=workers, mp_context=context)
    return ProcessPoolExecutor(max_workers=workers)


def run_flows_parallel(
    scenarios: Iterable[FlowScenario],
    max_sim_time: float = 600.0,
    workers: int | None = None,
    chunk_flows: int | None = None,
    executor_factory=None,
    trace: bool | str = False,
) -> DatasetRun:
    """Run a scenario batch across ``workers`` processes.

    Returns the same :class:`DatasetRun` the serial path produces (same
    result order, same per-flow contents), with
    :class:`~repro.experiments.metrics.RunMetrics` attached.  With
    ``workers=1``, no pool is created at all.
    """
    scenario_list = list(scenarios)
    workers = min(
        resolve_workers(workers), max(1, len(scenario_list))
    )
    started = time.perf_counter()
    service = scenario_list[-1].service if scenario_list else ""

    if workers <= 1 or len(scenario_list) <= 1:
        results = [
            run_flow(s, max_sim_time=max_sim_time, trace=trace)
            for s in scenario_list
        ]
        return _assemble(service, results, started, workers=1, chunks=1)

    chunks = chunk_scenarios(scenario_list, workers, chunk_flows)
    chunk_results: list[_ChunkResult | None] = [None] * len(chunks)
    retried = 0
    factory = executor_factory or _make_executor
    failed: list[int] = []
    try:
        with factory(workers) as pool:
            futures = {
                index: pool.submit(
                    _simulate_chunk, index, chunk, max_sim_time, trace
                )
                for index, chunk in enumerate(chunks)
            }
            for index, future in futures.items():
                try:
                    chunk_results[index] = future.result()
                except Exception:
                    # Worker died or the chunk raised; re-run serially
                    # below rather than losing the whole batch.
                    failed.append(index)
    except Exception:
        failed = [i for i, r in enumerate(chunk_results) if r is None]

    for index in failed:
        if chunk_results[index] is not None:
            continue
        retried += 1
        chunk_results[index] = _simulate_chunk(
            index, chunks[index], max_sim_time, trace
        )

    results: list[FlowRunResult] = []
    worker_stats: dict[int, WorkerStats] = {}
    for chunk_result in chunk_results:
        assert chunk_result is not None  # every chunk ran or was retried
        results.extend(chunk_result.results)
        stats = worker_stats.setdefault(
            chunk_result.worker_id, WorkerStats(chunk_result.worker_id)
        )
        stats.flows += len(chunk_result.results)
        stats.chunks += 1
        stats.events += sum(r.events for r in chunk_result.results)
        stats.busy_time += chunk_result.busy_time

    run = _assemble(
        service,
        results,
        started,
        workers=workers,
        chunks=len(chunks),
    )
    run.metrics.chunks_retried = retried
    run.metrics.worker_stats = list(worker_stats.values())
    return run


# -- streaming flow analysis ----------------------------------------------

#: Flows per analysis work unit; TAPO analysis of one flow is much
#: cheaper than simulating it, so chunks are bigger than simulation's.
_ANALYZE_CHUNK_FLOWS = 32


def _analyze_chunk(flows: list[FlowTrace], config: AnalysisConfig) -> list:
    """Worker entry point: run TAPO over one chunk of completed flows."""
    from ..core.tapo import Tapo

    tapo = Tapo(config=config)
    return [tapo.analyze_flow(flow) for flow in flows]


@dataclass
class AnalysisPoolStats:
    """Accounting for one :class:`AnalysisPool` pass."""

    flows: int = 0
    chunks: int = 0
    chunks_retried: int = 0
    in_flight_chunks: int = 0
    peak_in_flight_chunks: int = 0

    def to_registry(self, registry, prefix: str = "repro_stream_") -> None:
        registry.counter(
            prefix + "analysis_chunks_total", "Analysis chunks dispatched"
        ).inc(self.chunks)
        registry.counter(
            prefix + "analysis_chunks_retried_total",
            "Analysis chunks re-run serially after a worker failure",
        ).inc(self.chunks_retried)
        registry.counter(
            prefix + "analyzed_flows_total", "Flows analyzed"
        ).inc(self.flows)
        registry.gauge(
            prefix + "peak_in_flight_chunks",
            "Most analysis chunks queued or executing at once",
        ).set(float(self.peak_in_flight_chunks))


@dataclass
class AnalysisPool:
    """Fan completed flows out to analyzer workers with backpressure.

    :meth:`map_stream` pulls flows from an iterator, ships them to the
    pool in chunks, and yields :class:`~repro.core.flow_analyzer.FlowAnalysis`
    results **in submission order**.  At most ``max_in_flight`` chunks
    are queued or executing at once; when the bound is hit, no further
    flows are pulled from upstream until a chunk completes — the
    backpressure that keeps a streaming pipeline's memory flat no
    matter how fast the packet source is.

    ``workers=1`` analyzes inline with no pool and no pickling.  A
    worker death re-runs the lost chunk serially in the parent, same
    as the simulation pool.
    """

    config: AnalysisConfig = field(default_factory=AnalysisConfig)
    workers: int | None = 1
    chunk_flows: int | None = None
    max_in_flight: int | None = None
    executor_factory: object = None
    stats: AnalysisPoolStats = field(default_factory=AnalysisPoolStats)

    def map_stream(self, flows: Iterable[FlowTrace]) -> Iterator:
        workers = resolve_workers(self.workers)
        chunk_flows = self.chunk_flows or _ANALYZE_CHUNK_FLOWS
        if workers <= 1:
            yield from self._map_serial(flows)
            return
        max_in_flight = self.max_in_flight or 2 * workers
        factory = self.executor_factory or _make_executor
        in_flight: deque[tuple[Future, list[FlowTrace]]] = deque()
        with factory(workers) as pool:
            chunk: list[FlowTrace] = []
            for flow in flows:
                chunk.append(flow)
                if len(chunk) >= chunk_flows:
                    if len(in_flight) >= max_in_flight:
                        yield from self._drain_one(in_flight)
                    self._submit(pool, in_flight, chunk)
                    chunk = []
            if chunk:
                if len(in_flight) >= max_in_flight:
                    yield from self._drain_one(in_flight)
                self._submit(pool, in_flight, chunk)
            while in_flight:
                yield from self._drain_one(in_flight)

    def _map_serial(self, flows: Iterable[FlowTrace]) -> Iterator:
        from ..core.tapo import Tapo

        tapo = Tapo(config=self.config)
        stats = self.stats
        for flow in flows:
            stats.flows += 1
            yield tapo.analyze_flow(flow)
        stats.chunks = 1 if stats.flows else 0

    def _submit(
        self,
        pool: Executor,
        in_flight: deque,
        chunk: list[FlowTrace],
    ) -> None:
        in_flight.append((pool.submit(_analyze_chunk, chunk, self.config), chunk))
        stats = self.stats
        stats.chunks += 1
        stats.in_flight_chunks = len(in_flight)
        if stats.in_flight_chunks > stats.peak_in_flight_chunks:
            stats.peak_in_flight_chunks = stats.in_flight_chunks

    def _drain_one(self, in_flight: deque) -> Iterator:
        future, chunk = in_flight.popleft()
        try:
            results = future.result()
        except Exception:
            # Worker died or the chunk raised; recover serially.
            self.stats.chunks_retried += 1
            results = _analyze_chunk(chunk, self.config)
        self.stats.in_flight_chunks = len(in_flight)
        self.stats.flows += len(results)
        yield from results


def _assemble(
    service: str,
    results: list[FlowRunResult],
    started: float,
    workers: int,
    chunks: int,
) -> DatasetRun:
    metrics = RunMetrics(
        wall_time=time.perf_counter() - started,
        flows=len(results),
        events=sum(r.events for r in results),
        packets=sum(len(r.packets) for r in results),
        workers=workers,
        chunks=chunks,
        trace_events=sum(len(r.trace_events or ()) for r in results),
        trace_events_dropped=sum(r.trace_dropped for r in results),
    )
    metrics.phases["simulate"] = metrics.wall_time
    return DatasetRun(service=service, results=results, metrics=metrics)
