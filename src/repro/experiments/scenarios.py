"""Deterministic stall scenarios: one named generator per cause.

Each function builds a minimal, scripted simulation whose trace
exhibits one stall type by construction, runs it, and returns the
TAPO analysis.  They serve three purposes: executable documentation of
what each stall looks like on the wire, ground truth for validating
the classifier, and ready-made fixtures for downstream users
(``python examples/stall_gallery.py`` prints the whole gallery).
"""

from __future__ import annotations

import random
from collections.abc import Callable

from ..app.client import ClientApp
from ..app.server import ServerApp
from ..app.session import Request, Session, SupplyChunk
from ..core.flow_analyzer import FlowAnalysis
from ..core.stalls import RetxCause, StallCause
from ..core.tapo import Tapo
from ..netsim.engine import EventLoop
from ..netsim.link import PathConfig
from ..netsim.loss import ScriptedDrop
from ..netsim.trace import CaptureTap
from ..packet.headers import ip_from_str
from ..tcp.endpoint import EndpointConfig, TcpConnection
from ..tcp.receiver import PausingReader
from .illustrative import ScriptedDelay

CLIENT_IP = ip_from_str("100.64.0.5")
SERVER_IP = ip_from_str("10.0.0.1")

#: Estimator seeding used so the scripted stalls land cleanly between
#: the stall threshold and the RTO.
CACHED_METRICS = {"init_srtt": 0.11, "init_rttvar": 0.15}


def _run(
    session: Session,
    path: PathConfig | None = None,
    client_kwargs: dict | None = None,
    server_kwargs: dict | None = None,
    until: float = 120.0,
    seed: int = 0,
) -> FlowAnalysis:
    engine = EventLoop()
    tap = CaptureTap(engine)
    connection = TcpConnection(
        engine,
        EndpointConfig(ip=CLIENT_IP, port=44000, **(client_kwargs or {})),
        EndpointConfig(
            ip=SERVER_IP, port=80, init_cwnd=10, **(server_kwargs or {})
        ),
        path or PathConfig(delay=0.05, rate_bps=10e6),
        random.Random(seed),
        tap=tap,
    )
    ServerApp(engine, connection.server, session)
    ClientApp(engine, connection.client, session)
    connection.open()
    engine.run(until=until)
    connection.teardown()
    analyses = Tapo().analyze_packets(tap.packets)
    if len(analyses) != 1:
        raise RuntimeError("scenario produced an unexpected flow count")
    return analyses[0]


def _single(response: int = 80_000, **kwargs) -> Session:
    return Session(
        requests=[Request(request_bytes=400, response_bytes=response, **kwargs)]
    )


def data_unavailable_scenario() -> FlowAnalysis:
    """The front-end waits 1.2 s for the back-end before responding."""
    return _run(_single(data_delay=1.2))


def resource_constraint_scenario() -> FlowAnalysis:
    """The server application pauses mid-response for 1.5 s."""
    session = _single(
        response=60_000,
        chunks=[SupplyChunk(30_000), SupplyChunk(30_000, delay=1.5)],
    )
    return _run(session)


def client_idle_scenario() -> FlowAnalysis:
    """The client thinks for 2 s between two requests."""
    session = Session(
        requests=[
            Request(request_bytes=400, response_bytes=10_000),
            Request(request_bytes=400, response_bytes=10_000, think_time=2.0),
        ]
    )
    return _run(session)


def zero_window_scenario() -> FlowAnalysis:
    """A 16 KB-buffer client stops reading for 1.5 s mid-transfer."""
    return _run(
        _single(response=200_000),
        client_kwargs=dict(
            rcv_buf=16_000,
            max_rcv_buf=16_000,
            rcv_buf_auto_grow=False,
            wscale=0,
            reader=PausingReader(pauses=[(0.5, 1.5)]),
        ),
        path=PathConfig(delay=0.05, rate_bps=4e6),
    )


def packet_delay_scenario() -> FlowAnalysis:
    """A 450 ms delay epoch below the RTO: a stall, no retransmission."""
    return _run(
        _single(response=300_000),
        path=PathConfig(
            delay=0.05,
            rate_bps=4e6,
            data_jitter=ScriptedDelay([(0.5, 0.7, 0.45)]),
        ),
        server_kwargs=dict(init_srtt=0.12, init_rttvar=0.2),
    )


def tail_loss_scenario() -> FlowAnalysis:
    """The final segments of the response are dropped."""
    return _run(
        _single(response=40_000),
        path=PathConfig(
            delay=0.05, rate_bps=8e6, data_loss=ScriptedDrop(range(27, 32))
        ),
    )


def continuous_loss_scenario() -> FlowAnalysis:
    """A blackout takes out the whole in-flight window."""
    return _run(
        _single(response=200_000),
        path=PathConfig(
            delay=0.05, rate_bps=6e6, data_loss=ScriptedDrop(range(30, 90))
        ),
    )


def double_loss_scenario() -> FlowAnalysis:
    """One segment is dropped twice: its repair dies too."""
    return _run(
        _single(response=200_000),
        path=PathConfig(
            delay=0.05,
            rate_bps=6e6,
            data_loss=ScriptedDrop([40], extra_drops=1),
        ),
        until=240.0,
        server_kwargs=dict(**CACHED_METRICS),
    )


def ack_delay_scenario() -> FlowAnalysis:
    """ACKs held beyond the RTO: the retransmission is spurious."""
    return _run(
        _single(response=120_000),
        path=PathConfig(
            delay=0.05,
            rate_bps=4e6,
            ack_jitter=ScriptedDelay([(0.35, 0.5, 1.2)]),
        ),
    )


def small_rwnd_scenario() -> FlowAnalysis:
    """A 2-MSS-window client drops a segment: no dupacks possible."""
    return _run(
        _single(response=60_000),
        path=PathConfig(
            delay=0.05, rate_bps=10e6, data_loss=ScriptedDrop([20])
        ),
        client_kwargs=dict(
            rcv_buf=2896, max_rcv_buf=2896, rcv_buf_auto_grow=False, wscale=0
        ),
        server_kwargs=dict(**CACHED_METRICS),
    )


#: name -> (builder, expected top-level cause, expected retx cause).
GALLERY: dict[
    str,
    tuple[Callable[[], FlowAnalysis], StallCause, RetxCause | None],
] = {
    "data_unavailable": (
        data_unavailable_scenario, StallCause.DATA_UNAVAILABLE, None,
    ),
    "resource_constraint": (
        resource_constraint_scenario, StallCause.RESOURCE_CONSTRAINT, None,
    ),
    "client_idle": (client_idle_scenario, StallCause.CLIENT_IDLE, None),
    "zero_window": (zero_window_scenario, StallCause.ZERO_RWND, None),
    "packet_delay": (packet_delay_scenario, StallCause.PACKET_DELAY, None),
    "tail_loss": (
        tail_loss_scenario, StallCause.RETRANSMISSION, RetxCause.TAIL,
    ),
    "continuous_loss": (
        continuous_loss_scenario,
        StallCause.RETRANSMISSION,
        RetxCause.CONTINUOUS_LOSS,
    ),
    "double_loss": (
        double_loss_scenario, StallCause.RETRANSMISSION, RetxCause.DOUBLE,
    ),
    "ack_delay": (
        ack_delay_scenario,
        StallCause.RETRANSMISSION,
        RetxCause.ACK_DELAY_LOSS,
    ),
}


def run_gallery() -> dict[str, FlowAnalysis]:
    """Run every scenario; returns {name: analysis}."""
    return {name: builder() for name, (builder, _, _) in GALLERY.items()}
