"""Runtime metrics for experiment runs.

The experiment layer can simulate hundreds of thousands of events per
invocation; :class:`RunMetrics` makes that work observable.  Every
:class:`~repro.experiments.runner.DatasetRun` carries one, the CLI
prints them with ``--stats``, and the parallel-scaling bench consumes
them to compute speedups.

Metrics are plain data (picklable) so they survive the on-disk dataset
cache and can be merged across services and worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class WorkerStats:
    """Per-worker accounting for one parallel run.

    ``busy_time`` is the wall-clock time the worker spent inside
    :func:`~repro.experiments.runner.run_flow`; dividing by the run's
    total wall time gives that worker's utilization.
    """

    worker_id: int
    flows: int = 0
    chunks: int = 0
    events: int = 0
    busy_time: float = 0.0

    def absorb(self, other: "WorkerStats") -> None:
        self.flows += other.flows
        self.chunks += other.chunks
        self.events += other.events
        self.busy_time += other.busy_time


@dataclass
class RunMetrics:
    """What one experiment run cost and where the time went."""

    wall_time: float = 0.0
    flows: int = 0
    events: int = 0
    packets: int = 0
    workers: int = 1
    chunks: int = 0
    chunks_retried: int = 0
    #: Chunks quarantined after killing every worker that ran them.
    chunks_poisoned: int = 0
    #: Flows quarantined under a tolerant error budget.
    flows_skipped: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Corrupted/truncated on-disk cache entries detected and dropped.
    cache_corruptions: int = 0
    #: Cache writes that failed (disk errors, unpicklable payloads).
    cache_store_failures: int = 0
    #: Flight-recorder totals for traced runs (0 when tracing is off).
    trace_events: int = 0
    trace_events_dropped: int = 0
    #: Wall time by pipeline phase (simulate/analyze/cache_load/...),
    #: accumulated via :func:`repro.obs.metrics.phase_span`.
    phases: dict[str, float] = field(default_factory=dict)
    worker_stats: list[WorkerStats] = field(default_factory=list)

    # -- derived rates ------------------------------------------------
    @property
    def events_per_sec(self) -> float:
        if self.wall_time <= 0:
            return 0.0
        return self.events / self.wall_time

    @property
    def packets_per_sec(self) -> float:
        if self.wall_time <= 0:
            return 0.0
        return self.packets / self.wall_time

    @property
    def flows_per_sec(self) -> float:
        if self.wall_time <= 0:
            return 0.0
        return self.flows / self.wall_time

    @property
    def utilization(self) -> float:
        """Fraction of the worker pool's capacity spent simulating."""
        if self.wall_time <= 0 or self.workers <= 0:
            return 0.0
        busy = sum(w.busy_time for w in self.worker_stats)
        if not self.worker_stats:
            busy = self.wall_time  # serial run: the one worker is us
        return min(1.0, busy / (self.wall_time * self.workers))

    # -- combination --------------------------------------------------
    def merge(self, other: "RunMetrics") -> "RunMetrics":
        """Fold ``other`` into this metrics object (in place)."""
        self.wall_time += other.wall_time
        self.flows += other.flows
        self.events += other.events
        self.packets += other.packets
        self.workers = max(self.workers, other.workers)
        self.chunks += other.chunks
        self.chunks_retried += other.chunks_retried
        self.chunks_poisoned += other.chunks_poisoned
        self.flows_skipped += other.flows_skipped
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_corruptions += other.cache_corruptions
        self.cache_store_failures += other.cache_store_failures
        self.trace_events += other.trace_events
        self.trace_events_dropped += other.trace_events_dropped
        for phase, seconds in other.phases.items():
            self.phases[phase] = self.phases.get(phase, 0.0) + seconds
        mine = {w.worker_id: w for w in self.worker_stats}
        for w in other.worker_stats:
            if w.worker_id in mine:
                mine[w.worker_id].absorb(w)
            else:
                self.worker_stats.append(
                    WorkerStats(
                        worker_id=w.worker_id,
                        flows=w.flows,
                        chunks=w.chunks,
                        events=w.events,
                        busy_time=w.busy_time,
                    )
                )
        return self

    @classmethod
    def merged(cls, parts: list["RunMetrics"]) -> "RunMetrics":
        total = cls()
        for part in parts:
            total.merge(part)
        return total

    def to_registry(self, prefix: str = "repro_"):
        """Absorb this object into a fresh
        :class:`~repro.obs.metrics.MetricsRegistry` (JSON/Prometheus
        rendering lives there)."""
        from ..obs.metrics import registry_from_run_metrics

        return registry_from_run_metrics(self, prefix=prefix)

    # -- presentation -------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "wall_time": self.wall_time,
            "flows": self.flows,
            "events": self.events,
            "packets": self.packets,
            "workers": self.workers,
            "chunks": self.chunks,
            "chunks_retried": self.chunks_retried,
            "chunks_poisoned": self.chunks_poisoned,
            "flows_skipped": self.flows_skipped,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_corruptions": self.cache_corruptions,
            "cache_store_failures": self.cache_store_failures,
            "trace_events": self.trace_events,
            "trace_events_dropped": self.trace_events_dropped,
            "phases": dict(sorted(self.phases.items())),
            "events_per_sec": self.events_per_sec,
            "packets_per_sec": self.packets_per_sec,
            "utilization": self.utilization,
            "worker_stats": [
                {
                    "worker_id": w.worker_id,
                    "flows": w.flows,
                    "chunks": w.chunks,
                    "events": w.events,
                    "busy_time": w.busy_time,
                }
                for w in self.worker_stats
            ],
        }

    def format(self) -> str:
        """Multi-line human summary (the CLI's ``--stats`` output)."""
        lines = [
            (
                f"wall {self.wall_time:.2f}s | {self.flows} flows | "
                f"{self.events} events ({self.events_per_sec:,.0f}/s) | "
                f"{self.packets} packets ({self.packets_per_sec:,.0f}/s)"
            ),
            (
                f"workers {self.workers} | chunks {self.chunks} "
                f"(retried {self.chunks_retried}, "
                f"poisoned {self.chunks_poisoned}) | "
                f"utilization {self.utilization:.0%} | "
                f"cache {self.cache_hits} hit / {self.cache_misses} miss "
                f"/ {self.cache_corruptions} corrupt"
            ),
        ]
        if self.flows_skipped:
            lines.append(f"skipped: {self.flows_skipped} flows quarantined")
        if self.phases:
            lines.append(
                "phases: "
                + " | ".join(
                    f"{name} {seconds:.2f}s"
                    for name, seconds in sorted(self.phases.items())
                )
            )
        if self.trace_events:
            lines.append(
                f"trace: {self.trace_events} events "
                f"({self.trace_events_dropped} dropped)"
            )
        for w in sorted(self.worker_stats, key=lambda w: w.worker_id):
            lines.append(
                f"  worker {w.worker_id}: {w.flows} flows, "
                f"{w.events} events, busy {w.busy_time:.2f}s"
            )
        return "\n".join(lines)
