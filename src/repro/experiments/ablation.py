"""Ablation studies over the design choices DESIGN.md calls out.

Each function sweeps one mechanism while holding the seeded workload
fixed, returning comparable metrics:

* :func:`sweep_srto_parameters` — the paper leaves T1 "tunable per
  application"; sweep it (and T2) and report tail latency + cost.
* :func:`pacing_ablation` — Sec. 4.3 suggests pacing as the
  continuous-loss mitigation; measure its effect on stall makeup.
* :func:`destination_cache_ablation` — Linux's per-destination RTT
  metrics cache is what keeps short-flow RTOs conservative; measure
  RTO levels and spurious retransmissions without it.
* :func:`tau_sensitivity` — TAPO's stall threshold multiplier (the
  paper picks tau = 2); count how detection changes with it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..config import AnalysisConfig
from ..core.report import ServiceReport, percentile
from ..core.stalls import RetxCause, StallCause
from ..core.tapo import Tapo
from ..workload.generator import generate_flows
from ..workload.services import ServiceProfile
from .mitigation import run_policy
from .runner import run_flows


@dataclass
class SrtoSweepPoint:
    t1: int
    t2: int
    p90_latency: float
    p95_latency: float
    mean_latency: float
    retransmission_ratio: float
    flows: int


def sweep_srto_parameters(
    profile: ServiceProfile,
    flows: int = 150,
    seed: int = 5,
    t1_values: tuple[int, ...] = (3, 5, 10, 20),
    t2_values: tuple[int, ...] = (5,),
    workers: int | None = 1,
) -> list[SrtoSweepPoint]:
    """Latency/cost of S-RTO across its T1/T2 design space, with the
    native baseline reported as ``t1 = 0`` (probe never armed)."""
    points = []
    baseline = run_policy(
        profile, "native", flows, seed, short_flow_max=None, workers=workers
    )
    points.append(
        SrtoSweepPoint(
            t1=0,
            t2=0,
            p90_latency=baseline.latency_quantile(90),
            p95_latency=baseline.latency_quantile(95),
            mean_latency=baseline.mean_latency,
            retransmission_ratio=baseline.retransmission_ratio,
            flows=baseline.flows,
        )
    )
    for t1 in t1_values:
        for t2 in t2_values:
            outcome = run_policy(
                profile, "srto", flows, seed, t1=t1, t2=t2,
                short_flow_max=None, workers=workers,
            )
            points.append(
                SrtoSweepPoint(
                    t1=t1,
                    t2=t2,
                    p90_latency=outcome.latency_quantile(90),
                    p95_latency=outcome.latency_quantile(95),
                    mean_latency=outcome.mean_latency,
                    retransmission_ratio=outcome.retransmission_ratio,
                    flows=outcome.flows,
                )
            )
    return points


@dataclass
class PacingAblation:
    """Stall makeup with and without sender pacing."""

    stalls_unpaced: int = 0
    stalls_paced: int = 0
    continuous_loss_unpaced: int = 0
    continuous_loss_paced: int = 0
    retx_time_unpaced: float = 0.0
    retx_time_paced: float = 0.0
    mean_latency_unpaced: float = 0.0
    mean_latency_paced: float = 0.0


def _analyze_run(run) -> ServiceReport:
    tapo = Tapo()
    report = ServiceReport(service="ablation")
    for trace in run.traces:
        for analysis in tapo.analyze_packets(trace):
            report.add(analysis)
    return report


def pacing_ablation(
    profile: ServiceProfile,
    flows: int = 150,
    seed: int = 9,
    workers: int | None = 1,
) -> PacingAblation:
    """Run the same workload with and without pacing."""
    result = PacingAblation()
    for paced in (False, True):
        scenarios = []
        for scenario in generate_flows(profile, flows, seed=seed):
            server = dataclasses.replace(scenario.server_config, pacing=paced)
            scenarios.append(
                dataclasses.replace(scenario, server_config=server)
            )
        run = run_flows(scenarios, workers=workers)
        report = _analyze_run(run)
        total = report.total_stalls()
        continuous = sum(
            1
            for flow in report.flows
            for stall in flow.stalls
            if stall.retx_cause == RetxCause.CONTINUOUS_LOSS
        )
        retx_time = sum(
            stall.duration
            for flow in report.flows
            for stall in flow.stalls
            if stall.cause == StallCause.RETRANSMISSION
        )
        latencies = [
            r.latency for r in run.results if r.latency is not None
        ]
        mean_latency = sum(latencies) / max(1, len(latencies))
        if paced:
            result.stalls_paced = total
            result.continuous_loss_paced = continuous
            result.retx_time_paced = retx_time
            result.mean_latency_paced = mean_latency
        else:
            result.stalls_unpaced = total
            result.continuous_loss_unpaced = continuous
            result.retx_time_unpaced = retx_time
            result.mean_latency_unpaced = mean_latency
    return result


@dataclass
class CacheAblation:
    """Effect of the destination RTT-metrics cache."""

    rto_p50_cached: float = 0.0
    rto_p50_fresh: float = 0.0
    spurious_cached: int = 0
    spurious_fresh: int = 0
    timeouts_cached: int = 0
    timeouts_fresh: int = 0


def destination_cache_ablation(
    profile: ServiceProfile,
    flows: int = 150,
    seed: int = 13,
    workers: int | None = 1,
) -> CacheAblation:
    """Same workload with and without cached SRTT/RTTVAR seeding."""
    result = CacheAblation()
    for cached in (True, False):
        scenarios = []
        for scenario in generate_flows(profile, flows, seed=seed):
            server = scenario.server_config
            if not cached:
                server = dataclasses.replace(
                    server, init_srtt=None, init_rttvar=None
                )
            scenarios.append(
                dataclasses.replace(scenario, server_config=server)
            )
        run = run_flows(scenarios, workers=workers)
        report = _analyze_run(run)
        rtos = [v for f in report.flows for v in f.rto_samples]
        spurious = sum(f.spurious_retransmissions for f in report.flows)
        timeouts = sum(f.timeouts for f in report.flows)
        p50 = percentile(rtos, 50) if rtos else 0.0
        if cached:
            result.rto_p50_cached = p50
            result.spurious_cached = spurious
            result.timeouts_cached = timeouts
        else:
            result.rto_p50_fresh = p50
            result.spurious_fresh = spurious
            result.timeouts_fresh = timeouts
    return result


@dataclass
class FrtoAblation:
    """Effect of F-RTO spurious-timeout detection."""

    retx_ratio_off: float = 0.0
    retx_ratio_on: float = 0.0
    spurious_detected: int = 0
    timeouts_off: int = 0
    timeouts_on: int = 0
    mean_latency_off: float = 0.0
    mean_latency_on: float = 0.0


def frto_ablation(
    profile: ServiceProfile,
    flows: int = 150,
    seed: int = 21,
    workers: int | None = 1,
) -> FrtoAblation:
    """Same workload with and without F-RTO on the server."""
    result = FrtoAblation()
    for enabled in (False, True):
        scenarios = []
        for scenario in generate_flows(profile, flows, seed=seed):
            server = dataclasses.replace(scenario.server_config, frto=enabled)
            scenarios.append(
                dataclasses.replace(scenario, server_config=server)
            )
        run = run_flows(scenarios, workers=workers)
        retx = sum(r.server_stats.retransmissions for r in run.results)
        sent = sum(r.server_stats.data_segments_sent for r in run.results)
        timeouts = sum(r.server_stats.rto_timeouts for r in run.results)
        latencies = [r.latency for r in run.results if r.latency is not None]
        mean_latency = sum(latencies) / max(1, len(latencies))
        if enabled:
            result.retx_ratio_on = retx / max(1, sent)
            result.timeouts_on = timeouts
            result.mean_latency_on = mean_latency
            result.spurious_detected = sum(
                r.server_stats.frto_spurious_detected for r in run.results
            )
        else:
            result.retx_ratio_off = retx / max(1, sent)
            result.timeouts_off = timeouts
            result.mean_latency_off = mean_latency
    return result


@dataclass
class TauPoint:
    tau: float
    stalls: int
    stalled_time: float
    flows_with_stalls: int


def tau_sensitivity(
    profile: ServiceProfile,
    flows: int = 100,
    seed: int = 17,
    taus: tuple[float, ...] = (1.5, 2.0, 3.0, 4.0),
    workers: int | None = 1,
) -> list[TauPoint]:
    """Detection sensitivity to TAPO's threshold multiplier.

    The traces are simulated once; only the analyzer's tau changes.
    """
    run = run_flows(generate_flows(profile, flows, seed=seed), workers=workers)
    points = []
    for tau in taus:
        tapo = Tapo(config=AnalysisConfig(tau=tau))
        report = ServiceReport(service=f"tau={tau}")
        for trace in run.traces:
            for analysis in tapo.analyze_packets(trace):
                report.add(analysis)
        points.append(
            TauPoint(
                tau=tau,
                stalls=report.total_stalls(),
                stalled_time=sum(
                    f.stalled_time for f in report.flows
                ),
                flows_with_stalls=report.flows_with_stalls(),
            )
        )
    return points
