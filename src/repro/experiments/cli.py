"""One-command paper reproduction: ``repro-paper``.

Runs the whole pipeline — simulate the three services, analyze with
TAPO, print every table/figure summary, run the mitigation A/B, and
optionally export figure data files — so the paper's evaluation
regenerates with::

    repro-paper --flows 150 --mitigation-flows 300 --export-dir out/
"""

from __future__ import annotations

import argparse
import sys
import time

from .. import cli_options
from ..config import RunConfig
from ..workload.services import get_profile
from .dataset import build_dataset
from .illustrative import run_illustrative_flow
from .mitigation import compare_policies, make_short_flow_profile
from .tables import (
    format_fig1,
    format_fig3,
    format_fig6_table4,
    format_fig7_table6,
    format_fig10_table7,
    format_fig11,
    format_fig12,
    format_table1,
    format_table3,
    format_table5,
    format_table8,
    format_table9,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-paper",
        description=(
            "Regenerate the evaluation of 'Demystifying and Mitigating "
            "TCP Stalls at the Server Side' (CoNEXT'15)."
        ),
        epilog=(
            "Subcommand: 'repro-paper trace --flow N' re-simulates one "
            "flow with the flight recorder on and dumps its "
            "kernel-variable time-series (see 'repro-paper trace -h')."
        ),
    )
    parser.add_argument(
        "--flows",
        type=int,
        default=150,
        help="flows per service for the measurement study (default 150)",
    )
    parser.add_argument(
        "--mitigation-flows",
        type=int,
        default=300,
        help="flows per policy for Tables 8/9 (default 300)",
    )
    parser.add_argument(
        "--seed", type=int, default=20141222, help="dataset seed"
    )
    parser.add_argument(
        "--skip-mitigation",
        action="store_true",
        help="skip the (slower) Table 8/9 policy sweep",
    )
    cli_options.add_policies(
        parser,
        help=(
            "policies for the mitigation sweep (registry-validated; "
            "must include native, tlp, and srto, which Tables 8/9 "
            "compare; default: exactly those three)"
        ),
    )
    parser.add_argument(
        "--export-dir",
        help="also write gnuplot-ready figure data files here",
    )
    cli_options.add_workers(
        parser,
        default=0,
        help=(
            "simulation worker processes (0 = one per core, 1 = serial; "
            "results are identical either way; default 0)"
        ),
    )
    cli_options.add_no_cache(parser)
    cli_options.add_stats(
        parser,
        help="print runtime metrics (events/sec, workers, cache) to stderr",
    )
    cli_options.add_metrics_out(
        parser,
        help=(
            "write run metrics to PREFIX.json and PREFIX.prom "
            "(Prometheus text exposition)"
        ),
    )
    cli_options.add_results_store(
        parser,
        help=(
            "append per-service summary records and the mitigation "
            "policy rankings to the longitudinal results store at PATH"
        ),
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        # ``repro-paper trace``: flight-recorder deep dive on one flow.
        from ..obs.export import trace_main

        return trace_main(argv[1:])

    args = build_parser().parse_args(argv)
    started = time.time()

    print(
        f"simulating {args.flows} flows x 3 services "
        f"(seed {args.seed})...",
        file=sys.stderr,
    )
    dataset = build_dataset(
        flows_per_service=args.flows,
        seed=args.seed,
        run=RunConfig(workers=args.workers, use_cache=not args.no_cache),
    )
    print(
        f"  {dataset.total_packets} packets analyzed in "
        f"{time.time() - started:.1f}s",
        file=sys.stderr,
    )
    if args.stats:
        print(dataset.metrics.format(), file=sys.stderr)
    if args.metrics_out:
        from ..obs.metrics import write_registry

        json_path, prom_path = write_registry(
            dataset.metrics.to_registry(), args.metrics_out
        )
        print(
            f"wrote metrics to {json_path} and {prom_path}",
            file=sys.stderr,
        )
    reports = dataset.reports

    sections = [
        format_table1(reports),
        format_fig1(reports),
        format_fig3(reports),
        format_table3(reports),
        format_fig6_table4(reports),
        format_table5(reports),
        format_fig7_table6(reports),
        format_fig10_table7(reports),
        format_fig11(reports),
        format_fig12(reports),
    ]
    for section in sections:
        print(section)
        print()

    illustrative = run_illustrative_flow()
    print(
        f"Figure 2: {illustrative.total_bytes} bytes in "
        f"{illustrative.transfer_time:.2f}s, "
        f"stalled {illustrative.stalled_time:.2f}s"
    )
    for stall in illustrative.analysis.stalls:
        print("  " + stall.describe())
    print()

    comparisons = []
    if not args.skip_mitigation:
        if args.policies is not None:
            missing = [
                name
                for name in ("native", "tlp", "srto")
                if name not in args.policies
            ]
            if missing:
                print(
                    "repro-paper run: --policies must include "
                    f"{', '.join(missing)} (Tables 8/9 compare them)",
                    file=sys.stderr,
                )
                return 2
        n_policies = len(args.policies) if args.policies is not None else 3
        print(
            f"running mitigation sweep ({args.mitigation_flows} flows x "
            f"{n_policies} policies x 2 services)...",
            file=sys.stderr,
        )
        comparisons = [
            compare_policies(
                get_profile("web_search"),
                flows=args.mitigation_flows,
                seed=5,
                t1=5,
                short_flow_max=None,
                workers=args.workers,
                policies=args.policies,
            ),
            compare_policies(
                make_short_flow_profile(get_profile("cloud_storage")),
                flows=args.mitigation_flows,
                seed=5,
                t1=10,
                short_flow_max=None,
                workers=args.workers,
                policies=args.policies,
            ),
        ]
        print(format_table8(comparisons))
        print()
        print(format_table9(comparisons))
        print()

    if args.results_store:
        from ..results.store import (
            ResultsStore,
            record_fields_from_report,
        )

        run_seconds = time.time() - started
        run_config = {
            "flows": args.flows,
            "mitigation_flows": args.mitigation_flows,
            "seed": args.seed,
        }
        with ResultsStore(args.results_store) as store:
            for service, report in reports.items():
                store.append(
                    "experiment",
                    service,
                    wall_time=run_seconds,
                    config=run_config,
                    **record_fields_from_report(report),
                )
            if comparisons:
                # Per-service policy order, best (lowest mean
                # latency) first — the Table 8/9 conclusion the trend
                # engine watches for flips.
                rankings = {
                    comparison.service: sorted(
                        comparison.outcomes,
                        key=lambda policy: comparison.outcomes[
                            policy
                        ].mean_latency,
                    )
                    for comparison in comparisons
                }
                metrics = {
                    f"{comparison.service}_{policy}_mean_latency": (
                        outcome.mean_latency
                    )
                    for comparison in comparisons
                    for policy, outcome in comparison.outcomes.items()
                }
                store.append(
                    "experiment",
                    "mitigation",
                    metrics=metrics,
                    rankings=rankings,
                    wall_time=run_seconds,
                    config=run_config,
                )
        print(
            f"appended {len(reports) + (1 if comparisons else 0)} "
            f"records to {args.results_store}",
            file=sys.stderr,
        )

    if args.export_dir:
        from .export import export_all

        written = export_all(reports, illustrative, args.export_dir)
        print(
            f"exported {len(written)} figure data files to "
            f"{args.export_dir}",
            file=sys.stderr,
        )

    print(f"total wall time: {time.time() - started:.1f}s", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
