"""Export figure series to plain-text data files.

The paper's figures are CDFs and scatter series; this module writes
them as whitespace-separated ``.dat`` files (one per curve) that
gnuplot, matplotlib, or a spreadsheet can plot directly — keeping the
library itself free of plotting dependencies.

Layout written by :func:`export_all`::

    <out>/fig1a_rtt_<service>.dat        value  cdf
    <out>/fig1a_rto_<service>.dat        value  cdf
    <out>/fig1b_rto_over_rtt_<service>.dat
    <out>/fig2_sequence.dat              time   relative_seq
    <out>/fig2_rtt.dat                   time   rtt
    <out>/fig3_stall_ratio_<service>.dat
    <out>/fig6_init_rwnd_<service>.dat
    <out>/fig7a_double_position_<service>.dat
    <out>/fig7b_double_in_flight_<service>.dat
    <out>/fig10a_tail_position_<service>.dat
    <out>/fig10b_tail_in_flight_<service>.dat
    <out>/fig11_in_flight_<service>.dat
    <out>/fig12_continuous_loss_<service>.dat
"""

from __future__ import annotations

from collections.abc import Mapping
from pathlib import Path

from ..core.report import ServiceReport, cdf_points
from .illustrative import IllustrativeResult


def write_series(
    path: Path, rows: list[tuple[float, float]], header: str
) -> None:
    """Write one two-column data file."""
    with open(path, "w") as handle:
        handle.write(f"# {header}\n")
        for x, y in rows:
            handle.write(f"{x:.6f} {y:.6f}\n")


def write_cdf(path: Path, values: list[float], label: str) -> bool:
    """Write a CDF data file; False when there are no samples."""
    points = cdf_points(values)
    if not points:
        return False
    write_series(path, points, f"{label}: value cdf")
    return True


def export_reports(
    reports: Mapping[str, ServiceReport], out_dir: str | Path
) -> list[Path]:
    """Write every figure series of the measurement study."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    def emit(name: str, values: list[float], label: str) -> None:
        path = out / name
        if write_cdf(path, values, label):
            written.append(path)

    for service, report in reports.items():
        emit(
            f"fig1a_rtt_{service}.dat",
            report.rtt_values(),
            f"Fig 1a per-flow RTT, {service}",
        )
        emit(
            f"fig1a_rto_{service}.dat",
            report.rto_values(),
            f"Fig 1a per-flow RTO, {service}",
        )
        emit(
            f"fig1b_rto_over_rtt_{service}.dat",
            report.rto_over_rtt_values(),
            f"Fig 1b RTO/RTT, {service}",
        )
        emit(
            f"fig3_stall_ratio_{service}.dat",
            report.stall_ratio_values(),
            f"Fig 3 stalled/transmission time, {service}",
        )
        emit(
            f"fig6_init_rwnd_{service}.dat",
            [float(v) for v in report.init_rwnd_values()],
            f"Fig 6 initial rwnd (MSS), {service}",
        )
        emit(
            f"fig7a_double_position_{service}.dat",
            report.double_positions(),
            f"Fig 7a double-retrans position, {service}",
        )
        emit(
            f"fig7b_double_in_flight_{service}.dat",
            [float(v) for v in report.double_in_flights()],
            f"Fig 7b double-retrans in-flight, {service}",
        )
        emit(
            f"fig10a_tail_position_{service}.dat",
            report.tail_positions(),
            f"Fig 10a tail-retrans position, {service}",
        )
        emit(
            f"fig10b_tail_in_flight_{service}.dat",
            [float(v) for v in report.tail_in_flights()],
            f"Fig 10b tail-retrans in-flight, {service}",
        )
        emit(
            f"fig11_in_flight_{service}.dat",
            [float(v) for v in report.in_flight_values()],
            f"Fig 11 per-ACK in-flight, {service}",
        )
        emit(
            f"fig12_continuous_loss_{service}.dat",
            [float(v) for v in report.continuous_loss_in_flights()],
            f"Fig 12 continuous-loss in-flight, {service}",
        )
    return written


def export_illustrative(
    result: IllustrativeResult, out_dir: str | Path
) -> list[Path]:
    """Write the Fig. 2 time/sequence and RTT series."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    seq_path = out / "fig2_sequence.dat"
    write_series(
        seq_path,
        [(t, float(s)) for t, s in result.seq_series],
        "Fig 2: time relative_seq",
    )
    rtt_path = out / "fig2_rtt.dat"
    write_series(rtt_path, result.rtt_series, "Fig 2: time rtt")
    return [seq_path, rtt_path]


def export_all(
    reports: Mapping[str, ServiceReport],
    illustrative: IllustrativeResult | None,
    out_dir: str | Path,
) -> list[Path]:
    """Write every exportable series; returns the files written."""
    written = export_reports(reports, out_dir)
    if illustrative is not None:
        written.extend(export_illustrative(illustrative, out_dir))
    return written
