"""Run flow scenarios through the simulator and collect traces.

Each flow runs in its own event loop (flows in the paper's dataset are
analyzed independently, so there is no cross-flow coupling to model;
shared-bottleneck effects are represented by the per-flow loss/queue
models).  The output of a run is exactly what a front-end tcpdump
would give: the server-side packet trace, plus ground-truth transport
statistics that the tests use to validate TAPO.
"""

from __future__ import annotations

import random
import time
from collections.abc import Iterable
from dataclasses import dataclass, field

from ..app.client import ClientApp
from ..app.server import ServerApp
from ..app.session import SessionResult
from ..config import RunConfig
from ..netsim.engine import EventLoop
from ..netsim.trace import CaptureTap
from ..obs.recorder import (
    DEFAULT_RING_CAPACITY,
    EngineProbe,
    FlightRecorder,
    TraceEvent,
)
from ..packet.packet import PacketRecord
from ..tcp.endpoint import TcpConnection
from ..tcp.sender import SenderStats
from ..workload.generator import FlowScenario
from .metrics import RunMetrics


@dataclass
class FlowRunResult:
    """Everything observable about one simulated flow."""

    scenario: FlowScenario
    packets: list[PacketRecord]
    session_result: SessionResult
    server_stats: SenderStats
    sim_time: float
    events: int
    #: Flight-recorder events (``None`` unless the flow ran with
    #: ``trace`` enabled); ordered by record time within the flow.
    trace_events: list[TraceEvent] | None = None
    #: Events evicted from the full recorder ring during the run.
    trace_dropped: int = 0

    @property
    def complete(self) -> bool:
        return self.session_result.complete

    @property
    def latency(self) -> float | None:
        """First-request-to-last-response completion time."""
        timings = self.session_result.timings
        if not timings or timings[-1].completed_at is None:
            return None
        return timings[-1].completed_at - timings[0].sent_at

    @property
    def response_bytes(self) -> int:
        return self.scenario.session.total_response_bytes


#: Bounds for the adaptive completion-poll slice (simulated seconds).
_MIN_POLL_SLICE = 0.25
_MAX_POLL_SLICE = 30.0


def _poll_slice(connection: TcpConnection) -> float:
    """Simulated time between completion checks, scaled to the flow.

    A few RTOs is long enough that polling is a rounding error in the
    event count, and short enough that a finished flow stops within one
    recovery timescale instead of a fixed 5-second grid.
    """
    sender = connection.server.sender
    if sender is None:  # handshake not done yet; RTTs are sub-second
        return 1.0
    rto = sender.rto_estimator.rto
    return min(max(4.0 * rto, _MIN_POLL_SLICE), _MAX_POLL_SLICE)


def run_flow(
    scenario: FlowScenario,
    max_sim_time: float = 600.0,
    trace: bool | str = False,
    trace_capacity: int = DEFAULT_RING_CAPACITY,
) -> FlowRunResult:
    """Simulate one flow scenario to completion (or the time cap).

    ``trace`` opts the flow into the flight recorder
    (:mod:`repro.obs.recorder`): truthy attaches a recorder to the
    server's sender; the string ``"engine"`` additionally records raw
    event-loop activity.  Tracing is purely observational — the packet
    trace is byte-identical with it on or off.
    """
    engine = EventLoop()
    rng = random.Random(scenario.seed ^ 0x5EED)
    tap = CaptureTap(engine)
    recorder = (
        FlightRecorder(flow_id=scenario.flow_id, capacity=trace_capacity)
        if trace
        else None
    )
    if recorder is not None and trace == "engine":
        engine.observer = EngineProbe(recorder)
    connection = TcpConnection(
        engine,
        client_config=scenario.client_config,
        server_config=scenario.server_config,
        path_config=scenario.path_config,
        rng=rng,
        tap=tap,
        recorder=recorder,
    )
    ServerApp(engine, connection.server, scenario.session)
    done: dict[str, bool] = {}
    client_app = ClientApp(
        engine,
        connection.client,
        scenario.session,
        on_done=lambda result: done.setdefault("finished", True),
    )
    connection.open()

    # Run in slices so we can stop as soon as the session completes and
    # the server has drained (FIN acked or sender gave up).  The slice
    # is adaptive: a few RTOs of simulated time per completion check,
    # jumping straight to the next pending event when the queue is
    # sparse (deep RTO backoff), so short flows exit promptly and long
    # stalls don't burn hundreds of no-op loop restarts.
    while engine.now < max_sim_time:
        next_time = engine.peek_time()
        if next_time is None:
            break
        horizon = engine.now + _poll_slice(connection)
        engine.run(until=min(max(horizon, next_time), max_sim_time))
        server_sender = connection.server.sender
        if done.get("finished") and (
            server_sender is None or server_sender.all_acked
            or server_sender.failed
        ):
            break

    if connection.server.sender is not None and connection.server.sender.failed:
        client_app.result.failed = True
    connection.teardown()
    return FlowRunResult(
        scenario=scenario,
        packets=tap.packets,
        session_result=client_app.result,
        server_stats=(
            connection.server.sender.stats
            if connection.server.sender is not None
            else SenderStats()
        ),
        sim_time=engine.now,
        events=engine.events_run,
        trace_events=recorder.dump() if recorder is not None else None,
        trace_dropped=recorder.dropped if recorder is not None else 0,
    )


@dataclass
class DatasetRun:
    """Results of running a batch of flows for one service."""

    service: str
    results: list[FlowRunResult] = field(default_factory=list)
    metrics: RunMetrics | None = None

    @property
    def traces(self) -> list[list[PacketRecord]]:
        return [result.packets for result in self.results]

    @property
    def completed(self) -> int:
        return sum(1 for result in self.results if result.complete)

    def total_packets(self) -> int:
        return sum(len(result.packets) for result in self.results)

    def merged_trace_events(self) -> list[TraceEvent]:
        """All flows' flight-recorder events, deterministically ordered
        by (flow, sim-time, record index)."""
        from ..obs.recorder import merge_events

        return merge_events(result.trace_events for result in self.results)


def run_flows(
    scenarios: Iterable[FlowScenario],
    max_sim_time: float = 600.0,
    workers: int | None = 1,
    trace: bool | str = False,
    run: "RunConfig | None" = None,
) -> DatasetRun:
    """Run a batch of scenarios; returns the collected results.

    ``run`` (a :class:`repro.config.RunConfig`) overrides ``workers``
    when given.

    ``workers`` selects the execution engine: ``1`` (the default) runs
    serially in-process; any other value — including ``None``/``0`` for
    "all cores" — shards the batch across a process pool via
    :mod:`repro.experiments.parallel`.  Parallel output is
    byte-identical to serial for the same scenarios.

    ``trace`` attaches a flight recorder to every flow (see
    :func:`run_flow`); merged events come back on each result's
    ``trace_events`` and are deterministic across worker counts.
    """
    if run is not None:
        workers = run.workers
    if workers != 1:
        from .parallel import run_flows_parallel

        return run_flows_parallel(
            scenarios,
            max_sim_time=max_sim_time,
            workers=workers,
            trace=trace,
        )
    started = time.perf_counter()
    results = []
    service = ""
    for scenario in scenarios:
        service = scenario.service
        results.append(
            run_flow(scenario, max_sim_time=max_sim_time, trace=trace)
        )
    metrics = RunMetrics(
        wall_time=time.perf_counter() - started,
        flows=len(results),
        events=sum(r.events for r in results),
        packets=sum(len(r.packets) for r in results),
        workers=1,
        chunks=1,
        trace_events=sum(len(r.trace_events or ()) for r in results),
        trace_events_dropped=sum(r.trace_dropped for r in results),
    )
    metrics.phases["simulate"] = metrics.wall_time
    return DatasetRun(service=service, results=results, metrics=metrics)
