"""Experiment harnesses: dataset construction, mitigation A/B, ablations, tables."""

from .ablation import (
    CacheAblation,
    FrtoAblation,
    frto_ablation,
    PacingAblation,
    SrtoSweepPoint,
    TauPoint,
    destination_cache_ablation,
    pacing_ablation,
    sweep_srto_parameters,
    tau_sensitivity,
)
from .cache import DatasetCache, dataset_cache_key, dataset_fingerprint
from .dataset import SERVICES, Dataset, build_dataset, clear_cache
from .export import export_all, export_illustrative, export_reports
from .fairness import FairnessResult, run_fairness
from .metrics import RunMetrics, WorkerStats
from .parallel import resolve_workers, run_flows_parallel
from .validation import ValidationResult, validate_inference
from .illustrative import IllustrativeResult, run_illustrative_flow
from .mitigation import (
    LARGE_FLOW_MIN_BYTES,
    POLICIES,
    SHORT_FLOW_MAX_BYTES,
    MitigationComparison,
    PolicyOutcome,
    compare_policies,
    make_large_flow_profile,
    make_short_flow_profile,
    run_policy,
)
from .runner import DatasetRun, FlowRunResult, run_flow, run_flows
from .scenarios import GALLERY, run_gallery
from .tables import (
    format_fig1,
    format_fig3,
    format_fig6_table4,
    format_fig7_table6,
    format_fig10_table7,
    format_fig11,
    format_fig12,
    format_table1,
    format_table3,
    format_table5,
    format_table8,
    format_table9,
)

__all__ = [
    "CacheAblation",
    "Dataset",
    "DatasetCache",
    "DatasetRun",
    "FlowRunResult",
    "IllustrativeResult",
    "LARGE_FLOW_MIN_BYTES",
    "MitigationComparison",
    "PacingAblation",
    "GALLERY",
    "POLICIES",
    "PolicyOutcome",
    "RunMetrics",
    "SERVICES",
    "SHORT_FLOW_MAX_BYTES",
    "SrtoSweepPoint",
    "TauPoint",
    "ValidationResult",
    "WorkerStats",
    "build_dataset",
    "clear_cache",
    "compare_policies",
    "dataset_cache_key",
    "dataset_fingerprint",
    "destination_cache_ablation",
    "FairnessResult",
    "FrtoAblation",
    "export_all",
    "export_illustrative",
    "export_reports",
    "format_fig1",
    "format_fig3",
    "format_fig6_table4",
    "format_fig7_table6",
    "format_fig10_table7",
    "format_fig11",
    "format_fig12",
    "format_table1",
    "format_table3",
    "format_table5",
    "format_table8",
    "format_table9",
    "make_large_flow_profile",
    "frto_ablation",
    "pacing_ablation",
    "make_short_flow_profile",
    "resolve_workers",
    "run_flow",
    "run_flows",
    "run_flows_parallel",
    "run_gallery",
    "run_fairness",
    "run_illustrative_flow",
    "run_policy",
    "sweep_srto_parameters",
    "tau_sensitivity",
    "validate_inference",
]
