"""Content-addressed on-disk cache for simulated datasets.

The paper's measurement section is one dataset analyzed many ways;
this cache extends :func:`~repro.experiments.dataset.build_dataset`'s
in-process memoization across processes, so the bench suite, the CLI,
and ad-hoc scripts all reuse one simulation run.

Keying: entries are addressed by a SHA-256 over the build parameters
(flows per service, seed, service names, each service's full profile
repr) **plus a code-version salt** — a digest of every ``.py`` file in
the ``repro`` package.  Any change to the simulator, the workload
profiles, or the analyzer invalidates every entry automatically; there
is no manual invalidation to forget.

Robustness: entries are written atomically (temp file + ``os.replace``)
and carry a payload checksum.  A truncated, corrupted, or
version-skewed entry is detected at load time, deleted, and reported
as a miss — the caller falls back to re-simulation.  All disk errors
are swallowed: the cache is an accelerator, never a point of failure.

The cache root is ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``; size is
bounded by an entry count and a byte cap (oldest entries evicted).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path

from ..errors import CacheError

_MAGIC = b"REPRODS1"

#: What ``pickle.loads`` raises on damaged or version-skewed payloads.
#: Anything outside this set is a real bug and should propagate.
_UNPICKLE_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    AttributeError,
    ImportError,
    IndexError,
    MemoryError,
    ValueError,
    TypeError,
)

#: What serializing + atomically writing an entry can legitimately
#: raise; the cache is an accelerator, so these become a counted no-op.
_STORE_ERRORS = (
    OSError,
    pickle.PicklingError,
    AttributeError,
    TypeError,
    RecursionError,
)
_PREFIX = "ds_"
_SUFFIX = ".pkl"

DEFAULT_MAX_ENTRIES = 24
DEFAULT_MAX_BYTES = 1 << 30  # 1 GiB

_code_salt: str | None = None


def code_version_salt() -> str:
    """Digest of the ``repro`` package source (cached per process)."""
    global _code_salt
    if _code_salt is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _code_salt = digest.hexdigest()
    return _code_salt


def dataset_cache_key(
    flows_per_service: int, seed: int, services: tuple[str, ...]
) -> tuple:
    """In-process memo key; the fingerprint below hashes the same
    parameters, so both cache layers agree on identity."""
    return (int(flows_per_service), int(seed), tuple(services))


def dataset_fingerprint(
    flows_per_service: int, seed: int, services: tuple[str, ...]
) -> str:
    """Content address of one dataset build."""
    from ..workload.services import get_profile

    digest = hashlib.sha256()
    digest.update(code_version_salt().encode())
    digest.update(
        repr(dataset_cache_key(flows_per_service, seed, services)).encode()
    )
    for service in services:
        digest.update(repr(get_profile(service)).encode())
    return digest.hexdigest()[:40]


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro").expanduser()


class DatasetCache:
    """Bounded store of pickled datasets under a cache directory."""

    def __init__(
        self,
        root: Path | str | None = None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        #: Entries dropped because the checksum or unpickle failed.
        self.corruptions = 0
        #: Writes that failed (disk full, unpicklable payload, ...).
        self.store_failures = 0

    # -- paths --------------------------------------------------------
    def path_for(self, fingerprint: str) -> Path:
        return self.root / f"{_PREFIX}{fingerprint}{_SUFFIX}"

    def entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return [
            p
            for p in self.root.iterdir()
            if p.name.startswith(_PREFIX) and p.name.endswith(_SUFFIX)
        ]

    # -- load/store ---------------------------------------------------
    def load(self, fingerprint: str):
        """Return the cached object, or None on miss/corruption."""
        path = self.path_for(fingerprint)
        try:
            blob = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            obj = self._decode(blob)
        except CacheError:
            # Corrupted, truncated, or version-skewed: drop the entry
            # so it is rebuilt.  Corruption is always a recoverable
            # miss, never a failure.
            self.misses += 1
            self.corruptions += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        try:
            os.utime(path)  # LRU freshness for eviction
        except OSError:
            pass
        return obj

    @staticmethod
    def _verify(blob: bytes) -> bytes | None:
        header = len(_MAGIC) + 32
        if len(blob) < header or not blob.startswith(_MAGIC):
            return None
        checksum = blob[len(_MAGIC) : header]
        payload = blob[header:]
        if hashlib.sha256(payload).digest() != checksum:
            return None
        return payload

    @classmethod
    def _decode(cls, blob: bytes):
        """Verify and unpickle an entry blob.

        Raises :class:`~repro.errors.CacheError` on any damage so the
        caller has exactly one recovery path (treat as miss).
        """
        payload = cls._verify(blob)
        if payload is None:
            raise CacheError("cache entry failed checksum verification")
        try:
            return pickle.loads(payload)
        except _UNPICKLE_ERRORS as exc:
            raise CacheError(
                f"cache entry failed to unpickle: "
                f"{type(exc).__name__}: {exc}"
            ) from exc

    def store(self, fingerprint: str, obj) -> Path | None:
        """Atomically write ``obj``; best-effort (None on any error)."""
        try:
            payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
            blob = _MAGIC + hashlib.sha256(payload).digest() + payload
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.root, prefix=".tmp_", suffix=_SUFFIX
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                path = self.path_for(fingerprint)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            self._evict()
            return path
        except _STORE_ERRORS:
            self.store_failures += 1
            return None

    # -- bounds -------------------------------------------------------
    def _evict(self) -> None:
        """Drop oldest entries beyond the entry/byte caps."""
        entries = []
        for path in self.entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort(reverse=True)  # newest first
        total = 0
        for index, (_mtime, size, path) in enumerate(entries):
            total += size
            if index >= self.max_entries or total > self.max_bytes:
                try:
                    path.unlink()
                except OSError:
                    pass

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def disk_cache_enabled() -> bool:
    """Disk caching default; ``REPRO_DISK_CACHE=0`` turns it off."""
    return os.environ.get("REPRO_DISK_CACHE", "1") != "0"
