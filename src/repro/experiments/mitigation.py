"""Section 5 experiments: native Linux vs TLP vs S-RTO.

Reproduces the paper's deployment methodology in simulation: the same
workload (same seeds, hence the same loss/delay processes per flow) is
served once under each recovery policy, and per-request latencies are
compared.  Latency is the time from the client issuing a request to
the full response being delivered (the paper measures "client
initiates a request until all response packets have been acknowledged"
— the same quantity up to half an RTT).

``short_flow_max_bytes`` mirrors the paper's 200 KB short-flow
threshold, scaled to this reproduction's flow sizes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..config import RunConfig
from ..core.report import percentile
from ..workload.distributions import Constant, LogNormal
from ..workload.generator import generate_flows
from ..workload.services import ServiceProfile
from .runner import run_flows

#: The policies of Table 8/9, in the paper's order.
POLICIES: tuple[tuple[str, str], ...] = (
    ("native", "Linux"),
    ("tlp", "TLP"),
    ("srto", "S-RTO"),
)

#: Display labels for every policy the tournament can run — a superset
#: of the paper's Table 8/9 trio (see :mod:`repro.matrix`).
POLICY_LABELS: dict[str, str] = {
    "native": "Linux",
    "tlp": "TLP",
    "srto": "S-RTO",
    "tracks": "T-RACKs",
    "mobile": "Mobile-LR",
}

#: Paper's short-flow threshold is 200 KB on 1.7 MB average flows;
#: flow sizes here are scaled by ~7x, hence 60 KB.
SHORT_FLOW_MAX_BYTES = 60_000

#: Large-flow threshold for the throughput comparison.
LARGE_FLOW_MIN_BYTES = 60_000


@dataclass
class PolicyOutcome:
    """Measurements for one service under one recovery policy."""

    policy: str
    latencies: list[float] = field(default_factory=list)
    throughputs: list[float] = field(default_factory=list)  # bytes/sec
    retransmissions: int = 0
    data_segments: int = 0
    flows: int = 0
    #: Flows that hit at least one retransmission timeout (an RTO
    #: stall — the event every contender policy tries to pre-empt).
    rto_flows: int = 0
    #: Sessions that did not complete within the simulation horizon.
    failed_flows: int = 0
    #: Probe-timer retransmissions across all flows (TLP/S-RTO/
    #: mobile probes; zero for native and T-RACKs).
    probe_retransmissions: int = 0

    @property
    def retransmission_ratio(self) -> float:
        if not self.data_segments:
            return 0.0
        return self.retransmissions / self.data_segments

    @property
    def stall_rate(self) -> float:
        """Fraction of flows that suffered an RTO stall."""
        if not self.flows:
            return 0.0
        return self.rto_flows / self.flows

    def latency_quantile(self, q: float) -> float:
        return percentile(self.latencies, q)

    @property
    def mean_latency(self) -> float:
        return sum(self.latencies) / max(1, len(self.latencies))

    @property
    def mean_throughput(self) -> float:
        return sum(self.throughputs) / max(1, len(self.throughputs))


def make_short_flow_profile(base: ServiceProfile) -> ServiceProfile:
    """Derive the paper's "short flow" workload from a service profile.

    The paper's cloud-storage short flows are *control flows*: small
    single-object exchanges on the same network paths as the bulk
    traffic.  The variant keeps the path and client population but
    serves one small response per connection with no back-end fetch and
    no application write pauses, so that the latency tail isolates the
    transport behaviour the recovery policies target.
    """
    return dataclasses.replace(
        base,
        name=f"{base.name}_short",
        response_size=LogNormal(15_000, 0.8),
        requests_per_session=Constant(1),
        backend_fetch_prob=0.0,
        supply_pause_prob=0.0,
    )


def make_large_flow_profile(base: ServiceProfile) -> ServiceProfile:
    """Derive a bulk-transfer workload (Sec. 5.2's "large flows")."""
    return dataclasses.replace(
        base,
        name=f"{base.name}_large",
        response_size=LogNormal(200_000, 0.6),
        requests_per_session=Constant(1),
        backend_fetch_prob=0.0,
        supply_pause_prob=0.0,
    )


def run_policy(
    profile: ServiceProfile,
    policy: str,
    flows: int,
    seed: int,
    t1: int = 10,
    t2: int = 5,
    short_flow_max: int | None = SHORT_FLOW_MAX_BYTES,
    workers: int | None = 1,
    policy_kwargs: dict | None = None,
) -> PolicyOutcome:
    """Run one service under one recovery policy.

    Per-request latencies are restricted to requests whose response is
    a "short flow" when ``short_flow_max`` is set; throughputs are
    collected from large responses.  ``policy_kwargs`` overrides the
    policy constructor arguments; when ``None`` (the default, and the
    Table 8/9 path) S-RTO receives ``t1``/``t2`` and every other
    policy its defaults.
    """
    if policy_kwargs is None:
        policy_kwargs = {"t1": t1, "t2": t2} if policy == "srto" else {}
    scenarios = generate_flows(
        profile, flows, seed=seed, policy=policy, policy_kwargs=policy_kwargs
    )
    outcome = PolicyOutcome(policy=policy)
    run = run_flows(scenarios, workers=workers)
    for result in run.results:
        outcome.flows += 1
        outcome.retransmissions += result.server_stats.retransmissions
        outcome.data_segments += result.server_stats.data_segments_sent
        outcome.probe_retransmissions += (
            result.server_stats.probe_retransmissions
        )
        if result.server_stats.rto_timeouts > 0:
            outcome.rto_flows += 1
        if not result.session_result.complete:
            outcome.failed_flows += 1
        requests = result.scenario.session.requests
        for request, timing in zip(requests, result.session_result.timings):
            if timing.latency is None:
                continue
            if (
                short_flow_max is None
                or request.response_bytes <= short_flow_max
            ):
                outcome.latencies.append(timing.latency)
            if (
                request.response_bytes >= LARGE_FLOW_MIN_BYTES
                and timing.latency > 0
            ):
                outcome.throughputs.append(
                    request.response_bytes / timing.latency
                )
    return outcome


@dataclass
class MitigationComparison:
    """Table 8 / Table 9 material for one service."""

    service: str
    outcomes: dict[str, PolicyOutcome]

    QUANTILES = (50, 90, 95)

    def reduction(self, policy: str, q: float) -> float:
        """Latency reduction vs native at quantile ``q`` (negative =
        faster, as the paper reports)."""
        base = self.outcomes["native"].latency_quantile(q)
        value = self.outcomes[policy].latency_quantile(q)
        if base == 0:
            return 0.0
        return (value - base) / base

    def mean_reduction(self, policy: str) -> float:
        base = self.outcomes["native"].mean_latency
        if base == 0:
            return 0.0
        return (self.outcomes[policy].mean_latency - base) / base

    def throughput_improvement(self, policy: str) -> float:
        base = self.outcomes["native"].mean_throughput
        if base == 0:
            return 0.0
        return (self.outcomes[policy].mean_throughput - base) / base

    def retransmission_ratios(self) -> dict[str, float]:
        """Table 9: retransmitted fraction of data packets."""
        return {
            policy: outcome.retransmission_ratio
            for policy, outcome in self.outcomes.items()
        }


def compare_policies(
    profile: ServiceProfile,
    flows: int,
    seed: int = 0,
    t1: int = 10,
    t2: int = 5,
    short_flow_max: int | None = SHORT_FLOW_MAX_BYTES,
    workers: int | None = 1,
    run: "RunConfig | None" = None,
    policies: "tuple[str, ...] | None" = None,
) -> MitigationComparison:
    """Run the selected policies over the same seeded workload.

    ``policies`` defaults to the paper's Table 8/9 trio; any other
    selection is resolved through the policy registry
    (:func:`repro.config.validate_policies`), so unknown names fail
    with the registered list.  ``run`` (a
    :class:`repro.config.RunConfig`) overrides ``workers`` when given.
    """
    if run is not None:
        workers = run.workers
    if policies is None:
        policies = tuple(name for name, _label in POLICIES)
    else:
        from ..config import validate_policies

        policies = validate_policies(policies)
    outcomes = {}
    for policy in policies:
        outcomes[policy] = run_policy(
            profile,
            policy,
            flows,
            seed,
            t1=t1,
            t2=t2,
            short_flow_max=short_flow_max,
            workers=workers,
        )
    return MitigationComparison(service=profile.name, outcomes=outcomes)
