"""Application layer: scripted request/response sessions."""

from .client import ClientApp
from .server import ServerApp
from .session import (
    Request,
    RequestTiming,
    Session,
    SessionResult,
    SupplyChunk,
)

__all__ = [
    "ClientApp",
    "Request",
    "RequestTiming",
    "ServerApp",
    "Session",
    "SessionResult",
    "SupplyChunk",
]
