"""Application-level session scripts.

A :class:`Session` describes everything that happens on one TCP
connection above the transport: the sequence of requests the client
issues, how large each response is, how long the front-end server needs
before response data becomes available (back-end fetches — the paper's
*data unavailable* stalls), and how smoothly the server application
feeds data to TCP (*resource constraint* stalls).

Sessions are plain data; :mod:`repro.workload` generates them from
service profiles and :mod:`repro.app` executes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SupplyChunk:
    """One application write: ``delay`` seconds after the previous
    chunk finishes being handed to TCP, write ``nbytes``."""

    nbytes: int
    delay: float = 0.0


@dataclass
class Request:
    """One request/response exchange within a connection.

    ``think_time`` is the client-side gap between the completion of the
    previous response (or connection establishment) and this request —
    the paper's *client idle* cause.  ``data_delay`` is the server-side
    gap between receiving the request and the first byte of response
    data being available (*data unavailable*).  ``chunks`` model the
    server application's write pattern; any chunk with ``delay > 0``
    after the first is a *resource constraint* pause.
    """

    request_bytes: int
    response_bytes: int
    think_time: float = 0.0
    data_delay: float = 0.0
    chunks: list[SupplyChunk] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.request_bytes <= 0:
            raise ValueError("request_bytes must be positive")
        if self.response_bytes < 0:
            raise ValueError("response_bytes cannot be negative")
        if not self.chunks:
            self.chunks = [SupplyChunk(self.response_bytes)]
        total = sum(chunk.nbytes for chunk in self.chunks)
        if total != self.response_bytes:
            raise ValueError(
                f"chunks total {total} != response_bytes {self.response_bytes}"
            )


@dataclass
class Session:
    """The full application script for one connection."""

    requests: list[Request]
    close_after: bool = True  # server sends FIN after the last response

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("a session needs at least one request")

    @property
    def total_response_bytes(self) -> int:
        return sum(request.response_bytes for request in self.requests)

    @property
    def total_request_bytes(self) -> int:
        return sum(request.request_bytes for request in self.requests)


@dataclass
class RequestTiming:
    """Measured timestamps for one request (client clock)."""

    sent_at: float
    first_byte_at: float | None = None
    completed_at: float | None = None

    @property
    def latency(self) -> float | None:
        if self.completed_at is None:
            return None
        return self.completed_at - self.sent_at


@dataclass
class SessionResult:
    """Outcome of executing one session."""

    timings: list[RequestTiming] = field(default_factory=list)
    established_at: float | None = None
    finished_at: float | None = None
    failed: bool = False

    @property
    def complete(self) -> bool:
        return (
            not self.failed
            and bool(self.timings)
            and all(t.completed_at is not None for t in self.timings)
        )
