"""Client application.

Issues the scripted requests, waits for each response to be fully
delivered, idles for the scripted think time, and records per-request
timings (the latency metric of the paper's Table 8 is the time from
the request leaving the client to the full response being delivered).
"""

from __future__ import annotations

from collections.abc import Callable

from ..netsim.engine import EventLoop
from ..tcp.endpoint import TcpEndpoint
from .session import Request, RequestTiming, Session, SessionResult


class ClientApp:
    """Drives the client side of one session."""

    def __init__(
        self,
        engine: EventLoop,
        endpoint: TcpEndpoint,
        session: Session,
        on_done: Callable[[SessionResult], None] | None = None,
    ):
        self.engine = engine
        self.endpoint = endpoint
        self.session = session
        self.result = SessionResult()
        self.on_done = on_done
        self._request_index = 0
        self._response_bytes = 0
        self._awaiting_response = False
        endpoint.on_established = self._on_established

    def _on_established(self) -> None:
        assert self.endpoint.receiver is not None
        self.result.established_at = self.engine.now
        self.endpoint.receiver.on_delivered = self._on_response_bytes
        self.endpoint.receiver.on_fin = self._on_fin
        self._schedule_next_request()

    def _current_request(self) -> Request | None:
        if self._request_index >= len(self.session.requests):
            return None
        return self.session.requests[self._request_index]

    def _schedule_next_request(self) -> None:
        request = self._current_request()
        if request is None:
            self._finish()
            return
        self.engine.schedule(request.think_time, self._send_request)

    def _send_request(self) -> None:
        request = self._current_request()
        if request is None or self.endpoint.closed:
            return
        self.result.timings.append(RequestTiming(sent_at=self.engine.now))
        self._response_bytes = 0
        self._awaiting_response = True
        self.endpoint.write(request.request_bytes)

    def _on_response_bytes(self, nbytes: int) -> None:
        if not self._awaiting_response:
            return
        request = self._current_request()
        if request is None:
            return
        timing = self.result.timings[-1]
        if timing.first_byte_at is None:
            timing.first_byte_at = self.engine.now
        self._response_bytes += nbytes
        if self._response_bytes >= request.response_bytes:
            timing.completed_at = self.engine.now
            self._awaiting_response = False
            self._request_index += 1
            self._schedule_next_request()

    def _on_fin(self) -> None:
        if self.result.finished_at is None:
            self.result.finished_at = self.engine.now
        if not self.result.complete and not self._awaiting_response:
            pass  # server closed between requests; session simply ends

    def _finish(self) -> None:
        if self.result.finished_at is None:
            self.result.finished_at = self.engine.now
        if self.on_done is not None:
            self.on_done(self.result)
