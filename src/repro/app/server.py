"""Front-end server application.

Executes the server side of a :class:`~repro.app.session.Session` on a
:class:`~repro.tcp.endpoint.TcpEndpoint`: waits for each request's
bytes to arrive, then — after the scripted back-end fetch delay —
feeds the response to TCP following the scripted chunk schedule.
"""

from __future__ import annotations

from ..netsim.engine import EventLoop
from ..tcp.endpoint import TcpEndpoint
from .session import Request, Session


class ServerApp:
    """Serves the scripted responses for one connection."""

    def __init__(
        self, engine: EventLoop, endpoint: TcpEndpoint, session: Session
    ):
        self.engine = engine
        self.endpoint = endpoint
        self.session = session
        self._request_index = 0
        self._bytes_of_request = 0
        self._serving = False
        endpoint.on_established = self._on_established

    def _on_established(self) -> None:
        assert self.endpoint.receiver is not None
        self.endpoint.receiver.on_delivered = self._on_request_bytes

    def _current_request(self) -> Request | None:
        if self._request_index >= len(self.session.requests):
            return None
        return self.session.requests[self._request_index]

    def _on_request_bytes(self, nbytes: int) -> None:
        """Request bytes arrived from the client."""
        request = self._current_request()
        if request is None or self._serving:
            return
        self._bytes_of_request += nbytes
        if self._bytes_of_request >= request.request_bytes:
            self._bytes_of_request -= request.request_bytes
            self._serving = True
            # Back-end fetch: data is unavailable for data_delay seconds.
            self.engine.schedule(
                request.data_delay, lambda: self._serve(request, 0)
            )

    def _serve(self, request: Request, chunk_index: int) -> None:
        if self.endpoint.closed:
            return
        if chunk_index >= len(request.chunks):
            self._finish_request()
            return
        chunk = request.chunks[chunk_index]

        def write_chunk() -> None:
            if self.endpoint.closed:
                return
            if chunk.nbytes:
                self.endpoint.write(chunk.nbytes)
            self._serve(request, chunk_index + 1)

        if chunk_index == 0 or chunk.delay == 0:
            # data_delay already covered the pre-first-chunk wait.
            delay = chunk.delay if chunk_index else 0.0
        else:
            delay = chunk.delay
        self.engine.schedule(delay, write_chunk)

    def _finish_request(self) -> None:
        self._serving = False
        self._request_index += 1
        if self._request_index >= len(self.session.requests):
            if self.session.close_after:
                self.endpoint.close()
