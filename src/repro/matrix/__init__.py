"""Policy tournament: scenario × policy matrix (``repro-paper matrix``).

The paper proves one policy (S-RTO) beats two others on one path class
(WAN).  This subsystem generalizes that comparison: every policy in
:data:`repro.tcp.policies.REGISTRY` runs against every workload ×
path-condition scenario (:mod:`repro.matrix.scenarios` — WAN,
datacenter incast, cellular), and the runner
(:mod:`repro.matrix.runner`) emits one ranked table per scenario with
stall rate, tail FCT, and retransmission cost per cell.  Results
append to the longitudinal store, where the trend engine reports
policy-order flips, and render on the dashboard as a ranking grid.

Quick start::

    from repro.matrix import MatrixConfig, run_matrix

    result = run_matrix(MatrixConfig(flows=50))
    print(result.format_table())
    print(result.winners())
"""

from .runner import (
    CELL_METRICS,
    MatrixCell,
    MatrixConfig,
    MatrixResult,
    append_to_store,
    cell_fingerprint,
    default_policies,
    matrix_cache,
    run_cell,
    run_matrix,
)
from .scenarios import (
    PATH_SCENARIOS,
    WORKLOADS,
    Workload,
    get_workload,
    scenario_profile,
)

__all__ = [
    "CELL_METRICS",
    "MatrixCell",
    "MatrixConfig",
    "MatrixResult",
    "PATH_SCENARIOS",
    "WORKLOADS",
    "Workload",
    "append_to_store",
    "cell_fingerprint",
    "default_policies",
    "get_workload",
    "matrix_cache",
    "run_cell",
    "run_matrix",
    "scenario_profile",
]
