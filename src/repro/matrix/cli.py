"""``repro-paper matrix`` — run the policy tournament.

Examples::

    # Full sweep: every registered policy x every workload x path.
    repro-paper matrix --flows 300

    # Reduced smoke grid, JSON artifact, no cache.
    repro-paper matrix --flows 40 --paths wan,datacenter \\
        --workloads web_search --no-cache --json-out matrix.json

    # Append the ranking record for trend watching.
    repro-paper matrix --results-store results.jsonl

The per-cell cache makes interrupted sweeps resumable: re-running the
same command recomputes only cells that never finished.
"""

from __future__ import annotations

import argparse
import sys

from .. import cli_options
from ..netsim.profiles import PATH_MODELS
from .runner import (
    MatrixCell,
    MatrixConfig,
    append_to_store,
    dump_json,
    run_matrix,
)
from .scenarios import WORKLOADS


def _name_list(registry: dict, what: str):
    def parse(spec: str) -> tuple[str, ...]:
        names = tuple(n.strip() for n in spec.split(",") if n.strip())
        if not names:
            raise argparse.ArgumentTypeError(f"empty {what} list")
        for name in names:
            if name not in registry:
                raise argparse.ArgumentTypeError(
                    f"unknown {what} {name!r}; choose from {sorted(registry)}"
                )
        return names

    return parse


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-paper matrix",
        description=(
            "Sweep every selected recovery policy over every workload x "
            "path scenario and print the ranked table (Tables 8/9, "
            "extended)."
        ),
    )
    parser.add_argument(
        "--flows",
        type=int,
        default=300,
        help="flows per cell (default 300, the Table 8/9 count)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=5,
        help="workload seed (default 5, the Table 8/9 seed)",
    )
    parser.add_argument(
        "--t2",
        type=int,
        default=5,
        help="S-RTO T2 congestion-cut threshold (default 5)",
    )
    cli_options.add_policies(parser)
    parser.add_argument(
        "--workloads",
        type=_name_list(WORKLOADS, "workload"),
        default=None,
        metavar="NAME[,NAME...]",
        help=(
            "workloads to sweep (default: all of "
            f"{sorted(WORKLOADS)})"
        ),
    )
    parser.add_argument(
        "--paths",
        type=_name_list(PATH_MODELS, "path scenario"),
        default=None,
        metavar="NAME[,NAME...]",
        help=(
            "path scenarios to sweep (default: all of "
            f"{sorted(PATH_MODELS)})"
        ),
    )
    cli_options.add_workers(
        parser,
        default=1,
        help=(
            "worker processes per cell (0 = one per core; cells are "
            "byte-identical for every value; default 1)"
        ),
    )
    cli_options.add_no_cache(
        parser,
        help=(
            "re-run every cell instead of resuming from the per-cell "
            "on-disk cache"
        ),
    )
    parser.add_argument(
        "--json-out",
        metavar="PATH",
        help="write the full ranked-table JSON artifact to PATH",
    )
    cli_options.add_results_store(
        parser,
        help=(
            "append the matrix ranking record to the longitudinal "
            "results store at PATH (trend engine watches for "
            "policy-order flips)"
        ),
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-cell progress lines on stderr",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = MatrixConfig(
        flows=args.flows,
        seed=args.seed,
        t2=args.t2,
        policies=args.policies,
        workloads=args.workloads,
        paths=args.paths,
        workers=args.workers,
        use_cache=not args.no_cache,
    )

    def progress(cell: MatrixCell) -> None:
        if args.quiet:
            return
        source = "cache" if cell.cached else f"{cell.wall_time:.1f}s"
        print(
            f"cell {cell.workload}/{cell.path}/{cell.policy}: "
            f"mean {cell.metrics['mean_latency'] * 1000:.1f} ms, "
            f"stalls {cell.metrics['stall_rate'] * 100:.1f}% ({source})",
            file=sys.stderr,
        )

    result = run_matrix(config, progress=progress)
    print(result.format_table(), end="")
    if args.json_out:
        dump_json(result, args.json_out)
    if args.results_store:
        from ..results.store import ResultsStore

        with ResultsStore(args.results_store) as store:
            append_to_store(store, result)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
