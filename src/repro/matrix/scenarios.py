"""Scenario axes of the policy tournament: workloads × path conditions.

A matrix *cell* is (workload, path scenario, policy).  The axes:

* **Workloads** — :data:`WORKLOADS`.  ``web_search`` and
  ``storage_short`` are exactly the two services of the paper's
  mitigation sweep (Tables 8/9), with the same per-workload S-RTO
  ``T1`` thresholds (5 and 10) the paper deployed.  Keeping the
  construction identical to ``repro-paper run``'s sweep is what makes
  the matrix's WAN cells byte-identical to Table 8/9.
* **Path scenarios** — :data:`PATH_SCENARIOS`, from
  :data:`repro.netsim.profiles.PATH_MODELS`.  ``wan`` is the sentinel
  "keep the workload's own path"; ``datacenter`` and ``cellular``
  re-path the same workload through
  :class:`~repro.netsim.profiles.DatacenterPath` /
  :class:`~repro.netsim.profiles.CellularPath` via
  ``dataclasses.replace`` (the workload layer duck-types the path).

Adding an axis entry is one line in the relevant mapping; the runner,
CLI, benchmarks, and dashboard all iterate these mappings.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable
from dataclasses import dataclass

from ..experiments.mitigation import make_short_flow_profile
from ..netsim.profiles import PATH_MODELS, make_path_model
from ..workload.services import ServiceProfile, get_profile


@dataclass(frozen=True)
class Workload:
    """One workload axis entry.

    ``t1`` is the S-RTO packets-in-flight threshold used for this
    workload (the paper tuned it per service: 5 for web search, 10
    for cloud-storage control flows).
    """

    name: str
    t1: int
    factory: Callable[[], ServiceProfile]

    def profile(self) -> ServiceProfile:
        return self.factory()


def _web_search() -> ServiceProfile:
    return get_profile("web_search")


def _storage_short() -> ServiceProfile:
    return make_short_flow_profile(get_profile("cloud_storage"))


#: The workload axis, in table order.
WORKLOADS: dict[str, Workload] = {
    "web_search": Workload("web_search", t1=5, factory=_web_search),
    "storage_short": Workload("storage_short", t1=10, factory=_storage_short),
}

#: The path-scenario axis, in table order (wan first: the paper's own
#: environment and the byte-identity anchor).
PATH_SCENARIOS: tuple[str, ...] = tuple(PATH_MODELS)


def get_workload(name: str) -> Workload:
    """The workload registered under ``name`` (ValueError otherwise)."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None


def scenario_profile(workload: Workload, path_name: str) -> ServiceProfile:
    """The service profile of one (workload, path) scenario.

    ``wan`` returns the workload's own profile untouched — bit-for-bit
    the profile the Table 8/9 sweep runs.  Other scenarios swap in the
    registered path model and tag the profile name so caches and
    result records distinguish the re-pathed variant.
    """
    profile = workload.profile()
    model = make_path_model(path_name)
    if model is None:
        return profile
    return dataclasses.replace(
        profile, name=f"{profile.name}@{path_name}", path=model
    )
