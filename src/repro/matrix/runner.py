"""The scenario × policy matrix runner.

Sweeps every selected recovery policy over every (workload, path)
scenario and emits one ranked table extending the paper's Tables 8/9:
for each scenario, policies ordered best-first by mean request latency
(tie-broken by tail latency, then name), with stall rate, tail FCT,
and retransmission cost per cell.

Execution properties:

* **Deterministic.**  Cells run in a fixed order (workload, path,
  policy) and each cell is an ordinary
  :func:`repro.experiments.mitigation.run_policy` call with a fixed
  seed — the same call, with the same arguments, that the Table 8/9
  sweep makes for the WAN cells, so those numbers reproduce
  byte-identically.  Worker parallelism happens *inside* a cell (the
  byte-identical ``run_flows`` pool), never across cells, so results
  are independent of ``--workers``.
* **Resumable per cell.**  Each finished cell is stored in a
  dedicated :class:`~repro.experiments.cache.DatasetCache` under a
  fingerprint covering the package source digest and every cell
  parameter.  An interrupted sweep re-runs only the missing cells;
  ``use_cache=False`` (CLI ``--no-cache``) recomputes everything.
* **Recorded.**  :func:`append_to_store` writes one ``experiment``
  record with per-scenario rankings, in the shape
  :func:`repro.results.trends.detect_ranking_flips` watches — a
  policy-order flip between runs shows up in
  ``repro-paper results trends``.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field

from ..config import validate_policies
from ..experiments.cache import (
    DatasetCache,
    code_version_salt,
    default_cache_dir,
    disk_cache_enabled,
)
from ..experiments.mitigation import POLICY_LABELS, run_policy
from ..tcp.policies import REGISTRY
from .scenarios import PATH_SCENARIOS, WORKLOADS, Workload, get_workload, scenario_profile

#: Canonical table order for the built-in policies; registry entries
#: beyond these run after, in registration-name order.
_PREFERRED_ORDER = ("native", "tlp", "srto", "tracks", "mobile")

#: The metric names every cell carries, in table-column order.
CELL_METRICS = (
    "flows",
    "mean_latency",
    "p50_latency",
    "p90_latency",
    "p95_latency",
    "stall_rate",
    "failed_flows",
    "retransmission_ratio",
    "probe_retransmissions",
)


def default_policies() -> tuple[str, ...]:
    """Every registered policy, in canonical table order."""
    names = REGISTRY.names()
    ordered = [name for name in _PREFERRED_ORDER if name in names]
    ordered += [name for name in names if name not in _PREFERRED_ORDER]
    return tuple(ordered)


@dataclass(frozen=True)
class MatrixConfig:
    """One matrix sweep, fully specified.

    ``None`` axis selections mean "everything registered".  ``seed=5``
    and the per-workload ``t1`` defaults match the Table 8/9 sweep —
    the WAN byte-identity anchor.
    """

    flows: int = 300
    seed: int = 5
    t2: int = 5
    policies: tuple[str, ...] | None = None
    workloads: tuple[str, ...] | None = None
    paths: tuple[str, ...] | None = None
    workers: int | None = 1
    use_cache: bool = True

    def resolved_policies(self) -> tuple[str, ...]:
        if self.policies is None:
            return default_policies()
        return validate_policies(self.policies)

    def resolved_workloads(self) -> tuple[Workload, ...]:
        names = self.workloads if self.workloads is not None else tuple(WORKLOADS)
        return tuple(get_workload(name) for name in names)

    def resolved_paths(self) -> tuple[str, ...]:
        if self.paths is None:
            return PATH_SCENARIOS
        from ..netsim.profiles import make_path_model

        for name in self.paths:
            make_path_model(name)  # raises listing the registered set
        return tuple(self.paths)


@dataclass
class MatrixCell:
    """One finished (workload, path, policy) cell."""

    workload: str
    path: str
    policy: str
    metrics: dict[str, float]
    wall_time: float
    #: Whether this run loaded the cell from the on-disk cache.
    cached: bool = False

    @property
    def scenario(self) -> str:
        return f"{self.workload}/{self.path}"


def _ranking_key(cell: MatrixCell):
    return (
        cell.metrics["mean_latency"],
        cell.metrics["p95_latency"],
        cell.policy,
    )


@dataclass
class MatrixResult:
    """All cells of one sweep plus the derived ranked table."""

    config: MatrixConfig
    cells: list[MatrixCell] = field(default_factory=list)
    wall_time: float = 0.0

    def scenarios(self) -> list[str]:
        seen: list[str] = []
        for cell in self.cells:
            if cell.scenario not in seen:
                seen.append(cell.scenario)
        return seen

    def scenario_cells(self, scenario: str) -> list[MatrixCell]:
        return [c for c in self.cells if c.scenario == scenario]

    def rankings(self) -> dict[str, list[str]]:
        """Per-scenario policy order, best (lowest latency) first."""
        return {
            scenario: [
                cell.policy
                for cell in sorted(
                    self.scenario_cells(scenario), key=_ranking_key
                )
            ]
            for scenario in self.scenarios()
        }

    def winners(self) -> dict[str, str]:
        return {
            scenario: order[0] for scenario, order in self.rankings().items()
        }

    def metrics(self) -> dict[str, float]:
        """Flat per-cell metrics for a results-store record."""
        flat: dict[str, float] = {}
        for cell in self.cells:
            prefix = f"{cell.workload}_{cell.path}_{cell.policy}"
            for key in ("mean_latency", "p95_latency", "stall_rate"):
                flat[f"{prefix}_{key}"] = cell.metrics[key]
        return flat

    def to_json(self) -> dict:
        return {
            "config": {
                "flows": self.config.flows,
                "seed": self.config.seed,
                "t2": self.config.t2,
                "policies": list(self.config.resolved_policies()),
                "workloads": [
                    w.name for w in self.config.resolved_workloads()
                ],
                "paths": list(self.config.resolved_paths()),
            },
            "wall_time": self.wall_time,
            "rankings": self.rankings(),
            "cells": [
                {
                    "workload": cell.workload,
                    "path": cell.path,
                    "policy": cell.policy,
                    "wall_time": cell.wall_time,
                    "cached": cell.cached,
                    "metrics": cell.metrics,
                }
                for cell in self.cells
            ],
        }

    def format_table(self) -> str:
        """The ranked table, one block per scenario."""
        lines: list[str] = []
        rankings = self.rankings()
        for scenario in self.scenarios():
            lines.append(f"=== {scenario} ===")
            lines.append(
                f"{'rank':>4}  {'policy':<10} {'mean':>9} {'p95':>9} "
                f"{'stall%':>7} {'retx%':>7} {'probes':>7}"
            )
            by_policy = {c.policy: c for c in self.scenario_cells(scenario)}
            for rank, policy in enumerate(rankings[scenario], start=1):
                cell = by_policy[policy]
                m = cell.metrics
                label = POLICY_LABELS.get(policy, policy)
                lines.append(
                    f"{rank:>4}  {label:<10} "
                    f"{m['mean_latency'] * 1000:>8.1f}m "
                    f"{m['p95_latency'] * 1000:>8.1f}m "
                    f"{m['stall_rate'] * 100:>6.1f}% "
                    f"{m['retransmission_ratio'] * 100:>6.2f}% "
                    f"{int(m['probe_retransmissions']):>7}"
                )
            lines.append("")
        return "\n".join(lines)


def matrix_cache(root=None) -> DatasetCache:
    """The per-cell cache (separate root so the busy dataset cache's
    24-entry eviction never churns matrix cells)."""
    base = default_cache_dir() if root is None else root
    return DatasetCache(root=base / "matrix", max_entries=512)


def cell_fingerprint(
    config: MatrixConfig, workload: Workload, path_name: str, policy: str
) -> str:
    """Content address of one cell (code digest + every parameter)."""
    profile = scenario_profile(workload, path_name)
    digest = hashlib.sha256()
    digest.update(code_version_salt().encode())
    digest.update(
        repr(
            (
                "matrix-cell",
                workload.name,
                path_name,
                policy,
                config.flows,
                config.seed,
                workload.t1,
                config.t2,
            )
        ).encode()
    )
    digest.update(repr(profile).encode())
    return digest.hexdigest()[:40]


def run_cell(
    config: MatrixConfig, workload: Workload, path_name: str, policy: str
) -> MatrixCell:
    """Run one cell from scratch (no cache involvement)."""
    profile = scenario_profile(workload, path_name)
    started = time.perf_counter()
    outcome = run_policy(
        profile,
        policy,
        config.flows,
        config.seed,
        t1=workload.t1,
        t2=config.t2,
        short_flow_max=None,
        workers=config.workers,
    )
    wall = time.perf_counter() - started
    metrics = {
        "flows": float(outcome.flows),
        "mean_latency": outcome.mean_latency,
        "p50_latency": outcome.latency_quantile(50),
        "p90_latency": outcome.latency_quantile(90),
        "p95_latency": outcome.latency_quantile(95),
        "stall_rate": outcome.stall_rate,
        "failed_flows": float(outcome.failed_flows),
        "retransmission_ratio": outcome.retransmission_ratio,
        "probe_retransmissions": float(outcome.probe_retransmissions),
    }
    return MatrixCell(
        workload=workload.name,
        path=path_name,
        policy=policy,
        metrics=metrics,
        wall_time=wall,
    )


def run_matrix(
    config: MatrixConfig,
    cache: DatasetCache | None = None,
    progress=None,
) -> MatrixResult:
    """Run (or resume) the whole sweep.

    ``progress``, when given, is called with each finished
    :class:`MatrixCell` — the CLI uses it for live per-cell lines.
    """
    policies = config.resolved_policies()
    workloads = config.resolved_workloads()
    paths = config.resolved_paths()
    caching = config.use_cache and disk_cache_enabled()
    if caching and cache is None:
        cache = matrix_cache()
    started = time.perf_counter()
    result = MatrixResult(config=config)
    for workload in workloads:
        for path_name in paths:
            for policy in policies:
                fingerprint = cell_fingerprint(
                    config, workload, path_name, policy
                )
                cell: MatrixCell | None = None
                if caching and cache is not None:
                    cached = cache.load(fingerprint)
                    if isinstance(cached, MatrixCell):
                        cell = cached
                        cell.cached = True
                if cell is None:
                    cell = run_cell(config, workload, path_name, policy)
                    if caching and cache is not None:
                        cache.store(fingerprint, cell)
                result.cells.append(cell)
                if progress is not None:
                    progress(cell)
    result.wall_time = time.perf_counter() - started
    return result


def append_to_store(store, result: MatrixResult) -> dict:
    """Append the sweep as one ``experiment``/``matrix`` record.

    The ``rankings`` section is keyed by scenario, so consecutive
    matrix records feed
    :func:`repro.results.trends.detect_ranking_flips` directly.
    """
    return store.append(
        "experiment",
        "matrix",
        metrics=result.metrics(),
        rankings=result.rankings(),
        wall_time=result.wall_time,
        config={
            "flows": result.config.flows,
            "seed": result.config.seed,
            "t2": result.config.t2,
            "policies": list(result.config.resolved_policies()),
            "workloads": [
                w.name for w in result.config.resolved_workloads()
            ],
            "paths": list(result.config.resolved_paths()),
        },
        meta={"cells": len(result.cells)},
    )


def dump_json(result: MatrixResult, path) -> None:
    """Write the full ranked-table JSON artifact (CI uploads this)."""
    from pathlib import Path

    Path(path).write_text(
        json.dumps(result.to_json(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
