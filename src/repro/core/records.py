"""Per-flow records: a tstat-style flow table from TAPO analyses.

The paper's tool runs inside a daily TCP-analysis platform; the
companion every such platform needs is a flat per-flow record with the
connection's vital signs.  :func:`flow_record` distills one
:class:`~repro.core.flow_analyzer.FlowAnalysis` into an ordered mapping
of scalar fields, and :func:`write_csv` dumps a whole corpus as CSV.

Fields (one row per flow)::

    server_ip server_port client_ip client_port
    start_time duration
    init_rwnd_bytes init_rwnd_mss wscale mss
    bytes_out data_packets packets_total requests
    retransmissions timeouts fast_retransmits probe_retransmissions
    spurious_retransmissions loss_estimate
    avg_rtt min_rtt max_rtt avg_rto final_rto
    throughput_bps
    stalls stalled_time stall_ratio
    stall_<cause>  (one column per top-level cause, seconds)
    retx_<cause>   (one column per retransmission cause, seconds)
    zero_window_seen
"""

from __future__ import annotations

import csv
from collections import OrderedDict
from collections.abc import Iterable
from pathlib import Path

from ..packet.headers import ip_to_str
from .flow_analyzer import FlowAnalysis
from .stalls import RetxCause, StallCause


def flow_record(analysis: FlowAnalysis) -> "OrderedDict[str, object]":
    """Flatten one analyzed flow into a record of scalars."""
    flow = analysis.flow
    record: OrderedDict[str, object] = OrderedDict()
    record["server_ip"] = ip_to_str(flow.server[0])
    record["server_port"] = flow.server[1]
    record["client_ip"] = ip_to_str(flow.client[0])
    record["client_port"] = flow.client[1]
    record["start_time"] = round(flow.first_time, 6)
    record["duration"] = round(analysis.duration, 6)
    record["init_rwnd_bytes"] = analysis.init_rwnd
    record["init_rwnd_mss"] = analysis.init_rwnd_mss
    record["wscale"] = analysis.wscale
    record["mss"] = analysis.mss
    record["bytes_out"] = analysis.bytes_out
    record["data_packets"] = analysis.data_packets
    record["packets_total"] = len(flow.packets)
    record["requests"] = analysis.request_count
    record["retransmissions"] = analysis.retransmissions
    record["timeouts"] = analysis.timeouts
    record["fast_retransmits"] = analysis.fast_retransmits
    record["probe_retransmissions"] = analysis.probe_retransmissions
    record["spurious_retransmissions"] = analysis.spurious_retransmissions
    record["loss_estimate"] = round(analysis.loss_estimate, 6)
    rtts = analysis.rtt_samples
    record["avg_rtt"] = round(analysis.avg_rtt, 6) if rtts else ""
    record["min_rtt"] = round(min(rtts), 6) if rtts else ""
    record["max_rtt"] = round(max(rtts), 6) if rtts else ""
    record["avg_rto"] = (
        round(analysis.avg_rto, 6) if analysis.rto_samples else ""
    )
    record["final_rto"] = round(analysis.final_rto, 6)
    record["throughput_bps"] = round(analysis.avg_speed * 8, 1)
    record["stalls"] = len(analysis.stalls)
    record["stalled_time"] = round(analysis.stalled_time, 6)
    record["stall_ratio"] = round(analysis.stall_ratio, 6)
    per_cause = {cause: 0.0 for cause in StallCause}
    per_retx = {cause: 0.0 for cause in RetxCause}
    for stall in analysis.stalls:
        per_cause[stall.cause] += stall.duration
        if stall.retx_cause is not None:
            per_retx[stall.retx_cause] += stall.duration
    for cause in StallCause:
        record[f"stall_{cause.value}"] = round(per_cause[cause], 6)
    for cause in RetxCause:
        record[f"retx_{cause.value}"] = round(per_retx[cause], 6)
    record["zero_window_seen"] = int(analysis.zero_window_seen)
    return record


def record_fields() -> list[str]:
    """The column order of :func:`flow_record` (stable)."""
    columns = [
        "server_ip", "server_port", "client_ip", "client_port",
        "start_time", "duration",
        "init_rwnd_bytes", "init_rwnd_mss", "wscale", "mss",
        "bytes_out", "data_packets", "packets_total", "requests",
        "retransmissions", "timeouts", "fast_retransmits",
        "probe_retransmissions", "spurious_retransmissions",
        "loss_estimate",
        "avg_rtt", "min_rtt", "max_rtt", "avg_rto", "final_rto",
        "throughput_bps",
        "stalls", "stalled_time", "stall_ratio",
    ]
    columns += [f"stall_{cause.value}" for cause in StallCause]
    columns += [f"retx_{cause.value}" for cause in RetxCause]
    columns.append("zero_window_seen")
    return columns


def write_csv(
    path: str | Path, analyses: Iterable[FlowAnalysis]
) -> int:
    """Write one CSV row per flow; returns the number of rows."""
    fields = record_fields()
    rows = 0
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fields)
        writer.writeheader()
        for analysis in analyses:
            writer.writerow(flow_record(analysis))
            rows += 1
    return rows


def format_flow_table(
    analyses: Iterable[FlowAnalysis], max_rows: int = 40
) -> str:
    """Human-readable flow table (a compact subset of the record)."""
    header = (
        f"{'client':<22}{'bytes':>10}{'pkts':>7}{'retx':>6}{'rto':>5}"
        f"{'rtt_ms':>8}{'stalls':>7}{'stalled_s':>10}{'ratio':>7}"
    )
    lines = [header, "-" * len(header)]
    for index, analysis in enumerate(analyses):
        if index >= max_rows:
            lines.append(f"... ({index}+ flows)")
            break
        flow = analysis.flow
        client = f"{ip_to_str(flow.client[0])}:{flow.client[1]}"
        rtt_ms = f"{analysis.avg_rtt * 1000:.0f}" if analysis.avg_rtt else "-"
        lines.append(
            f"{client:<22}{analysis.bytes_out:>10}"
            f"{analysis.data_packets:>7}{analysis.retransmissions:>6}"
            f"{analysis.timeouts:>5}{rtt_ms:>8}{len(analysis.stalls):>7}"
            f"{analysis.stalled_time:>10.2f}{analysis.stall_ratio:>7.2f}"
        )
    return "\n".join(lines)
