"""TAPO: TCP stall detection and classification (the paper's core)."""

from .classifier import StallClassifier, classify_flow
from .columnar_pipeline import (
    ColumnarStreamDemuxer,
    LazyFlowTrace,
    demux_columns_stream,
    fast_replay_flow,
)
from .flow_analyzer import FlowAnalysis, FlowAnalyzer
from .records import flow_record, format_flow_table, record_fields, write_csv
from .report import BreakdownEntry, ServiceReport, cdf_points, percentile
from .segments import AnalyzedSegment, SegmentTracker
from .state_machine import CaStateTracker, ShadowWindow
from .stalls import (
    STALL_TAU,
    CaState,
    DoubleKind,
    RetxCause,
    Stall,
    StallCause,
    StallContext,
)
from .tapo import Tapo, analyze_pcap
from .timeline import FlowTimeline, TimelinePoint, build_timeline, write_timeline

__all__ = [
    "AnalyzedSegment",
    "BreakdownEntry",
    "CaState",
    "CaStateTracker",
    "ColumnarStreamDemuxer",
    "DoubleKind",
    "FlowAnalysis",
    "FlowAnalyzer",
    "FlowTimeline",
    "LazyFlowTrace",
    "RetxCause",
    "STALL_TAU",
    "SegmentTracker",
    "ServiceReport",
    "ShadowWindow",
    "Stall",
    "StallCause",
    "StallClassifier",
    "StallContext",
    "Tapo",
    "TimelinePoint",
    "analyze_pcap",
    "build_timeline",
    "cdf_points",
    "classify_flow",
    "demux_columns_stream",
    "fast_replay_flow",
    "flow_record",
    "format_flow_table",
    "percentile",
    "record_fields",
    "write_csv",
    "write_timeline",
]
