"""Analyzer-side segment tracking.

TAPO reconstructs the server's retransmission queue from the trace
alone: every outgoing data segment is recorded, retransmissions are
recognized as sequence ranges transmitted before, SACK blocks from
client ACKs mark segments, and DSACKs identify spurious
retransmissions — which gives the *true* ``lost_out`` the paper uses
to disambiguate loss from reordering (Sec. 3.3).

The tracker is built for multi-thousand-packet flows: cumulative ACKs
advance a prefix pointer instead of rescanning, so a whole-flow replay
is linear in the packet count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..packet.options import SackBlock
from ..packet.packet import PacketRecord
from ..packet.seqnum import seq_after, seq_before, seq_geq, seq_leq


@dataclass(slots=True)
class AnalyzedSegment:
    """One distinct sequence range the server transmitted.

    Slotted: one instance exists per distinct data segment of every
    flow, so the per-instance ``__dict__`` is measurable at trace
    scale.
    """

    seq: int
    end_seq: int
    tx_times: list[float] = field(default_factory=list)
    #: Times of retransmissions inferred as fast retransmits.
    fast_retrans_times: list[float] = field(default_factory=list)
    #: Times of retransmissions inferred as timeout-driven.
    rto_retrans_times: list[float] = field(default_factory=list)
    #: Times of probe retransmissions (TLP / S-RTO traces).
    probe_retrans_times: list[float] = field(default_factory=list)
    sacked_at: float | None = None
    acked_at: float | None = None
    #: Time a DSACK revealed a retransmission of this segment was
    #: spurious (the original had arrived).
    spurious_at: float | None = None
    is_fin: bool = False
    ordinal: int = 0  # position among distinct data segments of the flow

    @property
    def retrans_count(self) -> int:
        return max(0, len(self.tx_times) - 1)

    @property
    def retransmitted(self) -> bool:
        return self.retrans_count > 0

    @property
    def sacked(self) -> bool:
        return self.sacked_at is not None

    @property
    def acked(self) -> bool:
        return self.acked_at is not None

    @property
    def length(self) -> int:
        return (self.end_seq - self.seq) % (1 << 32)

    def first_retrans_kind(self) -> str | None:
        """'fast', 'rto' or 'probe' — trigger of the first retransmission."""
        candidates = []
        if self.fast_retrans_times:
            candidates.append(("fast", self.fast_retrans_times[0]))
        if self.rto_retrans_times:
            candidates.append(("rto", self.rto_retrans_times[0]))
        if self.probe_retrans_times:
            candidates.append(("probe", self.probe_retrans_times[0]))
        if not candidates:
            return None
        return min(candidates, key=lambda item: item[1])[0]


class SegmentTracker:
    """Reconstructed retransmission queue for one flow."""

    def __init__(self) -> None:
        self.segments: list[AnalyzedSegment] = []  # ordered by seq
        self._by_seq: dict[int, AnalyzedSegment] = {}
        self._first_unacked = 0  # index of the oldest unacked segment
        self._sacked_out = 0
        # Incremental count of outstanding retransmitted-and-unsacked
        # segments: maintained at the three transition points
        # (retransmission, cumulative ack, SACK) so the per-ACK
        # ``retrans_out()`` query is O(1) instead of a window scan.
        self._retrans_out = 0
        self.snd_una: int = 0
        self.transmitted_max: int = 0  # == reconstructed snd_nxt
        self.highest_sacked: int | None = None
        self.total_data_packets = 0
        self.total_retransmissions = 0
        self.total_new_bytes = 0

    def init_seq(self, iss: int) -> None:
        self.snd_una = (iss + 1) % (1 << 32)
        self.transmitted_max = self.snd_una

    # -- outgoing data ---------------------------------------------------
    def record_transmission(
        self, pkt: PacketRecord, now: float
    ) -> tuple[AnalyzedSegment, bool]:
        """Record an outgoing data/FIN segment.

        Returns ``(segment, is_retransmission)``.
        """
        self.total_data_packets += 1
        end_seq = pkt.end_seq
        is_retrans = seq_before(pkt.seq, self.transmitted_max)
        segment = self._by_seq.get(pkt.seq)
        if segment is None:
            segment = AnalyzedSegment(
                seq=pkt.seq,
                end_seq=end_seq,
                is_fin=pkt.fin,
                ordinal=len(self.segments),
            )
            self._by_seq[pkt.seq] = segment
            self.segments.append(segment)
        segment.tx_times.append(now)
        if (
            len(segment.tx_times) == 2
            and segment.sacked_at is None
            and segment.acked_at is None
        ):
            # First retransmission of a still-outstanding segment.
            self._retrans_out += 1
        if is_retrans:
            self.total_retransmissions += 1
        else:
            self.total_new_bytes += pkt.payload_len
        if seq_after(end_seq, self.transmitted_max):
            self.transmitted_max = end_seq
        return segment, is_retrans

    # -- incoming acknowledgments ------------------------------------------
    def apply_ack(self, ack: int, now: float) -> list[AnalyzedSegment]:
        """Advance snd_una; return the newly acked segments."""
        if not seq_after(ack, self.snd_una):
            return []
        newly: list[AnalyzedSegment] = []
        index = self._first_unacked
        while index < len(self.segments):
            segment = self.segments[index]
            if not seq_leq(segment.end_seq, ack):
                break
            if segment.acked_at is None:
                segment.acked_at = now
                newly.append(segment)
                if segment.sacked_at is not None:
                    self._sacked_out -= 1
                elif len(segment.tx_times) > 1:
                    self._retrans_out -= 1
            index += 1
        self._first_unacked = index
        self.snd_una = ack
        return newly

    def apply_sack(
        self, blocks: list[SackBlock], ack: int, now: float
    ) -> tuple[list[AnalyzedSegment], bool]:
        """Apply SACK blocks; return (newly_sacked_segments, dsack_seen).

        ``ack`` is the cumulative ACK of the same packet: a block at or
        below it is a DSACK (RFC 2883).
        """
        newly: list[AnalyzedSegment] = []
        dsack = False
        for index, (left, right) in enumerate(blocks):
            if seq_leq(right, ack):
                dsack = True
                self._record_dsack(left, right, now)
                continue
            if index == 0 and len(blocks) > 1:
                outer_left, outer_right = blocks[1]
                if seq_geq(left, outer_left) and seq_leq(right, outer_right):
                    dsack = True
                    self._record_dsack(left, right, now)
                    continue
            segments = self.segments
            pos = self._first_unacked
            total = len(segments)
            while pos < total:
                segment = segments[pos]
                pos += 1
                # Segments are kept sorted by seq: once past the block's
                # right edge nothing further can match.
                if seq_geq(segment.seq, right):
                    break
                if segment.sacked_at is not None:
                    continue
                if seq_geq(segment.seq, left) and seq_leq(
                    segment.end_seq, right
                ):
                    segment.sacked_at = now
                    newly.append(segment)
                    self._sacked_out += 1
                    if len(segment.tx_times) > 1:
                        self._retrans_out -= 1
                    if self.highest_sacked is None or seq_after(
                        segment.end_seq, self.highest_sacked
                    ):
                        self.highest_sacked = segment.end_seq
        return newly, dsack

    def _record_dsack(self, left: int, right: int, now: float) -> None:
        """A DSACK for [left, right): some transmission was spurious."""
        segment = self.find_covering(left)
        if (
            segment is not None
            and segment.spurious_at is None
            and segment.retransmitted
        ):
            segment.spurious_at = now

    # -- queries --------------------------------------------------------------
    def outstanding(self) -> list[AnalyzedSegment]:
        """Segments transmitted but not yet cumulatively acked."""
        return self.segments[self._first_unacked :]

    def outstanding_unsacked(self) -> list[AnalyzedSegment]:
        return [s for s in self.outstanding() if not s.sacked]

    @property
    def packets_out(self) -> int:
        return len(self.segments) - self._first_unacked

    @property
    def sacked_out(self) -> int:
        return self._sacked_out

    def retrans_out(self) -> int:
        return self._retrans_out

    def holes(self) -> int:
        if self.highest_sacked is None:
            return 0
        return sum(
            1
            for s in self.outstanding()
            if not s.sacked and seq_before(s.seq, self.highest_sacked)
        )

    def find_covering(self, seq: int) -> AnalyzedSegment | None:
        segment = self._by_seq.get(seq)
        if segment is not None:
            return segment
        for candidate in self.segments:
            if seq_leq(candidate.seq, seq) and seq_before(
                seq, candidate.end_seq
            ):
                return candidate
        return None

    @property
    def total_segments(self) -> int:
        return len(self.segments)
