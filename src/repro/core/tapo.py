"""TAPO: the TCP stall diagnosis tool (the paper's contribution).

The facade ties the three components of Sec. 3.3 together:

1. reconstruction of the congestion state machine for each flow,
2. calculation of the Table 2 parameters by mimicking the TCP stack,
3. classification of stalls with the decision tree.

Inputs can be a pcap file, an in-memory packet list, or pre-demuxed
flows; output is a list of classified :class:`FlowAnalysis` objects or
a per-service :class:`ServiceReport`.
"""

from __future__ import annotations

from collections.abc import Iterable
from pathlib import Path

from ..packet.flow import FlowTrace, ServerPredicate, demux
from ..packet.packet import PacketRecord
from ..packet.pcap import PcapReader
from .classifier import classify_flow
from .flow_analyzer import FlowAnalysis, FlowAnalyzer
from .report import ServiceReport
from .stalls import STALL_TAU


class Tapo:
    """TCP performance analysis tool.

    Parameters
    ----------
    tau:
        The stall-threshold multiplier on SRTT (paper uses 2).
    init_cwnd:
        Initial congestion window assumed for the shadow window.
    record_series:
        Also record the per-ACK inferred kernel-variable time-series
        (``FlowAnalysis.kernel_series``) for comparison against the
        simulator's flight-recorder ground truth.
    """

    def __init__(self, tau: float = STALL_TAU, init_cwnd: int = 3,
                 record_series: bool = False):
        self.tau = tau
        self.init_cwnd = init_cwnd
        self.record_series = record_series

    # -- single flow ------------------------------------------------------
    def analyze_flow(self, flow: FlowTrace) -> FlowAnalysis:
        """Analyze and classify one flow."""
        analyzer = FlowAnalyzer(
            flow,
            tau=self.tau,
            init_cwnd=self.init_cwnd,
            record_series=self.record_series,
        )
        analysis = analyzer.run()
        classify_flow(analysis, analyzer.tracker)
        return analysis

    # -- packet streams ------------------------------------------------------
    def analyze_packets(
        self,
        packets: Iterable[PacketRecord],
        server_side: ServerPredicate | None = None,
    ) -> list[FlowAnalysis]:
        """Demux a packet stream into flows and analyze each."""
        flows = demux(packets, server_side)
        return [self.analyze_flow(flow) for flow in flows]

    def analyze_pcap(
        self,
        path: str | Path,
        server_side: ServerPredicate | None = None,
    ) -> list[FlowAnalysis]:
        """Analyze every flow in a pcap file."""
        with PcapReader(path) as reader:
            return self.analyze_packets(reader, server_side)

    # -- services --------------------------------------------------------------
    def report(
        self,
        traces: Iterable[list[PacketRecord]],
        service: str = "trace",
    ) -> ServiceReport:
        """Analyze per-connection traces into a service report.

        ``traces`` is an iterable of already-separated per-connection
        packet lists (the shape the simulator produces); mixed streams
        should go through :meth:`analyze_packets` instead.
        """
        report = ServiceReport(service=service)
        for packets in traces:
            for analysis in self.analyze_packets(packets):
                report.add(analysis)
        return report


def analyze_pcap(path: str | Path, **kwargs) -> list[FlowAnalysis]:
    """Module-level convenience wrapper around :class:`Tapo`."""
    return Tapo(**kwargs).analyze_pcap(path)
