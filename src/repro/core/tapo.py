"""TAPO: the TCP stall diagnosis tool (the paper's contribution).

The facade ties the three components of Sec. 3.3 together:

1. reconstruction of the congestion state machine for each flow,
2. calculation of the Table 2 parameters by mimicking the TCP stack,
3. classification of stalls with the decision tree.

Inputs can be a pcap file, an in-memory packet list, or pre-demuxed
flows; output is a list of classified :class:`FlowAnalysis` objects or
a per-service :class:`ServiceReport`.

The engine underneath is *streaming*: packets flow through an
incremental demuxer (:func:`repro.packet.flow.demux_stream`) that
evicts flows as they close, and completed flows fan out to analyzer
workers with bounded in-flight chunks
(:class:`repro.experiments.parallel.AnalysisPool`).  Memory is bounded
by open-flow state, never by trace length.  The batch entry points
(:meth:`Tapo.analyze_packets`, :meth:`Tapo.analyze_pcap`) are thin
wrappers over the same core with eviction disabled, which makes them
byte-identical to the historical all-in-memory implementation.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from pathlib import Path

from ..config import AnalysisConfig, RunConfig, warn_deprecated_kwargs
from ..errors import (
    FaultStats,
    FlowAnalysisError,
    ReproError,
    SkippedFlow,
)
from ..packet.columnar import PacketColumns
from ..packet.flow import (
    FlowTrace,
    ServerPredicate,
    StreamStats,
    demux_stream,
)
from ..packet.packet import PacketRecord
from ..packet.pcap import PcapReader
from .classifier import classify_flow
from .columnar_pipeline import (
    batch_records,
    demux_columns_stream,
    fast_replay_flow,
)
from .flow_analyzer import FlowAnalysis, FlowAnalyzer
from .report import ServiceReport

#: Anything :meth:`Tapo.analyze_stream` accepts as a packet source: a
#: pcap path, an open reader, an iterable of records, an iterable of
#: record chunks (lists) as produced by ``PcapReader.iter_chunks``, or
#: an iterable of decoded :class:`PacketColumns` batches (what live
#: capture sources hand over on the columnar path).
PacketSource = (
    "str | Path | PcapReader | Iterable[PacketRecord] "
    "| Iterable[list[PacketRecord]] | Iterable[PacketColumns]"
)

#: Fault-injection seam (see :mod:`repro.testing.faults`): when set,
#: called as ``FLOW_HOOK(flow)`` before each flow's analysis and may
#: raise to simulate an analyzer crash.  Module state, so fork-based
#: worker pools inherit it.  Never set outside tests.
FLOW_HOOK = None


def _iter_source(source) -> Iterator[PacketRecord]:
    """Flatten any accepted packet source into one record stream."""
    if isinstance(source, PcapReader):
        yield from source.iter_records()
        return
    for item in source:
        if isinstance(item, PacketRecord):
            yield item
        elif isinstance(item, PacketColumns):
            yield from item.records()
        else:  # a chunk (any iterable of records)
            yield from item


def _iter_column_batches(source) -> Iterator[PacketColumns]:
    """Shape any accepted packet source into column batches."""
    if isinstance(source, PcapReader):
        yield from source.iter_columns()
        return
    yield from batch_records(source)


class Tapo:
    """TCP performance analysis tool.

    Parameters
    ----------
    config:
        An :class:`repro.config.AnalysisConfig` with the paper's
        knobs: ``tau`` (stall-threshold multiplier on SRTT),
        ``init_cwnd`` (initial shadow congestion window), and
        ``record_series`` (keep the per-ACK inferred kernel-variable
        time-series).
    tau, init_cwnd, record_series:
        Deprecated keyword equivalents; they still work but emit
        :class:`DeprecationWarning`.  Pass an ``AnalysisConfig``.
    """

    def __init__(
        self,
        config: AnalysisConfig | None = None,
        tau: float | None = None,
        init_cwnd: int | None = None,
        record_series: bool | None = None,
    ):
        if config is not None and not isinstance(config, AnalysisConfig):
            # Legacy positional tau: Tapo(2.0).  Converted directly
            # (not via the kwarg path below) so one legacy call emits
            # exactly one warning.
            warn_deprecated_kwargs("Tapo", ["tau"], "AnalysisConfig(tau=...)")
            config = AnalysisConfig(tau=float(config))
        legacy = {
            name: value
            for name, value in (
                ("tau", tau),
                ("init_cwnd", init_cwnd),
                ("record_series", record_series),
            )
            if value is not None
        }
        if legacy:
            warn_deprecated_kwargs(
                "Tapo", list(legacy), "an AnalysisConfig"
            )
            config = (config or AnalysisConfig()).replace(**legacy)
        self.config = config or AnalysisConfig()
        # Plain attributes kept for backward compatibility.
        self.tau = self.config.tau
        self.init_cwnd = self.config.init_cwnd
        self.record_series = self.config.record_series
        #: Fault accounting for the most recent multi-flow entry-point
        #: call (reset per call); quarantined flows live in
        #: ``faults.skipped``.
        self.faults = FaultStats()
        #: Flows settled by the columnar fast replay versus flows that
        #: fell back to the object pipeline, for the most recent
        #: multi-flow call on *this* instance (worker processes count
        #: on their own instances).  Diagnostic only — results are
        #: identical either way.
        self.fast_flows = 0
        self.fallback_flows = 0

    @property
    def skipped_flows(self) -> list[SkippedFlow]:
        """Flows quarantined during the most recent analysis call."""
        return self.faults.skipped

    # -- single flow ------------------------------------------------------
    def analyze_flow(self, flow: FlowTrace) -> FlowAnalysis:
        """Analyze and classify one flow.

        Columnar flows that are provably clean settle on the fast
        replay (:func:`~repro.core.columnar_pipeline.fast_replay_flow`)
        without materializing packet objects; everything else — and
        everything when ``config.columnar`` is off — runs the object
        pipeline.  The resulting analysis is identical either way.

        Any analyzer crash surfaces as a typed
        :class:`~repro.errors.FlowAnalysisError` carrying the flow key
        and the packet index the analyzer had reached; the multi-flow
        entry points turn that into a quarantined
        :class:`~repro.errors.SkippedFlow` under tolerant budgets.
        """
        analyzer: FlowAnalyzer | None = None
        try:
            if FLOW_HOOK is not None:
                FLOW_HOOK(flow)
            analysis = fast_replay_flow(flow, self.config)
            if analysis is None:
                analyzer = FlowAnalyzer(flow, config=self.config)
                analysis = analyzer.run()
                classify_flow(analysis, analyzer.tracker)
                self.fallback_flows += 1
            else:
                self.fast_flows += 1
        except ReproError:
            raise
        except Exception as exc:
            raise FlowAnalysisError(
                f"flow {flow.key} crashed the analyzer: "
                f"{type(exc).__name__}: {exc}",
                key=flow.key,
                packet_index=analyzer._fed if analyzer is not None else 0,
            ) from exc
        return analysis

    def _analyze_flows(
        self, flows: Iterable[FlowTrace], faults: FaultStats,
        enforce: bool = True,
    ) -> Iterator[FlowAnalysis]:
        """Analyze flows under the configured error budget.

        Strict budgets propagate the first
        :class:`~repro.errors.ReproError`; tolerant budgets quarantine
        the crashing flow into ``faults`` and continue.  ``enforce``
        applies ``budget:`` caps here — analyzer workers pass ``False``
        because only the parent sees run-wide fault totals.
        """
        budget = self.config.errors
        done = 0
        for flow in flows:
            done += 1
            try:
                yield self.analyze_flow(flow)
            except ReproError as exc:
                if not budget.tolerant:
                    raise
                faults.record_skip(
                    SkippedFlow.from_exception(
                        flow, exc, getattr(exc, "packet_index", None)
                    )
                )
                if enforce:
                    budget.check(
                        faults.flows_skipped, done, "quarantined flows"
                    )

    # -- packet streams ------------------------------------------------------
    def analyze_packets(
        self,
        packets: Iterable[PacketRecord],
        server_side: ServerPredicate | None = None,
    ) -> list[FlowAnalysis]:
        """Demux a packet stream into flows and analyze each.

        Batch semantics: every flow is held until end of stream and
        results come back sorted by first packet time — the streaming
        core with eviction disabled.
        """
        self.faults = FaultStats()
        self.fast_flows = self.fallback_flows = 0
        if self.config.columnar and not self.config.record_series:
            flows = demux_columns_stream(
                _iter_column_batches(packets),
                server_side,
                idle_timeout=None,
                close_linger=None,
            )
        else:
            flows = demux_stream(
                packets, server_side, idle_timeout=None, close_linger=None
            )
        return list(self._analyze_flows(flows, self.faults))

    def analyze_pcap(
        self,
        path: str | Path,
        server_side: ServerPredicate | None = None,
    ) -> list[FlowAnalysis]:
        """Analyze every flow in a pcap file.

        On the columnar path (the default) packets never exist as
        objects unless their flow needs the object pipeline: the file
        is decoded slab-by-slab into :class:`PacketColumns` batches
        and demultiplexed on the columns.
        """
        config = self.config
        with PcapReader(
            path,
            errors=config.errors,
            verify_checksums=config.verify_checksums,
        ) as reader:
            if config.columnar and not config.record_series:
                self.faults = FaultStats()
                self.fast_flows = self.fallback_flows = 0
                flows = demux_columns_stream(
                    reader.iter_columns(),
                    server_side,
                    idle_timeout=None,
                    close_linger=None,
                )
                analyses = list(self._analyze_flows(flows, self.faults))
            else:
                analyses = self.analyze_packets(
                    reader.iter_records(), server_side
                )
            reader.fold_faults(self.faults)
            return analyses

    # -- streaming --------------------------------------------------------
    def analyze_stream(
        self,
        source,
        server_side: ServerPredicate | None = None,
        *,
        run: RunConfig | None = None,
        stats: StreamStats | None = None,
        registry=None,
    ) -> Iterator[FlowAnalysis]:
        """Analyze an unbounded packet source with bounded memory.

        ``source`` may be a pcap path, an open :class:`PcapReader`, an
        iterable of :class:`PacketRecord`, or an iterable of record
        chunks.  Flows are yielded as they *complete* (FIN/RST close
        or ``run.idle_timeout`` of trace-time silence), not at end of
        stream; classifications are identical to
        :meth:`analyze_pcap` on the same trace, modulo yield order.

        With ``run.workers > 1``, completed flows fan out to a worker
        pool in chunks of ``run.chunk_flows``, with at most
        ``run.max_in_flight_chunks`` outstanding — when the bound is
        hit, the packet source is not read further until a chunk
        retires (backpressure).  Results arrive in flow-completion
        order for any worker count.

        ``stats`` (a :class:`~repro.packet.flow.StreamStats`) and
        ``registry`` (a :class:`repro.obs.metrics.MetricsRegistry`)
        expose flows-evicted / in-flight-chunk / peak-buffered-packet
        counters for observability.
        """
        from ..experiments.parallel import AnalysisPool

        run = run or RunConfig()
        self.faults = FaultStats()
        self.fast_flows = self.fallback_flows = 0
        opened: PcapReader | None = None
        if isinstance(source, (str, Path)):
            opened = PcapReader(
                source,
                errors=self.config.errors,
                verify_checksums=self.config.verify_checksums,
            )
            source = opened
        stream_stats = stats if stats is not None else StreamStats()
        pool = AnalysisPool(
            config=self.config,
            workers=run.workers,
            chunk_flows=run.chunk_flows,
            max_in_flight=run.max_in_flight_chunks,
            max_retries=run.max_retries,
            retry_backoff=run.retry_backoff,
            faults=self.faults,
        )
        # The columnar demux hands the pool lazy flows; that is only a
        # win in-process, so fan-out to worker processes (which would
        # materialize every flow for pickling anyway) keeps the object
        # demux.  Results are identical either way.
        if (
            self.config.columnar
            and not self.config.record_series
            and run.resolved_workers() == 1
        ):
            flows = demux_columns_stream(
                _iter_column_batches(source),
                server_side,
                idle_timeout=run.idle_timeout,
                close_linger=run.close_linger,
                stats=stream_stats,
            )
        else:
            flows = demux_stream(
                _iter_source(source),
                server_side,
                idle_timeout=run.idle_timeout,
                close_linger=run.close_linger,
                stats=stream_stats,
            )
        try:
            yield from pool.map_stream(flows)
        finally:
            if isinstance(source, PcapReader):
                source.fold_faults(self.faults)
            if registry is not None:
                stream_stats.to_registry(registry)
                pool.stats.to_registry(registry)
                self.faults.to_registry(registry)
            if opened is not None:
                opened.close()

    def report_stream(
        self,
        source,
        service: str = "trace",
        server_side: ServerPredicate | None = None,
        *,
        run: RunConfig | None = None,
        stats: StreamStats | None = None,
        registry=None,
    ) -> ServiceReport:
        """Stream-analyze ``source`` into one :class:`ServiceReport`.

        Partial reports are built per analysis chunk and combined with
        :meth:`ServiceReport.merge`; merging is associative, so the
        result equals a single-pass batch report over the same flows.
        """
        run = run or RunConfig()
        part_size = run.chunk_flows or 32
        parts: list[ServiceReport] = []
        part = ServiceReport(service=service)
        for analysis in self.analyze_stream(
            source, server_side, run=run, stats=stats, registry=registry
        ):
            part.add(analysis)
            if len(part.flows) >= part_size:
                parts.append(part)
                part = ServiceReport(service=service)
        if part.flows:
            parts.append(part)
        report = ServiceReport.merged(parts, service=service)
        report.skipped.extend(self.faults.skipped)
        return report

    # -- services --------------------------------------------------------------
    def report(
        self,
        traces: Iterable[list[PacketRecord]],
        service: str = "trace",
    ) -> ServiceReport:
        """Analyze per-connection traces into a service report.

        ``traces`` is an iterable of already-separated per-connection
        packet lists (the shape the simulator produces); mixed streams
        should go through :meth:`analyze_packets` instead.
        """
        self.faults = FaultStats()
        report = ServiceReport(service=service)
        for packets in traces:
            flows = demux_stream(
                packets, None, idle_timeout=None, close_linger=None
            )
            for analysis in self._analyze_flows(flows, self.faults):
                report.add(analysis)
        report.skipped.extend(self.faults.skipped)
        return report


def analyze_pcap(
    path: str | Path,
    config: AnalysisConfig | None = None,
    **kwargs,
) -> list[FlowAnalysis]:
    """Module-level convenience wrapper around :class:`Tapo`.

    Legacy ``tau=...``-style keywords are forwarded to :class:`Tapo`'s
    deprecation shim.
    """
    return Tapo(config=config, **kwargs).analyze_pcap(path)
