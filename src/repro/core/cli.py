"""Command-line interface: ``tapo <trace.pcap>``.

Prints per-flow stall summaries and the aggregate cause breakdown —
the offline mode of the paper's tool.  ``--json`` emits a machine-
readable report for pipelines.
"""

from __future__ import annotations

import argparse
import json
import sys

from .. import cli_options
from ..config import AnalysisConfig, RunConfig
from ..errors import ReproError
from ..packet.flow import server_by_ip, server_by_port
from ..packet.headers import ip_from_str
from .report import ServiceReport
from .stalls import RetxCause, StallCause
from .tapo import Tapo


def build_parser() -> argparse.ArgumentParser:
    from ..cli import version_string

    parser = argparse.ArgumentParser(
        prog="tapo",
        description="Classify TCP stall causes in a server-side pcap trace.",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {version_string()}",
    )
    parser.add_argument("pcap", help="path to a pcap file (raw-IP or Ethernet)")
    cli_options.add_server_endpoint(parser)
    parser.add_argument(
        "--tau",
        type=float,
        default=2.0,
        help="stall threshold multiplier on SRTT (default 2)",
    )
    parser.add_argument(
        "--per-flow",
        action="store_true",
        help="print every stall of every flow",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON report instead of text",
    )
    parser.add_argument(
        "--csv",
        help="write a tstat-style per-flow record table to this file",
    )
    parser.add_argument(
        "--flow-table",
        action="store_true",
        help="print a compact per-flow table",
    )
    parser.add_argument(
        "--timeline-dir",
        help=(
            "write tcptrace-style .dat series (data/retx/acks/window/"
            "rtt/stalls) for every flow into this directory"
        ),
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help=(
            "analyze through the bounded-memory streaming pipeline "
            "(identical classifications; memory stays flat on huge traces)"
        ),
    )
    cli_options.add_workers(
        parser,
        default=1,
        help=(
            "analysis worker processes (implies --stream; 0 = one per "
            "core, 1 = serial; default 1)"
        ),
    )
    cli_options.add_cluster_options(parser, default_shards=1)
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=60.0,
        help=(
            "with --stream, evict flows idle for this many trace-seconds "
            "(default 60)"
        ),
    )
    parser.add_argument(
        "--no-columnar",
        action="store_true",
        help=(
            "force the per-packet object pipeline instead of the "
            "columnar fast path (identical output, mostly slower; "
            "an escape hatch and parity oracle)"
        ),
    )
    cli_options.add_errors(parser, default="strict")
    cli_options.add_stats(
        parser,
        help=(
            "print streaming/runtime counters to stderr (implies --stream)"
        ),
    )
    cli_options.add_metrics_out(
        parser,
        help=(
            "write streaming metrics to PREFIX.json and PREFIX.prom "
            "(Prometheus text exposition; implies --stream)"
        ),
    )
    cli_options.add_results_store(
        parser,
        help=(
            "append this analysis (summary metrics + stall-cause "
            "shares + fault counters) to the longitudinal results "
            "store at PATH"
        ),
    )
    return parser


def _flow_to_dict(analysis) -> dict:
    key = analysis.flow.key
    return {
        "endpoints": [
            [key.ip_a, key.port_a],
            [key.ip_b, key.port_b],
        ],
        "bytes_out": analysis.bytes_out,
        "data_packets": analysis.data_packets,
        "retransmissions": analysis.retransmissions,
        "timeouts": analysis.timeouts,
        "duration": analysis.duration,
        "avg_rtt": analysis.avg_rtt,
        "avg_rto": analysis.avg_rto,
        "init_rwnd": analysis.init_rwnd,
        "zero_window_seen": analysis.zero_window_seen,
        "stall_ratio": analysis.stall_ratio,
        "stalls": [
            {
                "start": stall.start_time,
                "duration": stall.duration,
                "cause": stall.cause.value,
                "retx_cause": (
                    stall.retx_cause.value if stall.retx_cause else None
                ),
                "double_kind": (
                    stall.double_kind.value if stall.double_kind else None
                ),
                "ca_state": stall.context.ca_state.value,
                "in_flight": stall.context.in_flight,
                "position": stall.position,
            }
            for stall in analysis.stalls
        ],
    }


def _emit_json(report: ServiceReport, analyses, faults) -> None:
    breakdown = report.cause_breakdown()
    retx = report.retx_breakdown()
    payload = {
        "flows": len(analyses),
        "flows_with_stalls": report.flows_with_stalls(),
        "stalls": report.total_stalls(),
        "faults": {
            "corrupt_records": faults.corrupt_records,
            "resyncs": faults.resyncs,
            "option_errors": faults.option_errors,
            "flows_skipped": faults.flows_skipped,
            "tasks_retried": faults.tasks_retried,
            "tasks_poisoned": faults.tasks_poisoned,
        },
        "causes": {
            cause.value: {
                "count": entry.count,
                "time": entry.time,
                "volume_share": entry.volume_share,
                "time_share": entry.time_share,
            }
            for cause, entry in breakdown.items()
            if entry.count
        },
        "retransmission_causes": {
            cause.value: {
                "count": entry.count,
                "time": entry.time,
                "volume_share": entry.volume_share,
                "time_share": entry.time_share,
            }
            for cause, entry in retx.items()
            if entry.count
        },
        "per_flow": [_flow_to_dict(a) for a in analyses],
    }
    json.dump(payload, sys.stdout, indent=2)
    print()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    server_side = None
    if args.server_ip:
        server_side = server_by_ip(ip_from_str(args.server_ip))
    elif args.server_port:
        server_side = server_by_port(args.server_port)

    tapo = Tapo(
        config=AnalysisConfig(
            tau=args.tau,
            errors=args.errors,
            columnar=not args.no_columnar,
        )
    )
    cluster = args.shards > 1
    streaming = not cluster and (
        args.stream
        or args.stats
        or bool(args.metrics_out)
        or args.workers != 1
    )
    import time as _time

    analysis_started = _time.monotonic()
    try:
        if cluster:
            # Sharded execution: same analyses, N worker processes.
            # The merged report is byte-identical to the batch path,
            # so every downstream emitter below works unchanged.
            from ..cluster import run_cluster

            cluster_result = run_cluster(
                args.pcap,
                shards=args.shards,
                transport=args.transport,
                service=args.pcap,
                config=tapo.config,
                server_ip=(
                    ip_from_str(args.server_ip) if args.server_ip else None
                ),
                server_port=(
                    args.server_port if not args.server_ip else None
                ),
            )
            analyses = list(cluster_result.report.flows)
        elif streaming:
            from ..obs.metrics import MetricsRegistry
            from ..packet.flow import StreamStats

            registry = MetricsRegistry()
            stats = StreamStats()
            run = RunConfig(
                workers=args.workers, idle_timeout=args.idle_timeout
            )
            analyses = list(
                tapo.analyze_stream(
                    args.pcap,
                    server_side,
                    run=run,
                    stats=stats,
                    registry=registry,
                )
            )
            # Restore batch presentation order (first packet time) so
            # --json/--csv output is byte-identical to the batch path.
            analyses.sort(key=lambda a: a.flow.first_time)
        else:
            analyses = tapo.analyze_pcap(args.pcap, server_side)
    except ReproError as exc:
        print(
            f"tapo: {args.pcap}: {type(exc).__name__}: {exc} "
            f"(budget: {args.errors.describe()})",
            file=sys.stderr,
        )
        return 2
    except OSError as exc:
        print(f"tapo: cannot read {args.pcap}: {exc}", file=sys.stderr)
        return 1

    faults = cluster_result.faults if cluster else tapo.faults
    if cluster:
        if args.stats:
            for shard in cluster_result.shards:
                print(
                    f"shard {shard['shard']}: {shard['flows']} flows "
                    f"({shard['skipped']} quarantined), "
                    f"{shard['packets_kept']}/{shard['packets_decoded']} "
                    "packets kept",
                    file=sys.stderr,
                )
            if cluster_result.workers_died:
                print(
                    f"cluster: {cluster_result.workers_died} worker "
                    "deaths survived",
                    file=sys.stderr,
                )
        if args.metrics_out:
            from ..obs.metrics import write_registry

            json_path, prom_path = write_registry(
                cluster_result.registry, args.metrics_out
            )
            print(
                f"wrote metrics to {json_path} and {prom_path}",
                file=sys.stderr,
            )
    if streaming:
        if args.stats:
            print(
                f"stream: {stats.packets} packets, "
                f"{stats.flows_total} flows "
                f"({stats.flows_evicted_idle} idle-evicted), "
                f"peak buffered {stats.peak_buffered_packets} packets, "
                f"peak active {stats.peak_active_flows} flows",
                file=sys.stderr,
            )
            print(
                f"faults: {faults.corrupt_records} corrupt records "
                f"({faults.resyncs} resyncs), "
                f"{faults.option_errors} option errors, "
                f"{faults.flows_skipped} flows quarantined, "
                f"{faults.tasks_retried} tasks retried, "
                f"{faults.tasks_poisoned} poisoned",
                file=sys.stderr,
            )
        if args.metrics_out:
            from ..obs.metrics import write_registry

            json_path, prom_path = write_registry(
                registry, args.metrics_out
            )
            print(
                f"wrote metrics to {json_path} and {prom_path}",
                file=sys.stderr,
            )

    report = ServiceReport(service=args.pcap)
    for analysis in analyses:
        report.add(analysis)
    for skipped in faults.skipped:
        report.skipped.append(skipped)

    if args.results_store:
        from pathlib import Path

        from ..results.store import (
            ResultsStore,
            record_fields_from_report,
        )

        fields = record_fields_from_report(report)
        with ResultsStore(args.results_store) as store:
            store.append(
                "analysis",
                Path(args.pcap).stem,
                wall_time=_time.monotonic() - analysis_started,
                config=tapo.config,
                faults={
                    "corrupt_records": faults.corrupt_records,
                    "resyncs": faults.resyncs,
                    "option_errors": faults.option_errors,
                    "flows_skipped": faults.flows_skipped,
                },
                meta={"pcap": args.pcap, "streaming": streaming},
                **fields,
            )
        print(
            f"appended analysis record to {args.results_store}",
            file=sys.stderr,
        )

    if args.csv:
        from .records import write_csv

        rows = write_csv(args.csv, analyses)
        print(f"wrote {rows} flow records to {args.csv}", file=sys.stderr)

    if args.flow_table:
        from .records import format_flow_table

        print(format_flow_table(analyses))
        print()

    if args.timeline_dir:
        from .timeline import build_timeline, write_timeline

        written = 0
        for index, analysis in enumerate(analyses):
            timeline = build_timeline(analysis)
            write_timeline(
                timeline, args.timeline_dir, prefix=f"flow{index:04d}"
            )
            written += 1
        print(
            f"wrote timelines for {written} flows to {args.timeline_dir}",
            file=sys.stderr,
        )

    if args.json:
        _emit_json(report, analyses, faults)
        return 0

    print(f"flows analyzed:    {len(analyses)}")
    print(f"flows with stalls: {report.flows_with_stalls()}")
    print(f"stalls detected:   {report.total_stalls()}")
    if faults.flows_skipped or faults.corrupt_records:
        print(
            f"faults tolerated:  {faults.corrupt_records} corrupt "
            f"records, {faults.flows_skipped} flows quarantined "
            f"(budget: {args.errors.describe()})"
        )

    if args.per_flow:
        for analysis in analyses:
            if not analysis.stalls:
                continue
            key = analysis.flow.key
            print(
                f"\nflow {key.ip_a:#010x}:{key.port_a} <-> "
                f"{key.ip_b:#010x}:{key.port_b} "
                f"({analysis.bytes_out} bytes, "
                f"{analysis.stalled_time:.3f}s stalled)"
            )
            for stall in analysis.stalls:
                print("  " + stall.describe())

    print("\nstall causes (volume% / time%):")
    breakdown = report.cause_breakdown()
    for cause in StallCause:
        entry = breakdown[cause]
        if entry.count == 0:
            continue
        print(
            f"  {cause.value:<20} {entry.volume_share * 100:6.1f}%  "
            f"{entry.time_share * 100:6.1f}%   ({entry.count} stalls)"
        )

    retx = report.retx_breakdown()
    if any(entry.count for entry in retx.values()):
        print("\ntimeout-retransmission stalls (volume% / time%):")
        for cause in RetxCause:
            entry = retx[cause]
            if entry.count == 0:
                continue
            print(
                f"  {cause.value:<20} {entry.volume_share * 100:6.1f}%  "
                f"{entry.time_share * 100:6.1f}%   ({entry.count} stalls)"
            )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
