"""Per-flow timelines: tcptrace-style series for any analyzed flow.

The paper's Fig. 2 plots a flow's sequence progress and RTT with its
stalls; this module extracts the same series for *any* flow TAPO has
analyzed, ready for plotting or eyeballing:

* data-segment transmissions (first transmissions vs retransmissions),
* cumulative-ACK progress,
* advertised receive window (right edge),
* per-sample RTT,
* the classified stall intervals.

Sequence numbers are rebased to the server's initial sequence number so
the series start near zero regardless of the random ISN.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..packet.flow import Direction
from .flow_analyzer import FlowAnalysis
from .stalls import Stall


@dataclass
class TimelinePoint:
    time: float
    value: float


@dataclass
class FlowTimeline:
    """All plottable series of one flow."""

    #: (time, relative seq) of first-transmission data segments.
    data_segments: list[TimelinePoint] = field(default_factory=list)
    #: (time, relative seq) of retransmitted segments.
    retransmissions: list[TimelinePoint] = field(default_factory=list)
    #: (time, relative ack) cumulative ACK progress.
    acks: list[TimelinePoint] = field(default_factory=list)
    #: (time, relative right edge) advertised window edge.
    window_edge: list[TimelinePoint] = field(default_factory=list)
    #: (time, seconds) RTT samples in arrival order.
    rtt: list[TimelinePoint] = field(default_factory=list)
    #: The flow's classified stalls.
    stalls: list[Stall] = field(default_factory=list)
    base_seq: int = 0

    @property
    def duration(self) -> float:
        times = [p.time for p in self.data_segments + self.acks]
        if not times:
            return 0.0
        return max(times) - min(times)

    def stalled_intervals(self) -> list[tuple[float, float]]:
        return [(s.start_time, s.end_time) for s in self.stalls]


def build_timeline(analysis: FlowAnalysis) -> FlowTimeline:
    """Extract the plottable series from an analyzed flow."""
    timeline = FlowTimeline(stalls=list(analysis.stalls))
    base: int | None = None
    seen_ranges: set[int] = set()
    rtt_index = 0
    wscale = analysis.wscale

    for pkt, direction in analysis.flow.packets:
        if direction is Direction.OUT:
            if pkt.syn:
                base = (pkt.seq + 1) % (1 << 32)
                timeline.base_seq = base
                continue
            if pkt.payload_len > 0 or pkt.fin:
                if base is None:
                    base = pkt.seq
                    timeline.base_seq = base
                rel = (pkt.seq - base) % (1 << 32)
                point = TimelinePoint(pkt.timestamp, float(rel))
                if pkt.seq in seen_ranges:
                    timeline.retransmissions.append(point)
                else:
                    seen_ranges.add(pkt.seq)
                    timeline.data_segments.append(point)
        else:
            if pkt.syn or base is None:
                continue
            if pkt.has_ack:
                rel_ack = (pkt.ack - base) % (1 << 32)
                # Ignore the pre-data ACKs of the handshake whose ack
                # field is far below the rebased space.
                if rel_ack < (1 << 31):
                    timeline.acks.append(
                        TimelinePoint(pkt.timestamp, float(rel_ack))
                    )
                    edge = rel_ack + (pkt.window << wscale)
                    timeline.window_edge.append(
                        TimelinePoint(pkt.timestamp, float(edge))
                    )

    # RTT samples have no timestamps of their own; pair them with ACK
    # arrival times in order (they are produced one per sampled ACK).
    ack_times = [p.time for p in timeline.acks]
    for sample in analysis.rtt_samples:
        when = ack_times[min(rtt_index, len(ack_times) - 1)] if ack_times else 0.0
        timeline.rtt.append(TimelinePoint(when, sample))
        rtt_index += 1
    return timeline


def write_timeline(timeline: FlowTimeline, out_dir, prefix: str = "flow"):
    """Write the series as gnuplot-ready .dat files; returns paths."""
    from pathlib import Path

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written = []

    def emit(name: str, points: list[TimelinePoint], header: str) -> None:
        path = out / f"{prefix}_{name}.dat"
        with open(path, "w") as handle:
            handle.write(f"# {header}\n")
            for point in points:
                handle.write(f"{point.time:.6f} {point.value:.6f}\n")
        written.append(path)

    emit("data", timeline.data_segments, "time relative_seq (first tx)")
    emit("retx", timeline.retransmissions, "time relative_seq (retx)")
    emit("acks", timeline.acks, "time relative_ack")
    emit("window", timeline.window_edge, "time advertised_right_edge")
    emit("rtt", timeline.rtt, "time rtt_seconds")
    stall_path = out / f"{prefix}_stalls.dat"
    with open(stall_path, "w") as handle:
        handle.write("# start end cause retx_cause\n")
        for stall in timeline.stalls:
            retx = stall.retx_cause.value if stall.retx_cause else "-"
            handle.write(
                f"{stall.start_time:.6f} {stall.end_time:.6f} "
                f"{stall.cause.value} {retx}\n"
            )
    written.append(stall_path)
    return written
