"""Stall data model: causes, contexts, and detected stall records.

A *TCP stall* (Sec. 2.2 of the paper) is a gap between two consecutive
packets seen at the server — in either direction — longer than
``min(tau * SRTT, RTO)`` with ``tau = 2``.  Because a stall is defined
by consecutive packets, **no packet exists inside a stall**: every
classification decision uses the flow state frozen at the stall's
start plus the identity of the packet that ends it (``cur_pkt``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

#: The paper's tau: a healthy sender moves at least one packet per 2 RTTs.
STALL_TAU = 2.0


class StallCause(enum.Enum):
    """Top-level stall causes (Fig. 5 / Table 3)."""

    DATA_UNAVAILABLE = "data_unavailable"  # server: back-end fetch
    RESOURCE_CONSTRAINT = "resource_constraint"  # server: app gave no data
    CLIENT_IDLE = "client_idle"  # client: no request pending
    ZERO_RWND = "zero_rwnd"  # client: window closed
    PACKET_DELAY = "packet_delay"  # network: delay without retransmission
    RETRANSMISSION = "retransmission"  # network: timeout retransmission
    UNDETERMINED = "undetermined"

    @property
    def category(self) -> str:
        """server / client / network / undetermined (Table 3 rows)."""
        return _CATEGORY[self]


_CATEGORY = {
    StallCause.DATA_UNAVAILABLE: "server",
    StallCause.RESOURCE_CONSTRAINT: "server",
    StallCause.CLIENT_IDLE: "client",
    StallCause.ZERO_RWND: "client",
    StallCause.PACKET_DELAY: "network",
    StallCause.RETRANSMISSION: "network",
    StallCause.UNDETERMINED: "undetermined",
}


class RetxCause(enum.Enum):
    """Breakdown of timeout-retransmission stalls (Table 5), listed in
    the order the paper examines the rules."""

    DOUBLE = "double_retrans"
    TAIL = "tail_retrans"
    SMALL_CWND = "small_cwnd"
    SMALL_RWND = "small_rwnd"
    CONTINUOUS_LOSS = "continuous_loss"
    ACK_DELAY_LOSS = "ack_delay_loss"
    UNDETERMINED = "undetermined"


class DoubleKind(enum.Enum):
    """Was the *first* retransmission of the doubly-lost segment a fast
    retransmit (f-double) or itself timeout-driven (t-double)?
    (Fig. 8 / Table 6)."""

    F_DOUBLE = "f-double"
    T_DOUBLE = "t-double"


class CaState(enum.Enum):
    """Reconstructed congestion-avoidance states (Fig. 4)."""

    OPEN = "Open"
    DISORDER = "Disorder"
    RECOVERY = "Recovery"
    LOSS = "Loss"


@dataclass
class StallContext:
    """Table 2 parameter snapshot, frozen at the stall's start."""

    ca_state: CaState = CaState.OPEN
    packets_out: int = 0
    sacked_out: int = 0
    lost_out: int = 0  # true value, refined with DSACK knowledge
    retrans_out: int = 0
    holes: int = 0
    in_flight: int = 0
    #: Packets sent but not yet ACKed or SACKed (the definition the
    #: paper's Fig. 7b / 10b captions use).
    unsacked_out: int = 0
    snd_una: int = 0
    snd_nxt: int = 0
    cwnd: int = 0  # mimicked congestion window (segments)
    rwnd: int = 0  # last advertised receive window (bytes)
    init_rwnd: int = 0  # from the client SYN (bytes)
    mss: int = 1448
    #: A request has been fully received but its response not started.
    request_pending: bool = False
    #: Any response data had been sent since the last request.
    response_started: bool = False
    #: Bytes of response data the server has sent so far (for file_pos).
    bytes_sent: int = 0

    @property
    def rwnd_segments(self) -> int:
        return self.rwnd // self.mss if self.mss else 0


@dataclass
class Stall:
    """One detected stall with its classification."""

    start_time: float
    end_time: float
    threshold: float
    cur_pkt_index: int  # index into the flow's packet list
    cur_pkt_dir_in: bool
    cur_pkt_is_data: bool
    cur_pkt_is_retrans: bool
    cur_pkt_seq: int
    cur_pkt_payload: int
    context: StallContext = field(default_factory=StallContext)
    cause: StallCause = StallCause.UNDETERMINED
    retx_cause: RetxCause | None = None
    double_kind: DoubleKind | None = None
    #: ca_state when a tail retransmission stall began (Table 7).
    tail_state: CaState | None = None
    #: Relative position of the stall in the flow [0, 1] (Fig. 7a/10a).
    position: float = 0.0

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    def describe(self) -> str:
        parts = [
            f"stall {self.duration * 1000:.0f}ms at t={self.start_time:.3f}",
            f"cause={self.cause.value}",
        ]
        if self.retx_cause is not None:
            parts.append(f"retx={self.retx_cause.value}")
        if self.double_kind is not None:
            parts.append(self.double_kind.value)
        parts.append(f"state={self.context.ca_state.value}")
        parts.append(f"in_flight={self.context.in_flight}")
        return " ".join(parts)
