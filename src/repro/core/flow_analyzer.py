"""Pass 1 of TAPO: replay one flow's trace and extract everything.

The analyzer walks the server-side packet stream of a single flow in
time order, mimicking the server's TCP stack as it goes:

* it reconstructs the retransmission queue (:mod:`.segments`), the
  congestion state machine and a shadow cwnd (:mod:`.state_machine`),
  and the kernel's SRTT/RTO estimators (:mod:`repro.tcp.rto` — the
  *same* code the simulated sender runs);
* it detects stalls — inter-packet gaps exceeding
  ``min(2*SRTT, RTO)`` — and snapshots the Table 2 parameters at each
  stall's start;
* it records the per-ACK in-flight series (Fig. 11), per-flow RTT
  samples and per-timeout RTO values (Fig. 1), and the client's
  initial receive window (Fig. 6 / Table 4).

Classification of the collected stalls is pass 2
(:mod:`.classifier`), which needs whole-flow lookahead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import AnalysisConfig
from ..packet.flow import Direction, FlowTrace
from ..packet.packet import PacketRecord
from ..packet.seqnum import seq_before, seq_leq
from ..tcp.constants import ts_to_time
from ..tcp.rto import RTOEstimator
from .segments import AnalyzedSegment, SegmentTracker
from .state_machine import FAST, PROBE, RTO, CaStateTracker
from .stalls import STALL_TAU, CaState, Stall, StallContext


@dataclass
class FlowAnalysis:
    """Everything TAPO extracts from one flow."""

    flow: FlowTrace
    mss: int = 1448
    init_rwnd: int = 0  # bytes, from the client SYN
    wscale: int = 0
    stalls: list[Stall] = field(default_factory=list)
    rtt_samples: list[float] = field(default_factory=list)
    rto_samples: list[float] = field(default_factory=list)  # at timeouts
    in_flight_on_ack: list[int] = field(default_factory=list)
    zero_window_seen: bool = False
    request_count: int = 0
    data_packets: int = 0
    retransmissions: int = 0
    bytes_out: int = 0
    duration: float = 0.0
    timeouts: int = 0
    fast_retransmits: int = 0
    probe_retransmissions: int = 0
    spurious_retransmissions: int = 0
    final_srtt: float | None = None
    final_rto: float = 0.0
    state_log: list[tuple[float, CaState]] = field(default_factory=list)
    #: Per-ACK inferred kernel variables ``(time, cwnd, srtt, rto)`` —
    #: only populated when the analyzer runs with ``record_series``
    #: (the ``repro-paper trace`` inference-error path).
    kernel_series: list[tuple[float, int, float | None, float]] = field(
        default_factory=list
    )

    @property
    def avg_rtt(self) -> float | None:
        if not self.rtt_samples:
            return None
        return sum(self.rtt_samples) / len(self.rtt_samples)

    @property
    def avg_rto(self) -> float | None:
        if not self.rto_samples:
            return None
        return sum(self.rto_samples) / len(self.rto_samples)

    @property
    def stalled_time(self) -> float:
        return sum(stall.duration for stall in self.stalls)

    @property
    def stall_ratio(self) -> float:
        """Stalled time over flow transmission time (Fig. 3)."""
        if self.duration <= 0:
            return 0.0
        return min(1.0, self.stalled_time / self.duration)

    @property
    def loss_estimate(self) -> float:
        """Retransmitted fraction of data packets (Table 1's pkt loss)."""
        if not self.data_packets:
            return 0.0
        return self.retransmissions / self.data_packets

    @property
    def avg_speed(self) -> float:
        """Bytes per second over the flow lifetime (Table 1)."""
        if self.duration <= 0:
            return 0.0
        return self.bytes_out / self.duration

    @property
    def init_rwnd_mss(self) -> int:
        return self.init_rwnd // self.mss if self.mss else 0


class FlowAnalyzer:
    """Replays one flow; produces a :class:`FlowAnalysis`."""

    def __init__(self, flow: FlowTrace, tau: float = STALL_TAU,
                 init_cwnd: int = 3, record_series: bool = False,
                 config: "AnalysisConfig | None" = None):
        if config is not None:
            tau = config.tau
            init_cwnd = config.init_cwnd
            record_series = config.record_series
        self.flow = flow
        self.tau = tau
        self.record_series = record_series
        self.analysis = FlowAnalysis(flow=flow)
        self.tracker = SegmentTracker()
        self.ca = CaStateTracker(init_cwnd=init_cwnd)
        self.rto_est = RTOEstimator()
        self.rwnd = 0
        self.established = False
        self._synack_time: float | None = None
        self._synack_count = 0
        self._handshake_sampled = False
        self._request_pending = False
        self._response_started = False
        self._bytes_sent = 0
        self._lost_out = 0
        self._last_new_ack_time: float | None = None
        self._last_in_packet_time: float | None = None
        self._counted_recovery_point: int | None = None
        self._prev_time: float | None = None
        self._fed = 0

    # -- public API -------------------------------------------------------
    def run(self) -> FlowAnalysis:
        """Replay the whole flow: feed every packet, then finish."""
        packets = self.flow.packets
        if not packets:
            return self.analysis
        feed = self.feed  # hoist the bound-method lookup out of the loop
        for pkt, direction in packets:
            feed(pkt, direction)
        return self.finish()

    def feed(self, pkt: PacketRecord, direction: Direction) -> None:
        """Process one packet incrementally.

        The analyzer's own state is O(window) — the segment tracker
        and estimators drop segments as they are cumulatively acked —
        so a caller that feeds packets as they arrive (instead of
        materializing the flow first and calling :meth:`run`) holds no
        per-trace state here.  Feeding the whole flow in order then
        calling :meth:`finish` is exactly :meth:`run`.
        """
        timestamp = pkt.timestamp
        prev_time = self._prev_time
        if prev_time is not None and self.established and not pkt.syn:
            # Handshake retransmissions (SYN / SYN+ACK) are not
            # data-transfer stalls; the paper's analysis starts at
            # established connections.
            gap = timestamp - prev_time
            threshold = self.rto_est.stall_threshold(self.tau)
            if gap > threshold:
                self._record_stall(
                    self._fed, pkt, direction, prev_time, threshold
                )
        if direction is Direction.IN:
            self._process_in(pkt)
        else:
            self._process_out(pkt)
        self._prev_time = timestamp
        self._fed += 1

    def finish(self) -> FlowAnalysis:
        """Finalize after the last packet and return the analysis."""
        self._finalize()
        return self.analysis

    # -- stall snapshots -----------------------------------------------------
    def _record_stall(
        self,
        index: int,
        pkt: PacketRecord,
        direction: Direction,
        start_time: float,
        threshold: float,
    ) -> None:
        is_data = pkt.payload_len > 0 or pkt.fin
        is_retrans = (
            direction is Direction.OUT
            and is_data
            and seq_before(pkt.seq, self.tracker.transmitted_max)
        )
        context = self._snapshot_context()
        self.analysis.stalls.append(
            Stall(
                start_time=start_time,
                end_time=pkt.timestamp,
                threshold=threshold,
                cur_pkt_index=index,
                cur_pkt_dir_in=direction is Direction.IN,
                cur_pkt_is_data=is_data,
                cur_pkt_is_retrans=is_retrans,
                cur_pkt_seq=pkt.seq,
                cur_pkt_payload=pkt.payload_len,
                context=context,
            )
        )

    def _snapshot_context(self) -> StallContext:
        tracker = self.tracker
        packets_out = tracker.packets_out
        sacked_out = tracker.sacked_out
        lost_out = self._estimate_lost_out()
        retrans_out = tracker.retrans_out()
        return StallContext(
            ca_state=self.ca.state,
            packets_out=packets_out,
            sacked_out=sacked_out,
            lost_out=lost_out,
            retrans_out=retrans_out,
            holes=tracker.holes(),
            in_flight=max(
                0, packets_out + retrans_out - (sacked_out + lost_out)
            ),
            unsacked_out=packets_out - sacked_out,
            snd_una=tracker.snd_una,
            snd_nxt=tracker.transmitted_max,
            cwnd=self.ca.cwnd,
            rwnd=self.rwnd,
            init_rwnd=self.analysis.init_rwnd,
            mss=self.analysis.mss,
            request_pending=self._request_pending,
            response_started=self._response_started,
            bytes_sent=self._bytes_sent,
        )

    def _estimate_lost_out(self) -> int:
        """Mimic the kernel's loss marking for the current instant."""
        if self.ca.state == CaState.LOSS:
            return len(self.tracker.outstanding_unsacked())
        if self.ca.state != CaState.RECOVERY:
            return 0
        sacked_above = self.tracker.sacked_out
        lost = 0
        for segment in self.tracker.outstanding():
            if segment.sacked:
                sacked_above -= 1
                continue
            if sacked_above >= self.ca.dup_thresh:
                lost += 1
        return lost

    # -- packet processing ---------------------------------------------------
    def _process(self, pkt: PacketRecord, direction: Direction) -> None:
        if direction is Direction.IN:
            self._process_in(pkt)
        else:
            self._process_out(pkt)

    def _process_in(self, pkt: PacketRecord) -> None:
        if pkt.syn:
            # Client SYN: initial receive window and options.
            self.analysis.wscale = pkt.options.wscale or 0
            self.analysis.init_rwnd = pkt.window << self.analysis.wscale
            if pkt.options.mss:
                self.analysis.mss = min(self.analysis.mss, pkt.options.mss)
            self.rwnd = self.analysis.init_rwnd
            return
        # Window update (scaled after the handshake).
        self.rwnd = pkt.window << self.analysis.wscale
        if self.rwnd < self.analysis.mss and self.analysis.bytes_out > 0:
            # The advertised window cannot hold one full segment: the
            # sender is (or is about to be) blocked on the receiver.
            self.analysis.zero_window_seen = True

        # Handshake RTT sample (SYN+ACK -> first ACK), Karn-guarded.
        if (
            not self._handshake_sampled
            and pkt.has_ack
            and self._synack_time is not None
        ):
            self._handshake_sampled = True
            if self._synack_count == 1:
                rtt = pkt.timestamp - self._synack_time
                if rtt > 0:
                    self.rto_est.observe(rtt, now=pkt.timestamp)
                    self.analysis.rtt_samples.append(rtt)

        if pkt.payload_len > 0:
            # Client request data.
            self.analysis.request_count += 1 if not self._request_pending else 0
            self._request_pending = True
            self._response_started = False

        if not pkt.has_ack:
            return
        snd_una_before = self.tracker.snd_una
        newly_sacked, dsack = self.tracker.apply_sack(
            pkt.sack_blocks, pkt.ack, pkt.timestamp
        )
        if dsack:
            self.analysis.spurious_retransmissions += 1
        acked_segments = self.tracker.apply_ack(pkt.ack, pkt.timestamp)
        new_ack = bool(acked_segments) or seq_before(snd_una_before, pkt.ack)
        self._last_in_packet_time = pkt.timestamp
        if new_ack:
            self._last_new_ack_time = pkt.timestamp
            self.rto_est.on_ack()
        if new_ack or newly_sacked:
            self._sample_rtts(pkt, acked_segments, newly_sacked)
        is_dupack = (
            pkt.is_pure_ack
            and pkt.ack == snd_una_before
            and self.tracker.packets_out > 0
            and not new_ack
        )
        self.ca.on_ack(
            pkt.timestamp,
            self.tracker,
            new_ack=new_ack,
            acked_segments=len(acked_segments),
            is_dupack=is_dupack,
            dsack=dsack,
        )
        # Per-ACK in-flight sample (Fig. 11), Equation (1).
        packets_out = self.tracker.packets_out
        sacked_out = self.tracker.sacked_out
        lost_out = self._estimate_lost_out()
        retrans_out = self.tracker.retrans_out()
        self.analysis.in_flight_on_ack.append(
            max(0, packets_out + retrans_out - (sacked_out + lost_out))
        )
        if self.record_series:
            # Inferred counterpart of the sender's per-ACK ``vars``
            # flight-recorder snapshot, sampled at the same capture
            # timestamps (the tap stamps an arriving ACK with the
            # simulation time at which the sender processes it).
            self.analysis.kernel_series.append(
                (pkt.timestamp, self.ca.cwnd, self.rto_est.srtt,
                 self.rto_est.rto)
            )

    def _sample_rtts(self, pkt, acked_segments, newly_sacked) -> None:
        """RTT samples for an ACK carrying new information, exactly as
        the mimicked sender computes them.

        Timestamps (``now - TSecr``) when the trace carries them;
        otherwise sequence-based samples under Karn's rule, taken at
        SACK time for SACKed segments and skipping stale cumulative
        ACKs of segments SACKed earlier.
        """
        now = pkt.timestamp
        ts_ecr = pkt.options.ts_ecr
        if ts_ecr:
            rtt = now - ts_to_time(ts_ecr)
            if rtt > 0:
                self.rto_est.observe(rtt, now=now)
                self.analysis.rtt_samples.append(rtt)
            return
        # FLAG_RETRANS_DATA_ACKED (see the sender): a batch containing
        # a retransmitted segment yields no sequence-based samples.
        if not any(seg.retransmitted for seg in acked_segments):
            for segment in acked_segments:
                if segment.sacked or not segment.tx_times:
                    continue
                rtt = segment.acked_at - segment.tx_times[0]
                if rtt > 0:
                    self.rto_est.observe(rtt, now=now)
                    self.analysis.rtt_samples.append(rtt)
        for segment in newly_sacked:
            if segment.retrans_count == 0 and segment.tx_times:
                rtt = now - segment.tx_times[0]
                if rtt > 0:
                    self.rto_est.observe(rtt, now=now)
                    self.analysis.rtt_samples.append(rtt)

    def _process_out(self, pkt: PacketRecord) -> None:
        if pkt.syn:
            # SYN+ACK from the server.
            self.tracker.init_seq(pkt.seq)
            self.established = True
            self._synack_time = pkt.timestamp
            self._synack_count += 1
            return
        is_data = pkt.payload_len > 0 or pkt.fin
        if not is_data:
            return
        # Zero-window probe: one already-acked byte.
        if pkt.payload_len == 1 and seq_before(
            pkt.seq, self.tracker.snd_una
        ) and seq_leq(pkt.end_seq, self.tracker.snd_una):
            return
        segment, is_retrans = self.tracker.record_transmission(
            pkt, pkt.timestamp
        )
        self.analysis.data_packets += 1
        if is_retrans:
            self.analysis.retransmissions += 1
            kind = self.ca.classify_retransmission(
                segment,
                pkt.timestamp,
                self.tracker,
                rto=self.rto_est.rto,
                srtt=self.rto_est.srtt,
                last_new_ack=self._last_new_ack_time,
                last_in_packet=self._last_in_packet_time,
            )
            if kind == RTO:
                # Count timer *expiries*, not go-back-N continuations:
                # a new timeout either enters Loss or re-fires for the
                # head after another RTO-scale silence (backoff).
                previous_tx = (
                    segment.tx_times[-2]
                    if len(segment.tx_times) >= 2
                    else None
                )
                is_head = segment.seq == self.tracker.snd_una
                new_expiry = self.ca.state != CaState.LOSS or (
                    is_head
                    and segment.rto_retrans_times  # backoff re-expiry
                    and previous_tx is not None
                    and pkt.timestamp - previous_tx
                    >= 0.85 * self.rto_est.rto
                )
                if new_expiry:
                    self.analysis.rto_samples.append(self.rto_est.rto)
                    self.analysis.timeouts += 1
                    self.rto_est.on_timeout()
                segment.rto_retrans_times.append(pkt.timestamp)
            elif kind == FAST:
                # The kernel performs one fast retransmit per Recovery
                # episode; follow-up hole repairs are recovery
                # retransmissions, not new fast-retransmit events.  The
                # shadow machine enters Recovery on the triggering ACK,
                # so episodes are keyed by its recovery point.
                if self._counted_recovery_point != self.ca.high_seq:
                    self.analysis.fast_retransmits += 1
                    self._counted_recovery_point = self.ca.high_seq
                segment.fast_retrans_times.append(pkt.timestamp)
            else:
                self.analysis.probe_retransmissions += 1
                segment.probe_retrans_times.append(pkt.timestamp)
            self.ca.on_retransmission(kind, pkt.timestamp, self.tracker)
        else:
            self.analysis.bytes_out += pkt.payload_len
            self._bytes_sent += pkt.payload_len
            if self._request_pending:
                self._request_pending = False
            self._response_started = True

    def _finalize(self) -> None:
        self.analysis.duration = self.flow.duration
        self.analysis.final_srtt = self.rto_est.srtt
        self.analysis.final_rto = self.rto_est.rto
        self.analysis.state_log = list(self.ca.state_log)
