"""Aggregation of per-flow analyses into the paper's tables and figures.

A :class:`ServiceReport` wraps all analyzed flows of one service and
exposes one method per table/figure of the paper's evaluation:

=============================  ==========================================
method                         paper content
=============================  ==========================================
``table1_row``                 Table 1 flow-level statistics
``rtt_values`` / ``rto_values``  Fig. 1a per-flow RTT and RTO CDFs
``rto_over_rtt_values``        Fig. 1b RTO/RTT
``stall_ratio_values``         Fig. 3 stalled/transmission time
``cause_breakdown``            Table 3 stall causes (volume and time)
``init_rwnd_values``           Fig. 6 initial receive windows
``zero_rwnd_prob_by_init``     Table 4 zero-window probability
``retx_breakdown``             Table 5 retransmission-stall breakdown
``double_positions`` etc.      Fig. 7 double-retransmission context
``double_kind_shares``         Table 6 f-double vs t-double
``tail_positions`` etc.        Fig. 10 tail-retransmission context
``tail_state_shares``          Table 7 Open vs Recovery tails
``in_flight_values``           Fig. 11 per-ACK in-flight CDF
``continuous_loss_in_flights`` Fig. 12 in-flight at continuous loss
=============================  ==========================================
"""

from __future__ import annotations

import enum
import json
from collections import Counter
from collections.abc import Iterable
from dataclasses import asdict, dataclass, field

from ..errors import SkippedFlow
from .flow_analyzer import FlowAnalysis
from .stalls import CaState, DoubleKind, RetxCause, StallCause


def _plain(pairs) -> dict:
    """``asdict`` dict factory: enums become their values."""
    return {
        key: value.value if isinstance(value, enum.Enum) else value
        for key, value in pairs
    }


def cdf_points(values: list[float]) -> list[tuple[float, float]]:
    """Empirical CDF as (value, fraction <= value) pairs."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    return [(value, (index + 1) / n) for index, value in enumerate(ordered)]


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolation percentile, q in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty list")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * q / 100
    low = int(pos)
    high = min(low + 1, len(ordered) - 1)
    frac = pos - low
    # lerp anchored at ordered[low]: the naive weighted sum
    # a*(1-frac) + b*frac underflows to 0.0 for denormal inputs.
    value = ordered[low] + (ordered[high] - ordered[low]) * frac
    return min(max(value, ordered[low]), ordered[high])


@dataclass
class BreakdownEntry:
    """Volume and time share of one stall category (Table 3/5 cells)."""

    count: int = 0
    time: float = 0.0
    volume_share: float = 0.0
    time_share: float = 0.0


@dataclass
class ServiceReport:
    """All analyzed flows of one service.

    ``skipped`` holds the :class:`~repro.errors.SkippedFlow` records of
    flows quarantined under a tolerant error budget — dirty input never
    silently shrinks a report; every missing flow is accounted for
    here.  Aggregate methods operate on ``flows`` only.
    """

    service: str
    flows: list[FlowAnalysis] = field(default_factory=list)
    skipped: list[SkippedFlow] = field(default_factory=list)
    #: Merge provenance: contributing source label -> flows it brought
    #: (e.g. ``{"shard-0": 41, "shard-1": 38}`` for a cluster merge).
    #: Bookkeeping only — deliberately excluded from :meth:`to_dict` so
    #: a merged report stays byte-identical to a single-pass report
    #: over the same flows regardless of how it was assembled.
    provenance: dict = field(default_factory=dict)

    def add(self, analysis: FlowAnalysis) -> None:
        self.flows.append(analysis)

    def coverage(self) -> float:
        """Fraction of demuxed flows that produced an analysis."""
        total = len(self.flows) + len(self.skipped)
        return len(self.flows) / total if total else 1.0

    # -- combination ------------------------------------------------------
    def merge(self, other: "ServiceReport") -> "ServiceReport":
        """Fold ``other``'s flows into this report (in place).

        Every aggregate this class computes is a fold over
        ``self.flows``, so merging is associative: partial reports
        built from disjoint chunks of a stream combine into exactly
        the report a single pass would have produced.
        """
        self.flows.extend(other.flows)
        self.skipped.extend(other.skipped)
        if other.provenance:
            for label, count in other.provenance.items():
                self.provenance[label] = (
                    self.provenance.get(label, 0) + count
                )
        return self

    def tag_provenance(self, label: str) -> "ServiceReport":
        """Stamp this (partial) report as coming from ``label``.

        Replaces any existing provenance: a partial report is *from*
        its source; merged totals accumulate per-source counts via
        :meth:`merge`.
        """
        self.provenance = {label: len(self.flows) + len(self.skipped)}
        return self

    def canonical_sort(self) -> "ServiceReport":
        """Order flows and skip records deterministically (in place).

        Flows sort by ``(first packet time, flow key)`` and skip
        records by ``(flow key, error type)``.  Streamed, sharded, and
        batch pipelines hand flows over in pipeline-dependent orders
        (completion order, shard-merge order, first-time order with
        insertion-order ties); after canonical sorting, any two
        pipelines that analyzed the same flows serialize to the same
        :meth:`to_json` bytes — the cluster's merge-parity gate.
        """
        self.flows.sort(key=lambda a: (a.flow.first_time, a.flow.key))
        self.skipped.sort(key=lambda s: (s.key, s.error_type))
        return self

    @classmethod
    def merged(
        cls, reports: "Iterable[ServiceReport]", service: str | None = None
    ) -> "ServiceReport":
        """Combine partial reports (e.g. one per streamed chunk)."""
        total: ServiceReport | None = None
        for report in reports:
            if total is None:
                total = cls(service=service or report.service)
            total.merge(report)
        return total if total is not None else cls(service=service or "")

    # -- Table 1 ----------------------------------------------------------
    def table1_row(self) -> dict[str, float]:
        flows = [f for f in self.flows if f.data_packets > 0]
        n = len(flows)
        if n == 0:
            return {
                "flows": 0, "avg_speed": 0.0, "avg_flow_size": 0.0,
                "pkt_loss": 0.0, "avg_rtt": 0.0, "avg_rto": 0.0,
            }
        speeds = [f.avg_speed for f in flows if f.duration > 0]
        rtts = [f.avg_rtt for f in flows if f.avg_rtt is not None]
        rtos = [f.avg_rto for f in flows if f.avg_rto is not None]
        total_retx = sum(f.retransmissions for f in flows)
        total_data = sum(f.data_packets for f in flows)
        return {
            "flows": n,
            "avg_speed": sum(speeds) / max(1, len(speeds)),
            "avg_flow_size": sum(f.bytes_out for f in flows) / n,
            "pkt_loss": total_retx / max(1, total_data),
            "avg_rtt": sum(rtts) / max(1, len(rtts)),
            "avg_rto": sum(rtos) / max(1, len(rtos)),
        }

    # -- Fig. 1 -------------------------------------------------------------
    def rtt_values(self) -> list[float]:
        return [f.avg_rtt for f in self.flows if f.avg_rtt is not None]

    def rto_values(self) -> list[float]:
        return [f.avg_rto for f in self.flows if f.avg_rto is not None]

    def rto_over_rtt_values(self) -> list[float]:
        out = []
        for flow in self.flows:
            if flow.avg_rtt and flow.avg_rto:
                out.append(flow.avg_rto / flow.avg_rtt)
        return out

    # -- Fig. 3 ---------------------------------------------------------------
    def stall_ratio_values(self) -> list[float]:
        return [f.stall_ratio for f in self.flows if f.duration > 0]

    def flows_with_stalls(self) -> int:
        return sum(1 for f in self.flows if f.stalls)

    def total_stalls(self) -> int:
        return sum(len(f.stalls) for f in self.flows)

    # -- Table 3 ----------------------------------------------------------------
    def cause_breakdown(self) -> dict[StallCause, BreakdownEntry]:
        counts: Counter = Counter()
        times: Counter = Counter()
        for flow in self.flows:
            for stall in flow.stalls:
                counts[stall.cause] += 1
                times[stall.cause] += stall.duration
        total_count = sum(counts.values())
        total_time = sum(times.values())
        result: dict[StallCause, BreakdownEntry] = {}
        for cause in StallCause:
            entry = BreakdownEntry(
                count=counts.get(cause, 0), time=times.get(cause, 0.0)
            )
            if total_count:
                entry.volume_share = entry.count / total_count
            if total_time:
                entry.time_share = entry.time / total_time
            result[cause] = entry
        return result

    def category_breakdown(self) -> dict[str, BreakdownEntry]:
        """Server / client / network shares (Table 3 row groups)."""
        by_cause = self.cause_breakdown()
        result: dict[str, BreakdownEntry] = {}
        for cause, entry in by_cause.items():
            bucket = result.setdefault(cause.category, BreakdownEntry())
            bucket.count += entry.count
            bucket.time += entry.time
            bucket.volume_share += entry.volume_share
            bucket.time_share += entry.time_share
        return result

    # -- Fig. 6 / Table 4 -----------------------------------------------------
    def init_rwnd_values(self) -> list[int]:
        """Initial receive window per flow, in MSS units."""
        return [
            f.init_rwnd_mss for f in self.flows if f.init_rwnd > 0
        ]

    def zero_rwnd_prob_by_init(
        self, bins: list[int]
    ) -> dict[int, tuple[float, int]]:
        """P(flow sees a zero window) per init-rwnd bin (Table 4).

        ``bins`` are upper edges in MSS; returns {edge: (prob, n)}.
        """
        result: dict[int, tuple[float, int]] = {}
        edges = sorted(bins)
        for index, edge in enumerate(edges):
            low = edges[index - 1] if index else 0
            members = [
                f
                for f in self.flows
                if f.init_rwnd > 0 and low < f.init_rwnd_mss <= edge
            ]
            if not members:
                result[edge] = (0.0, 0)
                continue
            hit = sum(1 for f in members if f.zero_window_seen)
            result[edge] = (hit / len(members), len(members))
        return result

    # -- Table 5 -------------------------------------------------------------
    def retx_breakdown(self) -> dict[RetxCause, BreakdownEntry]:
        counts: Counter = Counter()
        times: Counter = Counter()
        for stall in self._retx_stalls():
            counts[stall.retx_cause] += 1
            times[stall.retx_cause] += stall.duration
        total_count = sum(counts.values())
        total_time = sum(times.values())
        result: dict[RetxCause, BreakdownEntry] = {}
        for cause in RetxCause:
            entry = BreakdownEntry(
                count=counts.get(cause, 0), time=times.get(cause, 0.0)
            )
            if total_count:
                entry.volume_share = entry.count / total_count
            if total_time:
                entry.time_share = entry.time / total_time
            result[cause] = entry
        return result

    def _retx_stalls(self):
        for flow in self.flows:
            for stall in flow.stalls:
                if stall.cause == StallCause.RETRANSMISSION:
                    yield stall

    def _retx_stalls_of(self, cause: RetxCause):
        for stall in self._retx_stalls():
            if stall.retx_cause == cause:
                yield stall

    # -- Fig. 7 / Table 6 -------------------------------------------------------
    def double_positions(self) -> list[float]:
        return [s.position for s in self._retx_stalls_of(RetxCause.DOUBLE)]

    def double_in_flights(self) -> list[int]:
        return [
            s.context.unsacked_out
            for s in self._retx_stalls_of(RetxCause.DOUBLE)
        ]

    def double_kind_shares(self) -> dict[DoubleKind, float]:
        times: Counter = Counter()
        for stall in self._retx_stalls_of(RetxCause.DOUBLE):
            if stall.double_kind is not None:
                times[stall.double_kind] += stall.duration
        total = sum(times.values())
        return {
            kind: (times.get(kind, 0.0) / total if total else 0.0)
            for kind in DoubleKind
        }

    # -- Fig. 10 / Table 7 --------------------------------------------------------
    def tail_positions(self) -> list[float]:
        return [s.position for s in self._retx_stalls_of(RetxCause.TAIL)]

    def tail_in_flights(self) -> list[int]:
        return [
            s.context.unsacked_out
            for s in self._retx_stalls_of(RetxCause.TAIL)
        ]

    def tail_state_shares(self) -> dict[CaState, float]:
        times: Counter = Counter()
        for stall in self._retx_stalls_of(RetxCause.TAIL):
            if stall.tail_state is not None:
                times[stall.tail_state] += stall.duration
        total = sum(times.values())
        return {
            state: (times.get(state, 0.0) / total if total else 0.0)
            for state in (CaState.OPEN, CaState.RECOVERY)
        }

    # -- Fig. 11 / Fig. 12 ----------------------------------------------------------
    def in_flight_values(self) -> list[int]:
        out: list[int] = []
        for flow in self.flows:
            out.extend(flow.in_flight_on_ack)
        return out

    def continuous_loss_in_flights(self) -> list[int]:
        return [
            s.context.unsacked_out
            for s in self._retx_stalls_of(RetxCause.CONTINUOUS_LOSS)
        ]

    # -- canonical serialization ------------------------------------------
    @staticmethod
    def _flow_dict(analysis: FlowAnalysis) -> dict:
        flow = analysis.flow
        return {
            "key": [
                flow.key.ip_a, flow.key.port_a,
                flow.key.ip_b, flow.key.port_b,
            ],
            "server": list(flow.server),
            "client": list(flow.client),
            # len() answers from the column store on lazy traces, so
            # serializing a fast-path flow never materializes objects.
            "packets": len(flow.packets),
            "mss": analysis.mss,
            "init_rwnd": analysis.init_rwnd,
            "wscale": analysis.wscale,
            "stalls": [
                asdict(stall, dict_factory=_plain)
                for stall in analysis.stalls
            ],
            "rtt_samples": list(analysis.rtt_samples),
            "rto_samples": list(analysis.rto_samples),
            "in_flight_on_ack": list(analysis.in_flight_on_ack),
            "zero_window_seen": analysis.zero_window_seen,
            "request_count": analysis.request_count,
            "data_packets": analysis.data_packets,
            "retransmissions": analysis.retransmissions,
            "bytes_out": analysis.bytes_out,
            "duration": analysis.duration,
            "timeouts": analysis.timeouts,
            "fast_retransmits": analysis.fast_retransmits,
            "probe_retransmissions": analysis.probe_retransmissions,
            "spurious_retransmissions": analysis.spurious_retransmissions,
            "final_srtt": analysis.final_srtt,
            "final_rto": analysis.final_rto,
            "state_log": [
                [when, state.value] for when, state in analysis.state_log
            ],
            "kernel_series": [list(row) for row in analysis.kernel_series],
        }

    def to_dict(self) -> dict:
        """Plain-data view of the whole report.

        Every field the analyzer produces appears here (not just the
        aggregates), so two pipelines that claim to be equivalent can
        be compared byte-for-byte via :meth:`to_json`.
        """
        return {
            "service": self.service,
            "flows": [self._flow_dict(a) for a in self.flows],
            "skipped": [
                {
                    "key": [
                        s.key.ip_a, s.key.port_a, s.key.ip_b, s.key.port_b,
                    ],
                    "error_type": s.error_type,
                    "error": s.error,
                    "packets": s.packets,
                    "packet_index": s.packet_index,
                    "last_time": s.last_time,
                }
                for s in self.skipped
            ],
            "coverage": self.coverage(),
            "flows_with_stalls": self.flows_with_stalls(),
            "total_stalls": self.total_stalls(),
            "table1_row": self.table1_row(),
            "cause_breakdown": {
                cause.value: asdict(entry)
                for cause, entry in self.cause_breakdown().items()
            },
            "retx_breakdown": {
                cause.value: asdict(entry)
                for cause, entry in self.retx_breakdown().items()
            },
        }

    def to_json(self) -> str:
        """Canonical JSON — sorted keys, no whitespace variance.

        Equal reports serialize to equal bytes, which is what the
        columnar↔object parity gate diffs.
        """
        return json.dumps(self.to_dict(), sort_keys=True)

    # -- longitudinal summary ---------------------------------------------
    def summary_metrics(self) -> dict:
        """Flat scalar summary for the longitudinal results store.

        Unlike :meth:`to_dict` (the full per-flow record), this is the
        handful of numbers worth trending across runs: flow counts,
        coverage, Table 1 aggregates, stall totals, plus a ``"causes"``
        sub-dict of per-cause stall *time shares* (Table 3's
        time column) keyed by cause value.
        """
        table1 = self.table1_row()
        ratios = self.stall_ratio_values()
        summary: dict = {
            "flows": len(self.flows),
            "flows_skipped": len(self.skipped),
            "coverage": self.coverage(),
            "flows_with_stalls": self.flows_with_stalls(),
            "total_stalls": self.total_stalls(),
            "avg_speed": table1["avg_speed"],
            "pkt_loss": table1["pkt_loss"],
            "avg_rtt": table1["avg_rtt"],
            "avg_rto": table1["avg_rto"],
            "mean_stall_ratio": (
                sum(ratios) / len(ratios) if ratios else 0.0
            ),
        }
        summary["causes"] = {
            cause.value: entry.time_share
            for cause, entry in self.cause_breakdown().items()
        }
        return summary
