"""Reconstruction of the sender's congestion-avoidance state machine.

TAPO cannot see kernel state, so it *mimics* the stack (Sec. 3.3):
it replays the observed ACK stream and retransmissions through the
same Open / Disorder / Recovery / Loss transition rules the 2.6.32
sender uses (Fig. 4), and keeps a shadow congestion window that
follows slow start, congestion avoidance, rate-halving Recovery and
the cwnd := 1 reset of the Loss state.

Retransmission triggers are inferred from timing and duplicate-ACK
context: enough dupacks -> fast retransmit; a gap close to the
estimated RTO since the segment's previous transmission -> timeout;
a gap of about two RTTs with few dupacks -> probe (TLP / S-RTO
traces).
"""

from __future__ import annotations

from dataclasses import dataclass

from .segments import AnalyzedSegment, SegmentTracker
from .stalls import CaState

#: Fraction of the estimated RTO above which a silent gap before a
#: retransmission is attributed to the retransmission timer.
RTO_FRACTION = 0.85

#: Multiple of SRTT above which a gap suggests a probe timer (2*RTT
#: in both TLP and S-RTO) rather than a fast retransmit.
PROBE_FRACTION = 1.7

FAST = "fast"
RTO = "rto"
PROBE = "probe"


@dataclass
class ShadowWindow:
    """Mimicked congestion window (segments).

    The true server may run CUBIC; the shadow window follows Reno-style
    growth, which is sufficient for the classifier's only use of cwnd —
    deciding whether a small in-flight size was cwnd- or rwnd-limited —
    and is the approximation a deployed passive tool has to make.
    """

    cwnd: int = 3
    ssthresh: int = 1 << 30
    _avoid_count: int = 0
    _halve_count: int = 0

    def on_new_ack(self, acked_segments: int, in_recovery: bool, in_loss: bool) -> None:
        if in_recovery:
            # Rate halving: shed one segment every second ACK.
            self._halve_count += 1
            if self._halve_count >= 2:
                self._halve_count = 0
                if self.cwnd > self.ssthresh:
                    self.cwnd -= 1
            return
        if self.cwnd < self.ssthresh:
            self.cwnd += acked_segments
            return
        self._avoid_count += acked_segments
        if self._avoid_count >= self.cwnd:
            self._avoid_count -= self.cwnd
            self.cwnd += 1

    def on_enter_recovery(self) -> None:
        self.ssthresh = max(self.cwnd // 2, 2)
        self._halve_count = 0

    def on_exit_recovery(self) -> None:
        self.cwnd = max(min(self.cwnd, self.ssthresh), 2)

    def on_rto(self) -> None:
        self.ssthresh = max(self.cwnd // 2, 2)
        self.cwnd = 1


class CaStateTracker:
    """Shadow state machine for one flow."""

    def __init__(self, init_cwnd: int = 3, dup_thresh: int = 3):
        self.state = CaState.OPEN
        self.dup_thresh = dup_thresh
        self.dup_acks = 0
        self.high_seq: int | None = None
        self.window = ShadowWindow(cwnd=init_cwnd)
        self.state_log: list[tuple[float, CaState]] = []

    @property
    def cwnd(self) -> int:
        return self.window.cwnd

    def _set_state(self, state: CaState, now: float) -> None:
        if state != self.state:
            self.state = state
            self.state_log.append((now, state))

    # -- ACK-driven transitions ------------------------------------------
    def on_ack(
        self,
        now: float,
        tracker: SegmentTracker,
        new_ack: bool,
        acked_segments: int,
        is_dupack: bool,
        dsack: bool,
    ) -> None:
        if dsack and self.dup_thresh < 10:
            # DSACK reveals reordering mistaken for loss: raise dupthres
            # like tcp_update_reordering.
            self.dup_thresh += 1
        if new_ack:
            self.dup_acks = 0
        elif is_dupack:
            self.dup_acks += 1
        dup_signal = max(self.dup_acks, tracker.sacked_out)

        if self.state in (CaState.OPEN, CaState.DISORDER):
            if dup_signal >= self.dup_thresh:
                self.window.on_enter_recovery()
                self.high_seq = tracker.transmitted_max
                self._set_state(CaState.RECOVERY, now)
            elif dup_signal > 0:
                self._set_state(CaState.DISORDER, now)
            else:
                self._set_state(CaState.OPEN, now)
                if new_ack:
                    self.window.on_new_ack(acked_segments, False, False)
        elif self.state == CaState.RECOVERY:
            self.window.on_new_ack(acked_segments, True, False)
            if new_ack and self._past_high_seq(tracker):
                self.window.on_exit_recovery()
                self.high_seq = None
                self._set_state(CaState.OPEN, now)
        elif self.state == CaState.LOSS:
            if new_ack:
                self.window.on_new_ack(acked_segments, False, True)
                if self._past_high_seq(tracker):
                    self.high_seq = None
                    self._set_state(CaState.OPEN, now)

    def _past_high_seq(self, tracker: SegmentTracker) -> bool:
        if self.high_seq is None:
            return True
        diff = (tracker.snd_una - self.high_seq) % (1 << 32)
        return diff < (1 << 31)

    # -- retransmission-driven transitions ----------------------------------
    def classify_retransmission(
        self,
        segment: AnalyzedSegment,
        now: float,
        tracker: SegmentTracker,
        rto: float,
        srtt: float | None,
        last_new_ack: float | None = None,
        last_in_packet: float | None = None,
    ) -> str:
        """Infer what triggered this retransmission: fast / rto / probe.

        A timeout retransmission (a) retransmits the *head* of the
        window — ``snd_una`` — and (b) follows a silence on the order
        of the RTO since the retransmission timer was last restarted
        (the later of the segment's previous transmission and the last
        ACK of new data).  Recovery retransmissions of non-head
        segments paced by returning dupacks must not be mistaken for
        timeouts, however long the window kept them queued.
        """
        previous_tx = (
            segment.tx_times[-2] if len(segment.tx_times) >= 2 else None
        )
        timer_base = previous_tx if previous_tx is not None else now
        if last_new_ack is not None:
            timer_base = max(timer_base, last_new_ack)
        gap = now - timer_base
        is_head = segment.seq == tracker.snd_una
        is_tail_seg = segment.end_seq == tracker.transmitted_max

        if self.state == CaState.LOSS:
            # Go-back-N continuation, or a fresh backoff timeout.
            return RTO
        dup_signal = max(self.dup_acks, tracker.sacked_out)
        if not is_head:
            # Only TLP probes retransmit the tail without a timeout.
            if (
                is_tail_seg
                and srtt is not None
                and dup_signal < self.dup_thresh
                and gap >= PROBE_FRACTION * srtt
                and gap < RTO_FRACTION * rto
            ):
                return PROBE
            return FAST
        if gap >= RTO_FRACTION * rto:
            # Head retransmitted after an RTO-scale silence...
            quiet_since = (
                now - last_in_packet if last_in_packet is not None else gap
            )
            if dup_signal >= self.dup_thresh and quiet_since < RTO_FRACTION * rto:
                # ...but dupacks were still flowing: fast retransmit.
                return FAST
            return RTO
        if dup_signal >= self.dup_thresh:
            return FAST
        if srtt is not None and gap >= PROBE_FRACTION * srtt:
            return PROBE
        return FAST

    def on_retransmission(self, kind: str, now: float, tracker: SegmentTracker) -> None:
        """Apply the state effect of an observed retransmission."""
        if kind == RTO:
            if self.state != CaState.LOSS:
                self.window.on_rto()
                self.high_seq = tracker.transmitted_max
                self._set_state(CaState.LOSS, now)
            else:
                # Repeated timeout within Loss: window already 1.
                self.window.cwnd = 1
        elif kind == FAST:
            if self.state not in (CaState.RECOVERY, CaState.LOSS):
                self.window.on_enter_recovery()
                self.high_seq = tracker.transmitted_max
                self._set_state(CaState.RECOVERY, now)
        # PROBE retransmissions do not change the native state machine
        # (TLP) — S-RTO's Recovery entry shows up through later ACKs.
