"""Columnar flow demux and the clean-flow fast replay.

This is the analysis half of the zero-copy columnar path
(:mod:`repro.packet.columnar` is the decode half).  Batches of decoded
columns flow through :class:`ColumnarStreamDemuxer`, which mirrors
:class:`repro.packet.flow.StreamDemuxer` decision for decision —
server identification, eviction order, :class:`StreamStats`
accounting — but keys flows by packed integers and buffers per-flow
*columns* instead of per-packet objects.  Completed flows come out as
:class:`LazyFlowTrace` objects: real :class:`FlowTrace`\\ s whose
packet list materializes only if someone actually needs the objects.

:func:`fast_replay_flow` is the first-pass screen.  It replays a
flow's columns through the same arithmetic the object
:class:`~repro.core.flow_analyzer.FlowAnalyzer` performs — including a
real :class:`~repro.tcp.rto.RTOEstimator` — for as long as the flow
stays *clean*: no stall (``gap > min(tau*SRTT, RTO)``), no SACK
blocks, no duplicate ACKs, no retransmitted or out-of-order data.  A
clean flow never leaves the ``Open`` congestion state and its
:class:`~repro.core.flow_analyzer.FlowAnalysis` is reproduced exactly
without materializing one packet object.  The moment any of those
conditions trips, the replay *bails*: it returns ``None``, the caller
materializes the packets, and the unmodified object pipeline — the
oracle — analyzes the flow.  Reports are therefore byte-identical
with the fast path on or off; only the work per clean flow changes.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Iterator

from ..config import AnalysisConfig
from ..packet.columnar import (
    OPT_ODD,
    OPT_TS,
    _U32,
    _U32_ITEMSIZE,
    _np,
    PacketColumns,
)
from ..packet.flow import (
    Direction,
    FlowKey,
    FlowTrace,
    ServerPredicate,
    StreamStats,
)
from ..packet.headers import FLAG_ACK, FLAG_FIN, FLAG_RST, FLAG_SYN
from ..packet.options import TCPOptions
from ..packet.packet import PacketRecord
from ..packet.seqnum import seq_after, seq_before, seq_leq
from ..tcp.constants import ts_to_time
from ..tcp.rto import RTOEstimator
from .flow_analyzer import FlowAnalysis

#: One full 32-bit sequence space.  A flow that consumes this much is
#: about to collide new sequence numbers with recorded segment starts,
#: where the object tracker reuses segment state; such flows take the
#: object path.
_SEQ_SPACE = 1 << 32

_FIN_OR_RST = FLAG_FIN | FLAG_RST


def _endpoint(packed: int) -> tuple[int, int]:
    """Unpack a 48-bit ``(ip << 16) | port`` endpoint."""
    return packed >> 16, packed & 0xFFFF


class _FlowStore:
    """Per-flow packet buffer as compact parallel arrays.

    Rows are appended in capture order; ``src_pk`` keeps the packed
    source endpoint so direction is derivable once the server is
    known (which, for pending flows, is only at resolution time).
    When every appended row came from a batch that kept its source
    :class:`PacketRecord` objects, ``records`` preserves them so
    materialization returns the *original* objects.
    """

    __slots__ = (
        "pk_a", "pk_b", "server_pk",
        "times", "src_pk", "seq", "ack", "flags", "window",
        "payload", "ts_val", "ts_ecr", "optbits", "odd", "records",
    )

    def __init__(self, pk_a: int, pk_b: int):
        self.pk_a = pk_a
        self.pk_b = pk_b
        self.server_pk: int | None = None
        self.times = array("d")
        self.src_pk = array("q")
        self.seq = array(_U32)
        self.ack = array(_U32)
        self.flags = array("B")
        self.window = array("H")
        self.payload = array(_U32)
        self.ts_val = array(_U32)
        self.ts_ecr = array(_U32)
        self.optbits = array("B")
        self.odd: dict[int, TCPOptions] = {}
        self.records: list[PacketRecord] | None = []

    def __len__(self) -> int:
        return len(self.times)

    def append(
        self, t, src, seq, ack, flags, window, payload,
        ts_val, ts_ecr, optbits, options, record,
    ) -> None:
        if optbits & OPT_ODD:
            self.odd[len(self.times)] = options
        self.times.append(t)
        self.src_pk.append(src)
        self.seq.append(seq)
        self.ack.append(ack)
        self.flags.append(flags)
        self.window.append(window)
        self.payload.append(payload)
        self.ts_val.append(ts_val)
        self.ts_ecr.append(ts_ecr)
        self.optbits.append(optbits)
        if self.records is not None:
            if record is not None:
                self.records.append(record)
            else:
                self.records = None

    def options_at(self, index: int) -> TCPOptions:
        bits = self.optbits[index]
        if bits & OPT_ODD:
            return self.odd[index]
        if bits & OPT_TS:
            return TCPOptions(
                ts_val=self.ts_val[index], ts_ecr=self.ts_ecr[index]
            )
        return TCPOptions()

    def resolve_server_by_volume(self) -> None:
        """Mirror of :meth:`FlowDemuxer._resolve_pending`: the heavier
        sender, ties broken by first appearance."""
        by_endpoint: dict[int, int] = {}
        payloads = self.payload
        for index, src in enumerate(self.src_pk):
            by_endpoint[src] = by_endpoint.get(src, 0) + payloads[index]
        self.server_pk = max(by_endpoint, key=by_endpoint.get)

    def build_packets(self) -> list[tuple[PacketRecord, Direction]]:
        """Materialize the rows exactly as the object demux would
        have buffered them."""
        server = self.server_pk
        records = self.records
        if records is not None and len(records) == len(self.times):
            return [
                (
                    record,
                    Direction.IN if src != server else Direction.OUT,
                )
                for record, src in zip(records, self.src_pk)
            ]
        out: list[tuple[PacketRecord, Direction]] = []
        for index, src in enumerate(self.src_pk):
            dst = self.pk_b if src == self.pk_a else self.pk_a
            src_ip, src_port = _endpoint(src)
            dst_ip, dst_port = _endpoint(dst)
            record = PacketRecord(
                timestamp=self.times[index],
                src_ip=src_ip,
                dst_ip=dst_ip,
                src_port=src_port,
                dst_port=dst_port,
                seq=self.seq[index],
                ack=self.ack[index],
                flags=self.flags[index],
                window=self.window[index],
                payload_len=self.payload[index],
                options=self.options_at(index),
            )
            out.append(
                (record, Direction.IN if src != server else Direction.OUT)
            )
        return out


class _LazyPackets(list):
    """A packet list that fills itself from a :class:`_FlowStore` on
    first *element* access.

    ``len()`` is answered from the store, so report aggregation and
    :class:`~repro.errors.SkippedFlow` accounting never force
    materialization.
    """

    __slots__ = ("_store",)

    def __init__(self, store: _FlowStore):
        super().__init__()
        self._store: _FlowStore | None = store

    def _materialize(self) -> None:
        store = self._store
        if store is not None:
            self._store = None
            super().extend(store.build_packets())

    def __len__(self) -> int:
        store = self._store
        if store is not None:
            return len(store)
        return super().__len__()

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self):
        self._materialize()
        return super().__iter__()

    def __getitem__(self, index):
        self._materialize()
        return super().__getitem__(index)

    def __eq__(self, other):
        self._materialize()
        if isinstance(other, _LazyPackets):
            other._materialize()
        return list.__eq__(self, other)

    def __ne__(self, other):
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    __hash__ = None


class LazyFlowTrace(FlowTrace):
    """A :class:`FlowTrace` backed by columns.

    Behaves exactly like the object-demuxed trace — same key, same
    endpoints, same packets in the same order — but the packet objects
    exist only once something touches ``packets``.  Time properties
    are answered straight from the timestamp column.
    """

    def __init__(
        self,
        key: FlowKey,
        server: tuple[int, int],
        client: tuple[int, int],
        store: _FlowStore,
    ):
        super().__init__(
            key=key, server=server, client=client,
            packets=_LazyPackets(store),
        )
        self._store = store

    @property
    def first_time(self) -> float:
        times = self._store.times
        return times[0] if len(times) else 0.0

    @property
    def last_time(self) -> float:
        times = self._store.times
        return times[-1] if len(times) else 0.0

    @property
    def duration(self) -> float:
        return self.last_time - self.first_time


class ColumnarStreamDemuxer:
    """Streaming flow demux over :class:`PacketColumns` batches.

    A decision-for-decision mirror of
    :class:`repro.packet.flow.StreamDemuxer`: the same server
    inference (predicate, then SYN+ACK source, then SYN destination,
    then data volume), the same FIN/RST + linger and idle-timeout
    eviction with the same sweep cadence and hand-off order, and the
    same :class:`StreamStats` accounting — against packed-integer keys
    and per-flow column buffers instead of object traces.  Integer
    keys pack ``(ip, port)`` endpoints major-to-minor, so comparisons
    order exactly like :class:`FlowKey` tuples.
    """

    _SWEEP_FRACTION = 0.25

    def __init__(
        self,
        server_side: ServerPredicate | None = None,
        *,
        idle_timeout: float | None = 60.0,
        close_linger: float | None = 5.0,
        stats: StreamStats | None = None,
    ):
        self._server_side = server_side
        self.idle_timeout = idle_timeout
        self.close_linger = close_linger
        self.stats = stats if stats is not None else StreamStats()
        self._flows: dict[int, _FlowStore] = {}
        self._pending: dict[int, _FlowStore] = {}
        self._ready: list[LazyFlowTrace] = []
        self._fins: dict[int, set[int]] = {}
        self._closed_at: dict[int, float] = {}
        self._last_seen: dict[int, float] = {}
        bounds = [b for b in (idle_timeout, close_linger) if b is not None]
        self._sweep_every = (
            max(min(bounds) * self._SWEEP_FRACTION, 1e-3) if bounds else None
        )
        self._next_sweep: float | None = None

    # -- feeding ------------------------------------------------------
    def feed_columns(self, cols: PacketColumns) -> None:
        """Demultiplex one batch of decoded columns."""
        count = len(cols)
        if not count:
            return
        if _np is not None and count > 1:
            u32 = _np.uint32 if _U32_ITEMSIZE == 4 else _np.uint64
            src_pks = (
                (_np.frombuffer(cols.src_ip, dtype=u32).astype(_np.int64) << 16)
                | _np.frombuffer(cols.src_port, dtype=_np.uint16)
            ).tolist()
            dst_pks = (
                (_np.frombuffer(cols.dst_ip, dtype=u32).astype(_np.int64) << 16)
                | _np.frombuffer(cols.dst_port, dtype=_np.uint16)
            ).tolist()
        else:
            src_ips = cols.src_ip
            src_ports = cols.src_port
            dst_ips = cols.dst_ip
            dst_ports = cols.dst_port
            src_pks = [
                (src_ips[i] << 16) | src_ports[i] for i in range(count)
            ]
            dst_pks = [
                (dst_ips[i] << 16) | dst_ports[i] for i in range(count)
            ]
        times = cols.timestamps.tolist()
        seqs = cols.seq.tolist()
        acks = cols.ack.tolist()
        flags_col = cols.flags.tolist()
        windows = cols.window.tolist()
        payloads = cols.payload_len.tolist()
        ts_vals = cols.ts_val.tolist()
        ts_ecrs = cols.ts_ecr.tolist()
        optbits_col = cols.optbits.tolist()
        odd_options = cols.odd_options
        sources = cols.source_records
        predicate = self._server_side

        flows = self._flows
        pending = self._pending
        stats = self.stats
        last_seen = self._last_seen
        closed_at = self._closed_at
        sweep_every = self._sweep_every

        for row in range(count):
            src = src_pks[row]
            dst = dst_pks[row]
            if src <= dst:
                key = (src << 48) | dst
            else:
                key = (dst << 48) | src
            now = times[row]
            flags = flags_col[row]
            store = flows.get(key)
            known_before = True
            if store is None:
                store = pending.get(key)
                if store is None:
                    known_before = False
                    if src <= dst:
                        store = _FlowStore(src, dst)
                    else:
                        store = _FlowStore(dst, src)
                # Server inference, attempted on every packet while the
                # flow is unidentified (FlowDemuxer._identify_server).
                server = None
                if predicate is not None:
                    record = (
                        sources[row] if sources is not None
                        else cols.record(row)
                    )
                    server = src if predicate(record) else dst
                elif flags & FLAG_SYN:
                    server = src if flags & FLAG_ACK else dst
                if server is None:
                    pending[key] = store
                else:
                    store.server_pk = server
                    pending.pop(key, None)
                    flows[key] = store
            optbits = optbits_col[row]
            store.append(
                now, src, seqs[row], acks[row], flags, windows[row],
                payloads[row], ts_vals[row], ts_ecrs[row], optbits,
                odd_options.get(row) if optbits & OPT_ODD else None,
                sources[row] if sources is not None else None,
            )
            stats.packets += 1
            stats.buffered_packets += 1
            if stats.buffered_packets > stats.peak_buffered_packets:
                stats.peak_buffered_packets = stats.buffered_packets
            if not known_before:
                stats.flows_started += 1
                if not flags & FLAG_SYN:
                    stats.flows_reopened += 1
                stats.active_flows += 1
                if stats.active_flows > stats.peak_active_flows:
                    stats.peak_active_flows = stats.active_flows
            last_seen[key] = now
            if flags & FLAG_RST:
                closed_at.setdefault(key, now)
            elif flags & FLAG_FIN:
                fins = self._fins.setdefault(key, set())
                fins.add(src)
                if len(fins) >= 2:
                    closed_at.setdefault(key, now)
            if sweep_every is not None:
                if self._next_sweep is None:
                    self._next_sweep = now + sweep_every
                elif now >= self._next_sweep:
                    self._sweep(now)
                    self._next_sweep = now + sweep_every

    # -- eviction -----------------------------------------------------
    def _sweep(self, now: float) -> None:
        evict: list[tuple[float, int, bool]] = []
        for key, last in self._last_seen.items():
            closed = self._closed_at.get(key)
            if (
                self.close_linger is not None
                and closed is not None
                and now - closed >= self.close_linger
            ):
                evict.append((closed, key, True))
            elif (
                self.idle_timeout is not None
                and now - last >= self.idle_timeout
            ):
                evict.append((last, key, False))
        evict.sort(key=lambda item: (item[0], item[1]))
        for _when, key, was_closed in evict:
            self._evict(key, was_closed)

    def _evict(self, key: int, was_closed: bool) -> None:
        store = self._flows.pop(key, None)
        if store is None:
            store = self._pending.pop(key, None)
            if store is None:
                return
            store.resolve_server_by_volume()
        self._fins.pop(key, None)
        self._closed_at.pop(key, None)
        self._last_seen.pop(key, None)
        stats = self.stats
        stats.buffered_packets -= len(store)
        stats.active_flows -= 1
        if was_closed:
            stats.flows_closed += 1
        else:
            stats.flows_evicted_idle += 1
        self._ready.append(self._make_trace(store))

    def _make_trace(self, store: _FlowStore) -> LazyFlowTrace:
        key = FlowKey(
            store.pk_a >> 16, store.pk_a & 0xFFFF,
            store.pk_b >> 16, store.pk_b & 0xFFFF,
        )
        server = _endpoint(store.server_pk)
        other = store.pk_b if store.server_pk == store.pk_a else store.pk_a
        return LazyFlowTrace(key, server, _endpoint(other), store)

    # -- hand-off -----------------------------------------------------
    def poll(self) -> list[LazyFlowTrace]:
        """Flows completed since the last call (possibly empty)."""
        ready, self._ready = self._ready, []
        return ready

    def finish(self) -> list[LazyFlowTrace]:
        """Flush every still-open flow in batch order (sorted by first
        packet time, ties by arrival)."""
        for key, store in self._pending.items():
            store.resolve_server_by_volume()
            self._flows[key] = store
        self._pending.clear()
        traces = [self._make_trace(store) for store in self._flows.values()]
        traces.sort(key=lambda trace: trace.first_time)
        self._flows.clear()
        self._fins.clear()
        self._closed_at.clear()
        self._last_seen.clear()
        stats = self.stats
        for trace in traces:
            stats.buffered_packets -= len(trace._store)
            stats.active_flows -= 1
            stats.flows_finalized += 1
        return traces


def demux_columns_stream(
    batches: Iterable[PacketColumns],
    server_side: ServerPredicate | None = None,
    *,
    idle_timeout: float | None = 60.0,
    close_linger: float | None = 5.0,
    stats: StreamStats | None = None,
) -> Iterator[LazyFlowTrace]:
    """Incrementally demultiplex column batches, yielding each flow as
    it completes and flushing the rest at end of stream — the columnar
    counterpart of :func:`repro.packet.flow.demux_stream`."""
    demuxer = ColumnarStreamDemuxer(
        server_side,
        idle_timeout=idle_timeout,
        close_linger=close_linger,
        stats=stats,
    )
    for cols in batches:
        demuxer.feed_columns(cols)
        if demuxer._ready:
            yield from demuxer.poll()
    yield from demuxer.finish()


# -- the clean-flow fast replay ----------------------------------------


def fast_replay_flow(
    flow: FlowTrace, config: AnalysisConfig
) -> FlowAnalysis | None:
    """Replay a columnar flow on its columns if it is provably clean.

    Returns the exact :class:`FlowAnalysis` the object pipeline would
    produce, or ``None`` when the flow needs the object oracle —
    because it stalled, carried SACK/duplicate-ACK loss signals,
    retransmitted, isn't columnar at all, or the replay itself failed
    (any internal error falls back rather than propagating; the object
    path is always the authority).
    """
    if not config.columnar or config.record_series:
        return None
    if not isinstance(flow, LazyFlowTrace):
        return None
    try:
        return _replay(flow, flow._store, config)
    except Exception:
        return None


def _replay(
    flow: LazyFlowTrace, store: _FlowStore, config: AnalysisConfig
) -> FlowAnalysis | None:
    analysis = FlowAnalysis(flow=flow)
    count = len(store)
    if not count:
        return analysis  # FlowAnalyzer.run() returns untouched analysis

    tau = config.tau
    rto_est = RTOEstimator()
    stall_threshold = rto_est.stall_threshold
    observe = rto_est.observe
    server_pk = store.server_pk
    odd_bit = OPT_ODD

    # Mirrored FlowAnalyzer state (clean-flow subset: the congestion
    # state machine stays in Open, so cwnd/state never need tracking).
    mss = 1448
    init_rwnd = 0
    wscale = 0
    rwnd = 0
    established = False
    synack_time: float | None = None
    synack_count = 0
    handshake_sampled = False
    request_pending = False
    response_started = False
    zero_window_seen = False
    request_count = 0
    data_packets = 0
    bytes_out = 0
    prev_time: float | None = None

    # Mirrored SegmentTracker state: in a clean flow cumulative ACKs
    # advance a prefix pointer over in-order transmissions.
    tx_end: list[int] = []
    tx_time: list[float] = []
    tx_len = 0
    head = 0
    snd_una = 0
    snd_nxt = 0
    consumed = 0  # sequence space used; >= 2**32 means seq reuse

    rtt_samples: list[float] = []
    in_flight: list[int] = []

    rows = zip(
        store.times.tolist(), store.src_pk.tolist(), store.seq.tolist(),
        store.ack.tolist(), store.flags.tolist(), store.window.tolist(),
        store.payload.tolist(), store.ts_ecr.tolist(),
        store.optbits.tolist(),
    )
    for index, (t, src, seq, ack, flags, window, payload, ts_ecr,
                optbits) in enumerate(rows):
        syn = flags & FLAG_SYN
        if prev_time is not None and established and not syn:
            # The first-pass stall screen: the same threshold the
            # object analyzer applies.  Any stall -> object oracle.
            if t - prev_time > stall_threshold(tau):
                return None
        if src != server_pk:
            # -- incoming (client -> server), FlowAnalyzer._process_in
            if syn:
                options = store.options_at(index)
                wscale = options.wscale or 0
                init_rwnd = window << wscale
                if options.mss:
                    mss = min(mss, options.mss)
                rwnd = init_rwnd
                prev_time = t
                continue
            if optbits & odd_bit:
                return None  # SACK blocks / unusual options possible
            rwnd = window << wscale
            if rwnd < mss and bytes_out > 0:
                zero_window_seen = True
            has_ack = flags & FLAG_ACK
            if (
                not handshake_sampled
                and has_ack
                and synack_time is not None
            ):
                handshake_sampled = True
                if synack_count == 1:
                    rtt = t - synack_time
                    if rtt > 0:
                        observe(rtt, now=t)
                        rtt_samples.append(rtt)
            if payload > 0:
                if not request_pending:
                    request_count += 1
                request_pending = True
                response_started = False
            if not has_ack:
                prev_time = t
                continue
            if seq_after(ack, snd_una):
                # SegmentTracker.apply_ack: cumulative prefix walk.
                first_acked = head
                while head < tx_len and seq_leq(tx_end[head], ack):
                    head += 1
                snd_una = ack
                rto_est.on_ack()
                # FlowAnalyzer._sample_rtts for a new ACK (a clean
                # flow never acks a retransmitted batch).
                if ts_ecr:
                    rtt = t - ts_to_time(ts_ecr)
                    if rtt > 0:
                        observe(rtt, now=t)
                        rtt_samples.append(rtt)
                else:
                    for j in range(first_acked, head):
                        rtt = t - tx_time[j]
                        if rtt > 0:
                            observe(rtt, now=t)
                            rtt_samples.append(rtt)
            elif (
                payload == 0
                and not flags & _FIN_OR_RST
                and ack == snd_una
                and head < tx_len
            ):
                return None  # duplicate ACK: loss signals start here
            in_flight.append(tx_len - head)
            prev_time = t
            continue
        # -- outgoing (server -> client), FlowAnalyzer._process_out
        if syn:
            snd_una = (seq + 1) & 0xFFFFFFFF  # SegmentTracker.init_seq
            snd_nxt = snd_una
            established = True
            synack_time = t
            synack_count += 1
            prev_time = t
            continue
        fin = flags & FLAG_FIN
        if payload == 0 and not fin:
            prev_time = t
            continue
        end_seq = (seq + payload + (1 if fin else 0)) & 0xFFFFFFFF
        if (
            payload == 1
            and seq_before(seq, snd_una)
            and seq_leq(end_seq, snd_una)
        ):
            prev_time = t  # zero-window probe: never recorded
            continue
        if not established or seq != snd_nxt or consumed >= _SEQ_SPACE:
            return None  # retransmission / reorder / mid-capture flow
        tx_end.append(end_seq)
        tx_time.append(t)
        tx_len += 1
        consumed += payload + (1 if fin else 0)
        snd_nxt = end_seq
        data_packets += 1
        bytes_out += payload
        if request_pending:
            request_pending = False
        response_started = True
        prev_time = t

    analysis.mss = mss
    analysis.init_rwnd = init_rwnd
    analysis.wscale = wscale
    analysis.rtt_samples = rtt_samples
    analysis.in_flight_on_ack = in_flight
    analysis.zero_window_seen = zero_window_seen
    analysis.request_count = request_count
    analysis.data_packets = data_packets
    analysis.bytes_out = bytes_out
    analysis.duration = flow.duration
    analysis.final_srtt = rto_est.srtt
    analysis.final_rto = rto_est.rto
    return analysis


def batch_records(
    packets: Iterable[PacketRecord] | Iterable[list[PacketRecord]],
    batch_size: int = 4096,
) -> Iterator[PacketColumns]:
    """Wrap an object-record stream into column batches.

    Accepts the same shapes as the object entry points: records,
    record chunks, or ready-made :class:`PacketColumns` batches
    (passed through unchanged).
    """
    batch: list[PacketRecord] = []
    for item in packets:
        if isinstance(item, PacketRecord):
            batch.append(item)
            if len(batch) >= batch_size:
                yield PacketColumns.from_records(batch)
                batch = []
        elif isinstance(item, PacketColumns):
            if batch:
                yield PacketColumns.from_records(batch)
                batch = []
            yield item
        else:
            for record in item:
                batch.append(record)
                if len(batch) >= batch_size:
                    yield PacketColumns.from_records(batch)
                    batch = []
    if batch:
        yield PacketColumns.from_records(batch)
