"""Pass 2 of TAPO: the decision-tree stall classifier (Fig. 5).

For every stall collected in pass 1, the classifier looks at the packet
that *ends* the stall (``cur_pkt``) plus the Table 2 parameter snapshot
frozen at the stall's start, with whole-flow lookahead where the paper
uses it (tail detection, DSACK-verified spuriousness):

Top level (Table 3 categories)::

    cur_pkt is an incoming request           -> client idle
    cur_pkt is an incoming window update
        after a zero window                  -> zero rwnd
    cur_pkt is an incoming ACK               -> packet delay
    cur_pkt is an outgoing retransmission    -> timeout retransmission
        (zero-window probes                  -> zero rwnd)
    cur_pkt is outgoing new data:
        a request was pending unanswered     -> data unavailable
        window closed                        -> zero rwnd
        window open, app supplied nothing    -> resource constraint

Timeout-retransmission breakdown (Table 5, rules examined in order)::

    segment already retransmitted before     -> double retransmission
        (first retransmission fast/timeout   -> f-double / t-double)
    no data beyond the hole until the next
        request (end of file)                -> tail retransmission
    in_flight < 4, cwnd-limited              -> small cwnd
    in_flight < 4, rwnd-limited              -> small rwnd
    >= 4 outstanding, none SACKed            -> continuous loss
    DSACK shows the retransmission was
        spurious (data had arrived)          -> ACK delay/loss
    otherwise                                -> undetermined
"""

from __future__ import annotations

from ..packet.flow import Direction, FlowTrace
from ..packet.packet import PacketRecord
from ..packet.seqnum import seq_before, seq_geq, seq_leq
from .flow_analyzer import FlowAnalysis
from .segments import AnalyzedSegment, SegmentTracker
from .stalls import CaState, DoubleKind, RetxCause, Stall, StallCause

#: in_flight below this many segments cannot produce dupthres dupacks.
SMALL_IN_FLIGHT = 4

#: Outstanding windows of at least this size with zero dupacks indicate
#: the whole window was lost.
CONTINUOUS_LOSS_MIN = 4


class StallClassifier:
    """Classifies all stalls of one analyzed flow."""

    def __init__(self, analysis: FlowAnalysis, tracker: SegmentTracker):
        self.analysis = analysis
        self.tracker = tracker
        self.packets = analysis.flow.packets

    def classify_all(self) -> None:
        for stall in self.analysis.stalls:
            self.classify(stall)

    # -- top level (Fig. 5) -------------------------------------------------
    def classify(self, stall: Stall) -> None:
        ctx = stall.context
        stall.position = self._position(stall)
        if stall.cur_pkt_dir_in:
            self._classify_incoming(stall)
        elif stall.cur_pkt_is_retrans:
            if self._is_window_probe(stall):
                stall.cause = StallCause.ZERO_RWND
            else:
                stall.cause = StallCause.RETRANSMISSION
                self._classify_retransmission(stall)
        elif stall.cur_pkt_is_data:
            self._classify_new_data(stall)
        else:
            # Outgoing pure ACK / control packet ends the stall.
            if ctx.rwnd == 0:
                stall.cause = StallCause.ZERO_RWND
            elif ctx.request_pending:
                stall.cause = StallCause.DATA_UNAVAILABLE
            else:
                stall.cause = StallCause.UNDETERMINED

    def _classify_incoming(self, stall: Stall) -> None:
        ctx = stall.context
        if stall.cur_pkt_is_data:
            stall.cause = StallCause.CLIENT_IDLE
        elif ctx.rwnd == 0 or self._window_blocked(ctx):
            stall.cause = StallCause.ZERO_RWND
        else:
            # Outstanding data whose acknowledgment took this long:
            # the network delayed data or ACKs without forcing a
            # retransmission.
            stall.cause = StallCause.PACKET_DELAY

    @staticmethod
    def _window_blocked(ctx) -> bool:
        """The advertised window left no room for a full segment: the
        sender was blocked on the receiver even though the last
        advertised value was not literally zero."""
        outstanding_bytes = (ctx.snd_nxt - ctx.snd_una) % (1 << 32)
        return ctx.rwnd < outstanding_bytes + ctx.mss and ctx.response_started

    def _classify_new_data(self, stall: Stall) -> None:
        ctx = stall.context
        if ctx.request_pending:
            stall.cause = StallCause.DATA_UNAVAILABLE
        elif ctx.rwnd < ctx.mss:
            stall.cause = StallCause.ZERO_RWND
        elif ctx.packets_out == 0:
            stall.cause = StallCause.RESOURCE_CONSTRAINT
        elif self._window_had_room(ctx):
            # Data was in flight, the window had room, yet the server
            # sent nothing new for the whole stall: the application
            # supplied no data.
            stall.cause = StallCause.RESOURCE_CONSTRAINT
        else:
            stall.cause = StallCause.UNDETERMINED

    @staticmethod
    def _window_had_room(ctx) -> bool:
        outstanding_bytes = (ctx.snd_nxt - ctx.snd_una) % (1 << 32)
        return (
            outstanding_bytes + ctx.mss <= ctx.rwnd
            and ctx.packets_out < ctx.cwnd
        )

    def _is_window_probe(self, stall: Stall) -> bool:
        return stall.cur_pkt_payload <= 1 and seq_before(
            stall.cur_pkt_seq, stall.context.snd_una
        )

    # -- retransmission breakdown (Table 5) -----------------------------------
    def _classify_retransmission(self, stall: Stall) -> None:
        ctx = stall.context
        segment = self.tracker.find_covering(stall.cur_pkt_seq)
        if segment is None:
            stall.retx_cause = RetxCause.UNDETERMINED
            return
        stall.position = self._segment_position(segment)
        spurious = self._is_spurious(segment, stall)

        prior_tx = [
            t for t in segment.tx_times if t <= stall.start_time + 1e-9
        ]
        if len(prior_tx) >= 2:
            stall.retx_cause = RetxCause.DOUBLE
            stall.double_kind = self._double_kind(segment, prior_tx)
            return
        if (
            not spurious
            and ctx.unsacked_out <= SMALL_IN_FLIGHT
            and self._is_tail(stall)
        ):
            stall.retx_cause = RetxCause.TAIL
            stall.tail_state = (
                CaState.OPEN
                if ctx.ca_state == CaState.OPEN
                else CaState.RECOVERY
            )
            return
        if not spurious and ctx.in_flight < SMALL_IN_FLIGHT:
            if ctx.rwnd < SMALL_IN_FLIGHT * ctx.mss:
                stall.retx_cause = RetxCause.SMALL_RWND
            else:
                stall.retx_cause = RetxCause.SMALL_CWND
            return
        if (
            not spurious
            and ctx.unsacked_out >= CONTINUOUS_LOSS_MIN
            and ctx.sacked_out == 0
        ):
            stall.retx_cause = RetxCause.CONTINUOUS_LOSS
            return
        if spurious:
            stall.retx_cause = RetxCause.ACK_DELAY_LOSS
            return
        stall.retx_cause = RetxCause.UNDETERMINED

    @staticmethod
    def _is_spurious(segment: AnalyzedSegment, stall: Stall) -> bool:
        """The retransmission ending this stall was answered by a DSACK
        (the original had arrived; its ACK was delayed or lost)."""
        return (
            segment.spurious_at is not None
            and segment.spurious_at >= stall.start_time
        )

    @staticmethod
    def _double_kind(
        segment: AnalyzedSegment, prior_tx: list[float]
    ) -> DoubleKind:
        first_retrans_time = prior_tx[1]
        if any(
            abs(t - first_retrans_time) < 1e-9
            for t in segment.rto_retrans_times
        ):
            return DoubleKind.T_DOUBLE
        # Fast retransmit or probe: either way the first recovery did
        # not cost a timeout.
        return DoubleKind.F_DOUBLE

    def _is_tail(self, stall: Stall) -> bool:
        """No new data above the stalled hole until the next request
        (or the end of the flow): the loss sat at the end of a file."""
        snd_nxt = stall.context.snd_nxt
        for pkt, direction in self.packets[stall.cur_pkt_index + 1 :]:
            if direction is Direction.IN and pkt.payload_len > 0:
                return True
            if (
                direction is Direction.OUT
                and pkt.payload_len > 0
                and seq_geq(pkt.seq, snd_nxt)
            ):
                return False
        return True

    # -- positions (Fig. 7a / 10a) -------------------------------------------
    def _segment_position(self, segment: AnalyzedSegment) -> float:
        total = max(1, self.tracker.total_segments)
        return segment.ordinal / total

    def _position(self, stall: Stall) -> float:
        total = max(1, self.analysis.bytes_out)
        return min(1.0, stall.context.bytes_sent / total)


def classify_flow(analysis: FlowAnalysis, tracker: SegmentTracker) -> None:
    """Classify every stall of one analyzed flow in place."""
    StallClassifier(analysis, tracker).classify_all()
