"""repro: reproduction of "Demystifying and Mitigating TCP Stalls at
the Server Side" (Zhou et al., CoNEXT 2015).

The package provides:

* :mod:`repro.core` — TAPO, the passive TCP stall classifier;
* :mod:`repro.tcp` — a Linux-2.6.32-style TCP stack simulator with
  pluggable recovery policies (native RTO, TLP, and the paper's S-RTO);
* :mod:`repro.netsim` — a discrete-event network simulator;
* :mod:`repro.packet` — headers, pcap I/O, flow demuxing;
* :mod:`repro.workload` / :mod:`repro.app` — the three studied services;
* :mod:`repro.experiments` — harnesses regenerating every table and
  figure of the paper's evaluation.

Quick start::

    from repro import Tapo, analyze_pcap
    for flow in analyze_pcap("trace.pcap"):
        for stall in flow.stalls:
            print(stall.describe())
"""

from .core import (
    CaState,
    DoubleKind,
    FlowAnalysis,
    RetxCause,
    ServiceReport,
    Stall,
    StallCause,
    Tapo,
    analyze_pcap,
)
from .tcp import EndpointConfig, SRTOPolicy, TcpConnection, TLPPolicy

__version__ = "1.0.0"

__all__ = [
    "CaState",
    "DoubleKind",
    "EndpointConfig",
    "FlowAnalysis",
    "RetxCause",
    "SRTOPolicy",
    "ServiceReport",
    "Stall",
    "StallCause",
    "TLPPolicy",
    "Tapo",
    "TcpConnection",
    "analyze_pcap",
    "__version__",
]
