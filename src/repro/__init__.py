"""repro: reproduction of "Demystifying and Mitigating TCP Stalls at
the Server Side" (Zhou et al., CoNEXT 2015).

The package provides:

* :mod:`repro.api` — the supported public surface (``analyze``,
  ``analyze_stream``, ``simulate``, ``report``);
* :mod:`repro.config` — frozen ``AnalysisConfig`` / ``RunConfig``;
* :mod:`repro.core` — TAPO, the passive TCP stall classifier;
* :mod:`repro.tcp` — a Linux-2.6.32-style TCP stack simulator with
  pluggable recovery policies (native RTO, TLP, the paper's S-RTO,
  T-RACKs, and Mobile-LR, all in a ``PolicyRegistry``);
* :mod:`repro.netsim` — a discrete-event network simulator with WAN,
  datacenter, and cellular path-condition models;
* :mod:`repro.matrix` — the scenario x policy tournament runner behind
  ``repro-paper matrix``;
* :mod:`repro.packet` — headers, pcap I/O, flow demuxing;
* :mod:`repro.workload` / :mod:`repro.app` — the three studied services;
* :mod:`repro.experiments` — harnesses regenerating every table and
  figure of the paper's evaluation;
* :mod:`repro.cluster` — sharded analysis fleet: N worker processes,
  one merged report byte-identical to a single-process run.

Quick start::

    from repro import api
    for flow in api.analyze("trace.pcap"):
        for stall in flow.stalls:
            print(stall.describe())

Attributes are imported lazily (PEP 562): ``import repro`` loads
nothing but this module, and ``repro.Tapo`` or ``from repro import
analyze`` pulls in just the subsystems they need.
"""

from __future__ import annotations

from importlib import import_module
from typing import TYPE_CHECKING

__version__ = "1.1.0"

#: Public attribute -> providing submodule.  Everything here is
#: importable both as ``repro.<name>`` and ``from repro import <name>``.
_EXPORTS = {
    # facade verbs + configs
    "analyze": "repro.api",
    "analyze_cluster": "repro.api",
    "analyze_stream": "repro.api",
    "simulate": "repro.api",
    "report": "repro.api",
    "AnalysisConfig": "repro.config",
    "RunConfig": "repro.config",
    # sharded cluster surface
    "AuthError": "repro.cluster",
    "Coordinator": "repro.cluster",
    "NetConfig": "repro.cluster",
    "run_worker": "repro.cluster",
    # error taxonomy + fault accounting
    "CacheError": "repro.errors",
    "ErrorBudget": "repro.errors",
    "ErrorBudgetExceeded": "repro.errors",
    "FaultStats": "repro.errors",
    "FlowAnalysisError": "repro.errors",
    "ParseError": "repro.errors",
    "PoisonTaskError": "repro.errors",
    "ReproError": "repro.errors",
    "SkippedFlow": "repro.errors",
    "WorkerError": "repro.errors",
    # analyzer surface
    "CaState": "repro.core",
    "DoubleKind": "repro.core",
    "FlowAnalysis": "repro.core",
    "RetxCause": "repro.core",
    "ServiceReport": "repro.core",
    "Stall": "repro.core",
    "StallCause": "repro.core",
    "Tapo": "repro.core",
    "analyze_pcap": "repro.core",
    # packet surface
    "PacketRecord": "repro.packet.packet",
    "StreamStats": "repro.packet.flow",
    "server_by_ip": "repro.packet.flow",
    "server_by_port": "repro.packet.flow",
    # simulator surface
    "EndpointConfig": "repro.tcp",
    "SRTOPolicy": "repro.tcp",
    "TLPPolicy": "repro.tcp",
    "TcpConnection": "repro.tcp",
    # policy tournament surface
    "MatrixConfig": "repro.matrix",
    "MatrixResult": "repro.matrix",
    "MobileLRPolicy": "repro.tcp",
    "PolicyRegistry": "repro.tcp",
    "TRACKsPolicy": "repro.tcp",
    "run_matrix": "repro.matrix",
    # live monitoring surface
    "AlertRule": "repro.live",
    "LiveDaemon": "repro.live",
    "WindowStore": "repro.live",
    "watch_directory": "repro.live",
    # longitudinal results surface
    "ResultsStore": "repro.results",
    "TrendConfig": "repro.results",
    "merge_records": "repro.results",
    "render_dashboard": "repro.results",
    "trend_report": "repro.results",
}

__all__ = sorted(_EXPORTS) + ["__version__", "api", "config"]

if TYPE_CHECKING:  # pragma: no cover - static-analysis imports only
    from .api import (
        analyze,
        analyze_cluster,
        analyze_stream,
        report,
        simulate,
    )
    from .cluster import AuthError, Coordinator, NetConfig, run_worker
    from .config import AnalysisConfig, RunConfig
    from .errors import (
        CacheError,
        ErrorBudget,
        ErrorBudgetExceeded,
        FaultStats,
        FlowAnalysisError,
        ParseError,
        PoisonTaskError,
        ReproError,
        SkippedFlow,
        WorkerError,
    )
    from .core import (
        CaState,
        DoubleKind,
        FlowAnalysis,
        RetxCause,
        ServiceReport,
        Stall,
        StallCause,
        Tapo,
        analyze_pcap,
    )
    from .live import AlertRule, LiveDaemon, WindowStore, watch_directory
    from .packet.flow import StreamStats, server_by_ip, server_by_port
    from .packet.packet import PacketRecord
    from .results import (
        ResultsStore,
        TrendConfig,
        merge_records,
        render_dashboard,
        trend_report,
    )
    from .matrix import MatrixConfig, MatrixResult, run_matrix
    from .tcp import (
        EndpointConfig,
        MobileLRPolicy,
        PolicyRegistry,
        SRTOPolicy,
        TcpConnection,
        TLPPolicy,
        TRACKsPolicy,
    )


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module), name)
    globals()[name] = value  # cache: resolve each name once
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
