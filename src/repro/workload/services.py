"""Service profiles: cloud storage, software download, web search.

Each profile bundles the distributions that shape one of the paper's
three services — flow sizes, request patterns, back-end fetch delays,
application write pauses, client population, and network path
characteristics (RTT, loss including bursts, jitter spikes).

Absolute sizes are scaled down from the production numbers (Table 1)
to keep a pure-Python simulation tractable, but the *relations* the
analysis depends on are preserved: cloud-storage flows are an order of
magnitude larger than software downloads, which are an order of
magnitude larger than web-search responses; web search sees the lowest
loss and RTT; software download has the most small-init-rwnd clients.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..app.session import Request, Session, SupplyChunk
from ..netsim.link import PathConfig
from ..netsim.loss import (
    BernoulliLoss,
    CompositeJitter,
    CompositeLoss,
    RandomWalkJitter,
    SpikeJitter,
    TimedBurstLoss,
)
from ..tcp.endpoint import EndpointConfig
from .clients import (
    ClientPopulation,
    cloud_storage_clients,
    software_download_clients,
    web_search_clients,
)
from .distributions import (
    Choice,
    Constant,
    Distribution,
    Exponential,
    LogNormal,
    Mixture,
    Uniform,
    sample_int,
)


@dataclass
class PathProfile:
    """Distributions describing the network path of one service."""

    rtt: Distribution
    rate_bps: Distribution
    data_loss_rate: float
    #: Mean seconds between loss bursts and mean burst duration.
    burst_mean_good: float = 20.0
    burst_mean_bad: float = 0.22
    ack_loss_rate: float = 0.008
    #: Continuous small jitter: inflates RTTVAR, and with it the very
    #: conservative RTOs the paper observes (Fig. 1).
    jitter_base: float = 0.02
    #: Slowly-wandering cross-traffic queueing delay (bufferbloat).
    walk_max: float = 0.15
    walk_volatility: float = 0.05
    jitter_spike_prob: float = 0.015
    jitter_spike_low: float = 0.2
    jitter_spike_high: float = 0.5
    #: Historical RTT variance of the destination (seeds the server's
    #: cached metrics; drawn per flow).
    cached_rttvar_low: float = 0.1
    cached_rttvar_high: float = 0.3
    queue_limit: int = 48

    def make_path(self, rng: random.Random) -> PathConfig:
        rtt = max(0.004, self.rtt.sample(rng))
        rate = max(2e5, self.rate_bps.sample(rng))
        return PathConfig(
            delay=rtt / 2,
            rate_bps=rate,
            queue_limit=self.queue_limit,
            data_loss=CompositeLoss(
                BernoulliLoss(self.data_loss_rate),
                TimedBurstLoss(
                    mean_good=self.burst_mean_good,
                    mean_bad=self.burst_mean_bad,
                ),
            ),
            ack_loss=BernoulliLoss(self.ack_loss_rate),
            data_jitter=CompositeJitter(
                RandomWalkJitter(
                    max_delay=self.walk_max, volatility=self.walk_volatility
                ),
                SpikeJitter(
                    base_jitter=self.jitter_base,
                    spike_prob=self.jitter_spike_prob,
                    spike_low=self.jitter_spike_low,
                    spike_high=self.jitter_spike_high,
                ),
            ),
            ack_jitter=CompositeJitter(
                RandomWalkJitter(
                    max_delay=self.walk_max / 3,
                    volatility=self.walk_volatility / 2,
                ),
                SpikeJitter(
                    base_jitter=self.jitter_base,
                    spike_prob=self.jitter_spike_prob / 3,
                    spike_low=self.jitter_spike_low,
                    spike_high=self.jitter_spike_high,
                ),
            ),
        )


@dataclass
class ServiceProfile:
    """Everything needed to generate flows of one service."""

    name: str
    clients: ClientPopulation
    path: PathProfile
    #: Bytes of one response object.
    response_size: Distribution = field(
        default_factory=lambda: LogNormal(30_000, 1.2)
    )
    #: Objects (requests) per connection.
    requests_per_session: Distribution = field(default_factory=lambda: Constant(1))
    #: Request (upload) size in bytes.
    request_size: Distribution = field(default_factory=lambda: Uniform(200, 900))
    #: Client think time before each request.
    think_time: Distribution = field(default_factory=lambda: Uniform(0.005, 0.04))
    #: Probability that response data is *not* locally available.
    backend_fetch_prob: float = 0.2
    #: Back-end fetch delay when it happens.
    backend_delay: Distribution = field(default_factory=lambda: Uniform(0.05, 0.4))
    #: Probability of a mid-transfer application write pause.
    supply_pause_prob: float = 0.05
    #: Duration of such a pause.
    supply_pause: Distribution = field(default_factory=lambda: Uniform(0.1, 0.4))
    #: Chunk size the server app writes in when pausing is possible.
    supply_chunk_bytes: int = 32_768
    #: Server transport knobs.
    server_init_cwnd: int = 10
    server_congestion: str = "cubic"

    def make_session(self, rng: random.Random) -> Session:
        """Sample the application script of one connection."""
        n_requests = sample_int(self.requests_per_session, rng)
        requests = []
        for index in range(n_requests):
            response_bytes = sample_int(self.response_size, rng, minimum=300)
            data_delay = 0.0
            if rng.random() < self.backend_fetch_prob:
                data_delay = self.backend_delay.sample(rng)
            chunks = self._make_chunks(response_bytes, rng)
            requests.append(
                Request(
                    request_bytes=sample_int(self.request_size, rng, 100),
                    response_bytes=response_bytes,
                    think_time=self.think_time.sample(rng),
                    data_delay=data_delay,
                    chunks=chunks,
                )
            )
        return Session(requests=requests)

    def _make_chunks(
        self, response_bytes: int, rng: random.Random
    ) -> list[SupplyChunk]:
        """Split a response into application writes, possibly pausing."""
        if rng.random() >= self.supply_pause_prob:
            return [SupplyChunk(response_bytes)]
        if response_bytes <= 2 * self.supply_chunk_bytes:
            # Too small to pause meaningfully: pause before the tail half.
            head = max(1, response_bytes // 2)
            return [
                SupplyChunk(head),
                SupplyChunk(
                    response_bytes - head, delay=self.supply_pause.sample(rng)
                ),
            ]
        chunks: list[SupplyChunk] = []
        remaining = response_bytes
        pause_at = rng.randrange(1, max(2, response_bytes // self.supply_chunk_bytes))
        index = 0
        while remaining > 0:
            size = min(self.supply_chunk_bytes, remaining)
            delay = self.supply_pause.sample(rng) if index == pause_at else 0.0
            chunks.append(SupplyChunk(size, delay=delay))
            remaining -= size
            index += 1
        return chunks

    def make_server_config(
        self,
        ip: int,
        port: int,
        policy: str = "native",
        policy_kwargs: dict | None = None,
        init_srtt: float | None = None,
        init_rttvar: float | None = None,
    ) -> EndpointConfig:
        return EndpointConfig(
            ip=ip,
            port=port,
            mss=self.clients.mss,
            init_cwnd=self.server_init_cwnd,
            congestion=self.server_congestion,
            policy=policy,
            policy_kwargs=policy_kwargs or {},
            init_srtt=init_srtt,
            init_rttvar=init_rttvar,
        )


def cloud_storage_profile() -> ServiceProfile:
    """Large flows, multiple files per connection, shared connections."""
    return ServiceProfile(
        name="cloud_storage",
        clients=cloud_storage_clients(),
        path=PathProfile(
            rtt=LogNormal(0.05, 0.45),
            rate_bps=Choice([4e6, 8e6, 16e6], [0.4, 0.35, 0.25]),
            data_loss_rate=0.010,
            burst_mean_good=14.0,
            ),
        response_size=LogNormal(55_000, 1.25),
        requests_per_session=Choice([1, 2, 3, 5], [0.45, 0.25, 0.2, 0.1]),
        think_time=Mixture(
            [Uniform(0.005, 0.08), Exponential(1.2)], [0.96, 0.04]
        ),
        backend_fetch_prob=0.08,
        backend_delay=Uniform(0.4, 1.5),
        supply_pause_prob=0.08,
    )


def software_download_profile() -> ServiceProfile:
    """Single static file per connection, loaded servers, old clients."""
    return ServiceProfile(
        name="software_download",
        clients=software_download_clients(),
        path=PathProfile(
            rtt=LogNormal(0.05, 0.45),
            rate_bps=Choice([3e6, 6e6, 10e6], [0.35, 0.4, 0.25]),
            data_loss_rate=0.011,
            burst_mean_good=16.0,
            ),
        response_size=LogNormal(45_000, 1.0),
        requests_per_session=Constant(1),
        think_time=Uniform(0.005, 0.05),
        backend_fetch_prob=0.07,
        backend_delay=Uniform(0.3, 0.9),
        supply_pause_prob=0.12,
        supply_pause=Uniform(0.5, 1.2),
    )


def web_search_profile() -> ServiceProfile:
    """Short interactive flows, dynamic results fetched from back-ends."""
    return ServiceProfile(
        name="web_search",
        clients=web_search_clients(),
        path=PathProfile(
            rtt=LogNormal(0.038, 0.4),
            rate_bps=Choice([4e6, 8e6, 20e6], [0.3, 0.4, 0.3]),
            data_loss_rate=0.018,
            burst_mean_good=30.0,
            ack_loss_rate=0.006,
            ),
        response_size=Mixture(
            [Constant(1_200), LogNormal(7_000, 0.9)], [0.2, 0.8]
        ),
        requests_per_session=Constant(1),
        think_time=Uniform(0.005, 0.03),
        backend_fetch_prob=0.55,
        backend_delay=Mixture(
            [Uniform(0.02, 0.15), Uniform(0.25, 0.7)], [0.45, 0.55]
        ),
        supply_pause_prob=0.01,
    )


SERVICE_PROFILES = {
    "cloud_storage": cloud_storage_profile,
    "software_download": software_download_profile,
    "web_search": web_search_profile,
}


def get_profile(name: str) -> ServiceProfile:
    """Look up a service profile by name."""
    try:
        return SERVICE_PROFILES[name]()
    except KeyError:
        raise ValueError(
            f"unknown service {name!r}; choose from {sorted(SERVICE_PROFILES)}"
        ) from None
