"""Random distributions used by the workload generators.

Thin, seedable wrappers: every sampler takes an injected
:class:`random.Random` so whole experiments replay from one seed.
Flow sizes in measured CDNs are heavy-tailed, so the service profiles
lean on :class:`LogNormal` and :class:`BoundedPareto`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass


class Distribution:
    """A positive-valued sampler."""

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError

    def mean(self) -> float:
        """Analytic mean where available (used in tests)."""
        raise NotImplementedError


@dataclass
class Constant(Distribution):
    value: float

    def sample(self, rng: random.Random) -> float:
        return self.value

    def mean(self) -> float:
        return self.value


@dataclass
class Uniform(Distribution):
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError("low > high")

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2


@dataclass
class Exponential(Distribution):
    """Exponential with the given mean."""

    mean_value: float

    def __post_init__(self) -> None:
        if self.mean_value <= 0:
            raise ValueError("mean must be positive")

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean_value)

    def mean(self) -> float:
        return self.mean_value


@dataclass
class LogNormal(Distribution):
    """Log-normal parameterized by its median and sigma (of log)."""

    median: float
    sigma: float

    def __post_init__(self) -> None:
        if self.median <= 0 or self.sigma < 0:
            raise ValueError("median must be positive, sigma non-negative")

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(math.log(self.median), self.sigma)

    def mean(self) -> float:
        return self.median * math.exp(self.sigma**2 / 2)


@dataclass
class BoundedPareto(Distribution):
    """Pareto truncated to [low, high] via inverse-CDF sampling."""

    low: float
    high: float
    alpha: float = 1.2

    def __post_init__(self) -> None:
        if not 0 < self.low < self.high:
            raise ValueError("need 0 < low < high")
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")

    def sample(self, rng: random.Random) -> float:
        u = rng.random()
        la = self.low**self.alpha
        ha = self.high**self.alpha
        return (-(u * ha - u * la - ha) / (ha * la)) ** (-1 / self.alpha)

    def mean(self) -> float:
        a, l, h = self.alpha, self.low, self.high
        if a == 1:
            return l * math.log(h / l) / (1 - l / h)
        num = (l**a) / (1 - (l / h) ** a) * a / (a - 1)
        return num * (1 / l ** (a - 1) - 1 / h ** (a - 1))


@dataclass
class Choice(Distribution):
    """Discrete distribution over (value, weight) pairs."""

    values: list[float]
    weights: list[float]

    def __post_init__(self) -> None:
        if len(self.values) != len(self.weights) or not self.values:
            raise ValueError("values and weights must match and be non-empty")
        if any(w < 0 for w in self.weights):
            raise ValueError("weights must be non-negative")

    def sample(self, rng: random.Random) -> float:
        return rng.choices(self.values, weights=self.weights, k=1)[0]

    def mean(self) -> float:
        total = sum(self.weights)
        return sum(v * w for v, w in zip(self.values, self.weights)) / total


@dataclass
class Mixture(Distribution):
    """Weighted mixture of component distributions."""

    components: list[Distribution]
    weights: list[float]

    def __post_init__(self) -> None:
        if len(self.components) != len(self.weights) or not self.components:
            raise ValueError("components and weights must match")

    def sample(self, rng: random.Random) -> float:
        component = rng.choices(self.components, weights=self.weights, k=1)[0]
        return component.sample(rng)

    def mean(self) -> float:
        total = sum(self.weights)
        return (
            sum(c.mean() * w for c, w in zip(self.components, self.weights))
            / total
        )


def sample_int(dist: Distribution, rng: random.Random, minimum: int = 1) -> int:
    """Sample and round to an int with a floor."""
    return max(minimum, int(round(dist.sample(rng))))
