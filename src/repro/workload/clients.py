"""Client population models.

The paper traces several stall causes to *client* properties: old
client software advertising tiny initial receive windows (Fig. 6,
Table 4), receive buffers that fill because the application reads
slowly (zero-window stalls), and delayed-ACK timers long enough to
beat the 200 ms minimum RTO (ACK-delay stalls).  A
:class:`ClientPopulation` captures those distributions and stamps out
an :class:`~repro.tcp.endpoint.EndpointConfig` per simulated client.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..tcp.constants import DEFAULT_MSS
from ..tcp.endpoint import EndpointConfig
from ..tcp.receiver import AppReader, BurstyReader, ImmediateReader
from .distributions import Choice, Distribution, Uniform

#: Initial-rwnd steps (in MSS) used on the x-axis of the paper's Fig. 6.
INIT_RWND_STEPS = [2, 5, 11, 22, 45, 182, 364, 1297, 1456]


@dataclass
class ClientPopulation:
    """Distribution over client endpoint behaviours for one service."""

    name: str
    #: Initial receive window in MSS units (the SYN's window field).
    init_rwnd_mss: Distribution = field(
        default_factory=lambda: Choice([45, 182, 1297], [0.2, 0.4, 0.4])
    )
    #: Delayed-ACK timeout in seconds.
    delack: Distribution = field(default_factory=lambda: Uniform(0.04, 0.12))
    #: Probability that a small-window client runs old software whose
    #: buffer never grows (Table 4's zero-window victims).
    frozen_buffer_prob: float = 0.7
    #: Probability that a frozen-buffer client also reads slowly.
    slow_reader_prob: float = 0.8
    #: A small-window threshold in MSS under which the client is
    #: considered "old software".
    small_window_mss: int = 12
    #: Clients below this window size (but above small_window_mss) may
    #: still run software with fixed, moderate buffers (Table 4 shows
    #: zero-window stalls even at 45-MSS initial windows).
    medium_window_mss: int = 100
    medium_frozen_prob: float = 0.0
    mss: int = DEFAULT_MSS

    def make_config(
        self, rng: random.Random, ip: int, port: int
    ) -> EndpointConfig:
        """Sample one client endpoint configuration."""
        init_mss = int(self.init_rwnd_mss.sample(rng))
        init_rwnd = init_mss * self.mss
        delack = self.delack.sample(rng)
        reader: AppReader = ImmediateReader()
        auto_grow = True
        max_rcv_buf = 4 << 20

        if init_mss < self.small_window_mss:
            if rng.random() < self.frozen_buffer_prob:
                # Old client software: the buffer never grows past the
                # initial window ...
                auto_grow = False
                max_rcv_buf = init_rwnd
                if rng.random() < self.slow_reader_prob:
                    # ... and the application periodically stops
                    # draining it, so the advertised window repeatedly
                    # collapses to zero.
                    reader = BurstyReader(
                        rng,
                        active_mean=0.8,
                        pause_low=0.3,
                        pause_high=1.5,
                    )
            else:
                max_rcv_buf = 1 << 20
        elif (
            init_mss < self.medium_window_mss
            and rng.random() < self.medium_frozen_prob
        ):
            auto_grow = False
            max_rcv_buf = init_rwnd
            reader = BurstyReader(
                rng, active_mean=1.5, pause_low=0.2, pause_high=0.8
            )

        small = init_mss < self.small_window_mss
        return EndpointConfig(
            ip=ip,
            port=port,
            mss=self.mss,
            wscale=0 if small else 7,
            rcv_buf=min(init_rwnd, 65535 if small else 65535 << 7),
            max_rcv_buf=max(max_rcv_buf, init_rwnd),
            rcv_buf_auto_grow=auto_grow,
            delack_timeout=delack,
            reader=reader,
        )


def cloud_storage_clients() -> ClientPopulation:
    """Cloud-storage clients: the Qihoo client software keeps windows
    of at least ~45 MSS (Table 4's cloud-storage row starts at 45)."""
    return ClientPopulation(
        name="cloud_storage",
        init_rwnd_mss=Choice(
            [45, 182, 648, 1297], [0.18, 0.32, 0.30, 0.20]
        ),
        delack=Uniform(0.04, 0.1),
        medium_frozen_prob=0.3,
    )


def software_download_clients() -> ClientPopulation:
    """Software-download clients: 18% below 10 MSS, some at 2 MSS
    (old installers), long delayed ACKs on the old stacks."""
    return ClientPopulation(
        name="software_download",
        init_rwnd_mss=Choice(
            [2, 5, 11, 45, 182, 648],
            [0.05, 0.08, 0.07, 0.30, 0.30, 0.20],
        ),
        delack=Choice([0.05, 0.15, 0.4], [0.6, 0.33, 0.07]),
        frozen_buffer_prob=0.85,
        slow_reader_prob=0.9,
        medium_frozen_prob=0.3,
    )


def web_search_clients() -> ClientPopulation:
    """Web-search clients are browsers: healthy windows, normal ACKs."""
    return ClientPopulation(
        name="web_search",
        init_rwnd_mss=Choice(
            [11, 45, 182, 1297], [0.04, 0.36, 0.40, 0.20]
        ),
        delack=Uniform(0.04, 0.1),
        frozen_buffer_prob=0.3,
        slow_reader_prob=0.3,
        medium_frozen_prob=0.06,
    )
