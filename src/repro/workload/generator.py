"""Flow scenario generation: service profile -> runnable flow specs."""

from __future__ import annotations

import random
from collections.abc import Iterator
from dataclasses import dataclass

from ..app.session import Session
from ..netsim.link import PathConfig
from ..packet.headers import ip_from_str
from ..tcp.endpoint import EndpointConfig
from .services import ServiceProfile

SERVER_IP = ip_from_str("10.0.0.1")
SERVER_PORT = 80
CLIENT_NET = ip_from_str("100.64.0.0")


@dataclass
class FlowScenario:
    """One fully specified flow, ready to simulate."""

    flow_id: int
    service: str
    client_config: EndpointConfig
    server_config: EndpointConfig
    path_config: PathConfig
    session: Session
    seed: int


def generate_flows(
    profile: ServiceProfile,
    count: int,
    seed: int = 0,
    policy: str = "native",
    policy_kwargs: dict | None = None,
) -> Iterator[FlowScenario]:
    """Yield ``count`` independent flow scenarios for a service.

    Each flow gets its own derived seed, so any flow can be re-simulated
    in isolation (useful for debugging a single classified stall).
    """
    root = random.Random(seed)
    for flow_id in range(count):
        flow_seed = root.randrange(1 << 48)
        rng = random.Random(flow_seed)
        client_ip = CLIENT_NET + 1 + (flow_id % 0xFFFF)
        client_port = 20000 + (flow_id % 40000)
        path_config = profile.path.make_path(rng)
        # The server's destination cache remembers this client's path:
        # seed SRTT with the base path RTT and RTTVAR with the access
        # network's historical variance.
        cached_srtt = path_config.delay * 2 * rng.uniform(1.0, 1.4)
        cached_var = rng.uniform(
            profile.path.cached_rttvar_low, profile.path.cached_rttvar_high
        )
        yield FlowScenario(
            flow_id=flow_id,
            service=profile.name,
            client_config=profile.clients.make_config(
                rng, client_ip, client_port
            ),
            server_config=profile.make_server_config(
                SERVER_IP, SERVER_PORT, policy=policy,
                policy_kwargs=policy_kwargs,
                init_srtt=cached_srtt, init_rttvar=cached_var,
            ),
            path_config=path_config,
            session=profile.make_session(rng),
            seed=flow_seed,
        )
