"""Workload models: distributions, client populations, service profiles."""

from .clients import (
    INIT_RWND_STEPS,
    ClientPopulation,
    cloud_storage_clients,
    software_download_clients,
    web_search_clients,
)
from .distributions import (
    BoundedPareto,
    Choice,
    Constant,
    Distribution,
    Exponential,
    LogNormal,
    Mixture,
    Uniform,
    sample_int,
)
from .generator import SERVER_IP, SERVER_PORT, FlowScenario, generate_flows
from .services import (
    SERVICE_PROFILES,
    PathProfile,
    ServiceProfile,
    cloud_storage_profile,
    get_profile,
    software_download_profile,
    web_search_profile,
)

__all__ = [
    "BoundedPareto",
    "Choice",
    "ClientPopulation",
    "Constant",
    "Distribution",
    "Exponential",
    "FlowScenario",
    "INIT_RWND_STEPS",
    "LogNormal",
    "Mixture",
    "PathProfile",
    "SERVER_IP",
    "SERVER_PORT",
    "SERVICE_PROFILES",
    "ServiceProfile",
    "Uniform",
    "cloud_storage_clients",
    "cloud_storage_profile",
    "generate_flows",
    "get_profile",
    "sample_int",
    "software_download_clients",
    "software_download_profile",
    "web_search_clients",
    "web_search_profile",
]
