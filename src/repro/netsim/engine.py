"""Discrete event simulation engine.

A single-threaded event loop over a binary heap.  Components schedule
callbacks at absolute or relative times and receive a :class:`Timer`
handle that supports cancellation and rescheduling — the exact facility
a TCP retransmission timer needs.

Determinism: events at the same timestamp fire in scheduling order
(a monotonic tie-breaker is part of the heap key), so simulations are
bit-reproducible for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field


class SimulationError(RuntimeError):
    """Raised on engine misuse (e.g. scheduling in the past)."""


@dataclass(order=True, slots=True)
class _Event:
    time: float
    tie: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Timer:
    """Handle for a scheduled callback.

    ``cancel()`` is idempotent; ``pending`` tells whether the callback
    is still going to fire.
    """

    __slots__ = ("_engine", "_event", "_callback")

    def __init__(self, engine: "EventLoop", event: _Event):
        self._engine = engine
        self._event = event

    @property
    def pending(self) -> bool:
        return not self._event.cancelled and self._event.time >= self._engine.now

    @property
    def fire_time(self) -> float:
        return self._event.time

    def cancel(self) -> None:
        if not self._event.cancelled:
            observer = self._engine.observer
            if observer is not None:
                observer.on_cancel(self._event.time)
        self._event.cancelled = True


class EventLoop:
    """The simulation clock and event queue.

    ``observer`` is the engine's tracing hook: an object with
    ``on_schedule(time, callback)``, ``on_fire(time, callback)`` and
    ``on_cancel(time)`` methods (see
    :class:`repro.obs.recorder.EngineProbe`).  It defaults to ``None``
    and costs one ``is None`` check per operation when unset, so the
    untraced simulation is unchanged.
    """

    __slots__ = ("now", "_heap", "_tie", "events_run", "observer")

    def __init__(self, start_time: float = 0.0):
        self.now = start_time
        self._heap: list[_Event] = []
        self._tie = itertools.count()
        self.events_run = 0
        self.observer = None

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Timer:
        """Run ``callback`` at absolute simulation time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}, now is {self.now:.6f}"
            )
        event = _Event(time, next(self._tie), callback)
        heapq.heappush(self._heap, event)
        if self.observer is not None:
            self.observer.on_schedule(time, callback)
        return Timer(self, event)

    def schedule(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Run ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay:.6f}")
        return self.schedule_at(self.now + delay, callback)

    def peek_time(self) -> float | None:
        """Timestamp of the next pending event, or None when idle."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Run the next event; return False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self.events_run += 1
            if self.observer is not None:
                self.observer.on_fire(event.time, event.callback)
            event.callback()
            return True
        return False

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
    ) -> None:
        """Drain the queue, optionally bounded by time or event count.

        With ``until``, events after that time stay queued and the clock
        is left at ``until``.

        This is the simulator's hottest loop — every packet, timer and
        app event passes through it — so the heap and ``heappop`` are
        bound locally instead of being re-looked-up per event.
        """
        remaining = max_events
        heap = self._heap
        heappop = heapq.heappop
        observer = self.observer
        while True:
            if remaining is not None and remaining <= 0:
                return
            while heap and heap[0].cancelled:
                heappop(heap)
            if not heap:
                if until is not None:
                    self.now = max(self.now, until)
                return
            event = heap[0]
            if until is not None and event.time > until:
                self.now = until
                return
            heappop(heap)
            self.now = event.time
            self.events_run += 1
            if observer is not None:
                observer.on_fire(event.time, event.callback)
            event.callback()
            if remaining is not None:
                remaining -= 1

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
