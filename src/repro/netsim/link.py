"""Unidirectional links with rate, delay, queueing, loss and jitter.

A :class:`Link` models the path one direction of a TCP connection
takes: a drop-tail bottleneck queue draining at ``rate_bps``, a fixed
propagation delay, a stochastic loss process and optional jitter
(which may reorder packets when ``allow_reorder`` is set, mimicking
multi-path routing).
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass, field

from ..packet.packet import PacketRecord
from .engine import EventLoop
from .loss import JitterModel, LossModel, NoJitter, NoLoss

PacketSink = Callable[[PacketRecord], None]


@dataclass
class LinkStats:
    """Counters exposed for tests and experiment sanity checks."""

    sent: int = 0
    delivered: int = 0
    dropped_loss: int = 0
    dropped_queue: int = 0
    bytes_delivered: int = 0

    @property
    def drop_rate(self) -> float:
        if not self.sent:
            return 0.0
        return (self.dropped_loss + self.dropped_queue) / self.sent


class Link:
    """One direction of a network path.

    Parameters
    ----------
    engine:
        The simulation event loop.
    delay:
        One-way propagation delay in seconds.
    rate_bps:
        Bottleneck bandwidth in bits per second (None = infinite).
    queue_limit:
        Maximum packets queued at the bottleneck (drop-tail). Only
        meaningful with a finite rate.
    loss / jitter:
        Stochastic models, see :mod:`repro.netsim.loss`.
    allow_reorder:
        When False (default) delivery order is forced FIFO even under
        jitter; when True large jitter can reorder packets.
    """

    # 40 bytes of IP+TCP header are charged per packet on the wire.
    HEADER_OVERHEAD = 40

    def __init__(
        self,
        engine: EventLoop,
        sink: PacketSink,
        delay: float = 0.05,
        rate_bps: float | None = None,
        queue_limit: int = 1000,
        loss: LossModel | None = None,
        jitter: JitterModel | None = None,
        rng: random.Random | None = None,
        allow_reorder: bool = False,
        name: str = "link",
    ):
        if delay < 0:
            raise ValueError("negative propagation delay")
        self.engine = engine
        self.sink = sink
        self.delay = delay
        self.rate_bps = rate_bps
        self.queue_limit = queue_limit
        self.loss = loss or NoLoss()
        self.jitter = jitter or NoJitter()
        self.rng = rng or random.Random(0)
        self.allow_reorder = allow_reorder
        self.name = name
        self.stats = LinkStats()
        self._busy_until = 0.0
        self._last_delivery = 0.0
        self._queued = 0

    def send(self, pkt: PacketRecord) -> None:
        """Inject a packet into the link."""
        self.stats.sent += 1
        if self.loss.should_drop(self.rng, self.engine.now, pkt):
            self.stats.dropped_loss += 1
            return
        now = self.engine.now
        if self.rate_bps is None:
            depart = now
        else:
            if self._queued >= self.queue_limit and self._busy_until > now:
                self.stats.dropped_queue += 1
                return
            wire_bytes = pkt.payload_len + self.HEADER_OVERHEAD
            tx_time = wire_bytes * 8 / self.rate_bps
            start = max(now, self._busy_until)
            depart = start + tx_time
            self._busy_until = depart
            self._queued += 1
            # The packet occupies the bottleneck queue only until it
            # finishes serializing; time on the wire afterwards must
            # not count against the queue limit.
            self.engine.schedule_at(depart, self._on_depart)
        arrival = depart + self.delay + self.jitter.extra_delay(self.rng, now)
        if not self.allow_reorder:
            arrival = max(arrival, self._last_delivery)
            self._last_delivery = arrival
        self.engine.schedule_at(arrival, lambda p=pkt: self._deliver(p))

    def _on_depart(self) -> None:
        self._queued = max(0, self._queued - 1)

    def _deliver(self, pkt: PacketRecord) -> None:
        self.stats.delivered += 1
        self.stats.bytes_delivered += pkt.payload_len
        self.sink(pkt)

    def reset_models(self) -> None:
        self.loss.reset()


class DuplexPath:
    """A pair of links forming a bidirectional path.

    ``forward`` carries server -> client traffic (data), ``reverse``
    carries client -> server traffic (ACKs).  The two directions have
    independent loss and jitter, which is essential: ACK-direction loss
    is a distinct stall cause in the paper.
    """

    def __init__(self, forward: Link, reverse: Link):
        self.forward = forward
        self.reverse = reverse

    @property
    def rtt_floor(self) -> float:
        """Minimum round-trip time (propagation only)."""
        return self.forward.delay + self.reverse.delay


@dataclass
class PathConfig:
    """Declarative path description used by scenarios.

    ``data_*`` applies to the server->client direction and ``ack_*`` to
    the reverse direction; ``ack_loss`` defaults to the data loss model
    when None.
    """

    delay: float = 0.05
    rate_bps: float | None = 50e6
    queue_limit: int = 256
    data_loss: LossModel = field(default_factory=NoLoss)
    ack_loss: LossModel | None = None
    data_jitter: JitterModel = field(default_factory=NoJitter)
    ack_jitter: JitterModel = field(default_factory=NoJitter)
    allow_reorder: bool = False

    def build(
        self,
        engine: EventLoop,
        to_client: PacketSink,
        to_server: PacketSink,
        rng: random.Random,
    ) -> DuplexPath:
        forward = Link(
            engine,
            to_client,
            delay=self.delay,
            rate_bps=self.rate_bps,
            queue_limit=self.queue_limit,
            loss=self.data_loss,
            jitter=self.data_jitter,
            rng=rng,
            allow_reorder=self.allow_reorder,
            name="data",
        )
        reverse = Link(
            engine,
            to_server,
            delay=self.delay,
            rate_bps=self.rate_bps,
            queue_limit=self.queue_limit,
            loss=self.ack_loss if self.ack_loss is not None else NoLoss(),
            jitter=self.ack_jitter,
            rng=rng,
            allow_reorder=self.allow_reorder,
            name="ack",
        )
        return DuplexPath(forward, reverse)
