"""Discrete-event network simulator: engine, links, loss models, taps."""

from .engine import EventLoop, SimulationError, Timer
from .link import DuplexPath, Link, LinkStats, PathConfig
from .loss import (
    BernoulliLoss,
    CompositeJitter,
    CompositeLoss,
    GilbertElliottLoss,
    IncastBurstLoss,
    JitterModel,
    LossModel,
    NoJitter,
    NoLoss,
    RadioWakeJitter,
    RandomWalkJitter,
    ScriptedDrop,
    SpikeJitter,
    TimedBurstLoss,
    UniformJitter,
)
from .profiles import PATH_MODELS, CellularPath, DatacenterPath, make_path_model
from .topology import Dispatcher, SharedBottleneck
from .trace import CaptureTap

__all__ = [
    "BernoulliLoss",
    "CaptureTap",
    "CellularPath",
    "CompositeJitter",
    "CompositeLoss",
    "DatacenterPath",
    "Dispatcher",
    "DuplexPath",
    "EventLoop",
    "GilbertElliottLoss",
    "IncastBurstLoss",
    "JitterModel",
    "Link",
    "LinkStats",
    "LossModel",
    "NoJitter",
    "NoLoss",
    "PATH_MODELS",
    "PathConfig",
    "RadioWakeJitter",
    "RandomWalkJitter",
    "ScriptedDrop",
    "SimulationError",
    "SpikeJitter",
    "TimedBurstLoss",
    "Timer",
    "UniformJitter",
    "make_path_model",
]
