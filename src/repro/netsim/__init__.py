"""Discrete-event network simulator: engine, links, loss models, taps."""

from .engine import EventLoop, SimulationError, Timer
from .link import DuplexPath, Link, LinkStats, PathConfig
from .loss import (
    BernoulliLoss,
    CompositeJitter,
    CompositeLoss,
    GilbertElliottLoss,
    JitterModel,
    LossModel,
    NoJitter,
    NoLoss,
    RandomWalkJitter,
    ScriptedDrop,
    SpikeJitter,
    TimedBurstLoss,
    UniformJitter,
)
from .topology import Dispatcher, SharedBottleneck
from .trace import CaptureTap

__all__ = [
    "BernoulliLoss",
    "CaptureTap",
    "CompositeJitter",
    "CompositeLoss",
    "Dispatcher",
    "DuplexPath",
    "EventLoop",
    "GilbertElliottLoss",
    "JitterModel",
    "Link",
    "LinkStats",
    "LossModel",
    "NoJitter",
    "NoLoss",
    "PathConfig",
    "RandomWalkJitter",
    "ScriptedDrop",
    "SimulationError",
    "SpikeJitter",
    "TimedBurstLoss",
    "Timer",
    "UniformJitter",
]
