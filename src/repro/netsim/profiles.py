"""Path-condition models beyond the paper's WAN: datacenter, cellular.

The paper's evaluation (and :mod:`repro.workload`'s ``PathProfile``)
describes wide-area paths: tens of milliseconds of RTT, bufferbloat
jitter, Bernoulli + burst loss.  The policy tournament
(:mod:`repro.matrix`) needs the two environments its extra contenders
were designed for:

* :class:`DatacenterPath` — µs-scale RTT, GBit rates, shallow switch
  buffers, and *synchronized* incast loss bursts
  (:class:`~repro.netsim.loss.IncastBurstLoss`).  The defining property
  is RTO >= 200 ms on a path whose RTT is ~300 µs: any recovery that
  waits for the RTO costs three orders of magnitude.
* :class:`CellularPath` — high-variance RTT (log-normal base + deep
  bufferbloat random walk), a large last-mile queue, mostly
  non-congestive radio loss, and idle->active radio promotion latency
  (:class:`~repro.netsim.loss.RadioWakeJitter`).

Both classes duck-type the ``PathProfile`` contract that
:func:`repro.workload.generator.generate_flows` relies on — a
``make_path(rng) -> PathConfig`` method plus ``cached_rttvar_low`` /
``cached_rttvar_high`` attributes — so a workload profile can be
re-pathed with ``dataclasses.replace(profile, path=DatacenterPath())``
without the workload layer knowing anything about path models.  This
module deliberately does *not* import :mod:`repro.workload`; the
dependency points the other way.

:data:`PATH_MODELS` maps scenario names to factories; ``None`` marks
the sentinel ``wan`` scenario, meaning "keep the workload profile's
own path" (which is what makes the matrix's WAN cells byte-identical
to Table 8/9).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .link import PathConfig
from .loss import (
    BernoulliLoss,
    CompositeJitter,
    CompositeLoss,
    IncastBurstLoss,
    RadioWakeJitter,
    RandomWalkJitter,
    TimedBurstLoss,
    UniformJitter,
)


@dataclass
class DatacenterPath:
    """Intra-datacenter path: µs RTT, shallow buffer, incast bursts.

    ``queue_limit`` is the shallow shared switch buffer (packets);
    ``incast_interval`` / ``incast_min`` / ``incast_max`` parameterize
    the synchronized loss epochs.  Defaults are tuned so that a burst
    takes out the *front* of a short flow's window — too few survivors
    to reach ``dupthres`` — which is the stall T-RACKs exists to fix.
    """

    rtt_low: float = 0.0002
    rtt_high: float = 0.0008
    rate_bps: float = 1e9
    queue_limit: int = 64
    incast_interval: float = 0.05
    incast_min: int = 2
    incast_max: int = 4
    ack_loss_rate: float = 0.0005
    jitter_max: float = 0.0002
    #: Cached per-destination RTT variance seeding the server's RTO.
    #: Deliberately *WAN-scale*: production metric caches aggregate
    #: across path classes, which is exactly why the kernel's seeded
    #: RTO starts out ~1000x the datacenter RTT.
    cached_rttvar_low: float = 0.0005
    cached_rttvar_high: float = 0.002

    def make_path(self, rng: random.Random) -> PathConfig:
        rtt = rng.uniform(self.rtt_low, self.rtt_high)
        return PathConfig(
            delay=rtt / 2,
            rate_bps=self.rate_bps,
            queue_limit=self.queue_limit,
            data_loss=IncastBurstLoss(
                mean_interval=self.incast_interval,
                burst_min=self.incast_min,
                burst_max=self.incast_max,
            ),
            ack_loss=BernoulliLoss(self.ack_loss_rate),
            data_jitter=UniformJitter(self.jitter_max),
            ack_jitter=UniformJitter(self.jitter_max),
        )


@dataclass
class CellularPath:
    """Cellular last mile: high-variance RTT, bufferbloat, radio wake.

    The base RTT is log-normal (median ``exp(rtt_mu)`` seconds) and a
    deep random-walk queue adds up to ``walk_max`` seconds on top —
    the combination keeps RTTVAR, and hence the kernel RTO, inflated.
    Radio promotions (:class:`~repro.netsim.loss.RadioWakeJitter`)
    delay the first packet after any ``radio_idle`` quiet period.
    Loss is light and mostly non-congestive: Bernoulli radio loss plus
    occasional handover outage bursts.
    """

    rtt_mu: float = -2.8  # exp(-2.8) ~ 61 ms median base RTT
    rtt_sigma: float = 0.35
    rate_low: float = 2e6
    rate_high: float = 8e6
    queue_limit: int = 256
    data_loss_rate: float = 0.012
    handover_mean_good: float = 12.0
    handover_mean_bad: float = 0.25
    ack_loss_rate: float = 0.012
    walk_max: float = 0.6
    walk_volatility: float = 0.15
    radio_idle: float = 1.5
    promo_low: float = 0.2
    promo_high: float = 1.0
    cached_rttvar_low: float = 0.3
    cached_rttvar_high: float = 0.8

    def make_path(self, rng: random.Random) -> PathConfig:
        rtt = max(0.02, rng.lognormvariate(self.rtt_mu, self.rtt_sigma))
        rate = rng.uniform(self.rate_low, self.rate_high)
        return PathConfig(
            delay=rtt / 2,
            rate_bps=rate,
            queue_limit=self.queue_limit,
            data_loss=CompositeLoss(
                BernoulliLoss(self.data_loss_rate),
                TimedBurstLoss(
                    mean_good=self.handover_mean_good,
                    mean_bad=self.handover_mean_bad,
                ),
            ),
            ack_loss=BernoulliLoss(self.ack_loss_rate),
            data_jitter=CompositeJitter(
                RandomWalkJitter(
                    max_delay=self.walk_max, volatility=self.walk_volatility
                ),
                RadioWakeJitter(
                    idle_threshold=self.radio_idle,
                    promo_low=self.promo_low,
                    promo_high=self.promo_high,
                ),
            ),
            ack_jitter=RandomWalkJitter(
                max_delay=self.walk_max / 3,
                volatility=self.walk_volatility / 2,
            ),
        )


#: Scenario name -> path-model factory.  ``None`` is the sentinel for
#: "use the workload profile's own (WAN) path" — see module docstring.
PATH_MODELS: dict[str, type | None] = {
    "wan": None,
    "datacenter": DatacenterPath,
    "cellular": CellularPath,
}


def make_path_model(name: str):
    """Instantiate the path model registered under ``name``.

    Returns ``None`` for the ``wan`` sentinel.  Raises ``ValueError``
    with the registered list for unknown names (mirrors
    :meth:`repro.tcp.policies.PolicyRegistry.get`).
    """
    try:
        factory = PATH_MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown path scenario {name!r}; choose from {sorted(PATH_MODELS)}"
        ) from None
    return None if factory is None else factory()
