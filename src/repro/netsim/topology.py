"""Shared-bottleneck topology: several connections over one queue.

The point-to-point :class:`~repro.netsim.link.Link` serves the per-flow
experiments; fairness questions (does S-RTO steal bandwidth from native
flows? — the paper's Sec. 5.2 claim) need competing connections that
*share* a bottleneck.  A :class:`SharedBottleneck` owns one forward and
one reverse link whose sinks dispatch packets to the registered
endpoint for the destination address, so all attached connections
contend for the same serialization capacity and queue.
"""

from __future__ import annotations

import random
from collections.abc import Callable

from ..packet.packet import PacketRecord
from .engine import EventLoop
from .link import Link
from .loss import JitterModel, LossModel

Address = tuple[int, int]


class Dispatcher:
    """Routes delivered packets to the endpoint owning the address."""

    def __init__(self) -> None:
        self._routes: dict[Address, Callable[[PacketRecord], None]] = {}
        self.unrouted = 0

    def register(
        self, address: Address, sink: Callable[[PacketRecord], None]
    ) -> None:
        if address in self._routes:
            raise ValueError(f"address {address} already registered")
        self._routes[address] = sink

    def __call__(self, pkt: PacketRecord) -> None:
        sink = self._routes.get((pkt.dst_ip, pkt.dst_port))
        if sink is None:
            self.unrouted += 1
            return
        sink(pkt)


class SharedBottleneck:
    """One bottleneck shared by many client/server endpoint pairs.

    ``forward`` carries server -> clients traffic; ``reverse`` carries
    clients -> server traffic.  Register each endpoint's receive
    callback under its (ip, port) and hand the endpoints the matching
    link via ``attach_link``.
    """

    def __init__(
        self,
        engine: EventLoop,
        delay: float = 0.05,
        rate_bps: float | None = 10e6,
        queue_limit: int = 64,
        data_loss: LossModel | None = None,
        ack_loss: LossModel | None = None,
        data_jitter: JitterModel | None = None,
        ack_jitter: JitterModel | None = None,
        rng: random.Random | None = None,
    ):
        self.engine = engine
        self.to_clients = Dispatcher()
        self.to_server = Dispatcher()
        rng = rng or random.Random(0)
        self.forward = Link(
            engine,
            self.to_clients,
            delay=delay,
            rate_bps=rate_bps,
            queue_limit=queue_limit,
            loss=data_loss,
            jitter=data_jitter,
            rng=rng,
            name="shared-data",
        )
        self.reverse = Link(
            engine,
            self.to_server,
            delay=delay,
            rate_bps=rate_bps,
            queue_limit=queue_limit,
            loss=ack_loss,
            jitter=ack_jitter,
            rng=rng,
            name="shared-ack",
        )

    def register_client(
        self, address: Address, sink: Callable[[PacketRecord], None]
    ) -> Link:
        """Register a client; returns its outgoing (reverse) link."""
        self.to_clients.register(address, sink)
        return self.reverse

    def register_server(
        self, address: Address, sink: Callable[[PacketRecord], None]
    ) -> Link:
        """Register a server; returns its outgoing (forward) link."""
        self.to_server.register(address, sink)
        return self.forward
