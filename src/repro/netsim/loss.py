"""Packet loss and delay-variation models.

The paper's stall taxonomy needs several distinct network behaviours:

* random isolated drops (drive fast-retransmit, double retransmission),
* bursty drops that take out a whole window (continuous-loss stalls,
  Sec. 4.3 / Fig. 12) — modelled with a Gilbert-Elliott chain,
* one-way delay jitter and reordering (packet-delay stalls, spurious
  retransmissions),
* ACK-direction loss (ACK delay/loss stalls).

All models draw from an injected :class:`random.Random` so experiments
are reproducible from a single seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass


class LossModel:
    """Decides, per packet, whether the network drops it.

    ``now`` is the simulation clock; time-based models (bursts with a
    duration in seconds) need it.  ``pkt`` is the packet under
    consideration — stochastic models ignore it, but scripted models
    (tests, the Fig. 2 scenario) can target specific segments.
    """

    def should_drop(self, rng: random.Random, now: float = 0.0, pkt=None) -> bool:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget any internal state (e.g. burst phase)."""


@dataclass
class NoLoss(LossModel):
    """A perfect link."""

    def should_drop(self, rng: random.Random, now: float = 0.0, pkt=None) -> bool:
        return False


@dataclass
class BernoulliLoss(LossModel):
    """Independent drops with fixed probability ``rate``."""

    rate: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"loss rate {self.rate} outside [0, 1]")

    def should_drop(self, rng: random.Random, now: float = 0.0, pkt=None) -> bool:
        return rng.random() < self.rate


class GilbertElliottLoss(LossModel):
    """Two-state burst-loss chain.

    In the *good* state packets drop with probability ``good_loss``
    (usually ~0); in the *bad* state with ``bad_loss`` (near 1, which
    is what wipes out a whole in-flight window at once).  ``p_gb`` and
    ``p_bg`` are the per-packet transition probabilities good->bad and
    bad->good.
    """

    def __init__(
        self,
        p_gb: float,
        p_bg: float,
        good_loss: float = 0.0,
        bad_loss: float = 1.0,
    ):
        for name, value in (
            ("p_gb", p_gb),
            ("p_bg", p_bg),
            ("good_loss", good_loss),
            ("bad_loss", bad_loss),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name}={value} outside [0, 1]")
        self.p_gb = p_gb
        self.p_bg = p_bg
        self.good_loss = good_loss
        self.bad_loss = bad_loss
        self._bad = False

    def should_drop(self, rng: random.Random, now: float = 0.0, pkt=None) -> bool:
        if self._bad:
            if rng.random() < self.p_bg:
                self._bad = False
        else:
            if rng.random() < self.p_gb:
                self._bad = True
        rate = self.bad_loss if self._bad else self.good_loss
        return rng.random() < rate

    def reset(self) -> None:
        self._bad = False

    def steady_state_loss(self) -> float:
        """Long-run average drop probability of the chain."""
        if self.p_gb == 0 and self.p_bg == 0:
            return self.good_loss
        pi_bad = self.p_gb / (self.p_gb + self.p_bg)
        return pi_bad * self.bad_loss + (1 - pi_bad) * self.good_loss


class TimedBurstLoss(LossModel):
    """Burst loss with *time-based* state sojourns.

    The link alternates between a good state (loss ``good_loss``) and a
    bad state (loss ``bad_loss``) whose durations are exponential with
    means ``mean_good`` / ``mean_bad`` seconds.  Unlike the per-packet
    Gilbert-Elliott chain, an outage here ends after a bounded wall-
    clock time, so a sender probing once per RTO escapes the burst —
    matching how real congestion episodes behave.  Bursts of
    ~100-300 ms are what take out a whole in-flight window at once
    (the paper's *continuous loss* stalls, Fig. 12).
    """

    def __init__(
        self,
        mean_good: float = 20.0,
        mean_bad: float = 0.15,
        good_loss: float = 0.0,
        bad_loss: float = 0.9,
    ):
        if mean_good <= 0 or mean_bad <= 0:
            raise ValueError("state durations must be positive")
        for name, value in (("good_loss", good_loss), ("bad_loss", bad_loss)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name}={value} outside [0, 1]")
        self.mean_good = mean_good
        self.mean_bad = mean_bad
        self.good_loss = good_loss
        self.bad_loss = bad_loss
        self._bad = False
        self._next_transition: float | None = None

    def _advance(self, rng: random.Random, now: float) -> None:
        if self._next_transition is None:
            self._next_transition = now + rng.expovariate(1 / self.mean_good)
        while now >= self._next_transition:
            self._bad = not self._bad
            if self._bad:
                # Bounded burst length: long enough to swallow a fast
                # retransmission one RTT later, never long enough to
                # outlast an RTO backoff cascade.
                sojourn = rng.uniform(0.3 * self.mean_bad, 1.7 * self.mean_bad)
            else:
                sojourn = rng.expovariate(1 / self.mean_good)
            self._next_transition += sojourn

    def should_drop(self, rng: random.Random, now: float = 0.0, pkt=None) -> bool:
        self._advance(rng, now)
        rate = self.bad_loss if self._bad else self.good_loss
        return rng.random() < rate

    def reset(self) -> None:
        self._bad = False
        self._next_transition = None

    def steady_state_loss(self) -> float:
        """Long-run average drop probability."""
        pi_bad = self.mean_bad / (self.mean_good + self.mean_bad)
        return pi_bad * self.bad_loss + (1 - pi_bad) * self.good_loss


class ScriptedDrop(LossModel):
    """Deterministically drop chosen data segments (tests, figures).

    ``first_tx_indices`` selects segments by the order of their *first*
    transmission over this link (0-based, counting only packets with
    payload).  Each selected segment is dropped ``1 + extra_drops``
    times — ``extra_drops=1`` also kills its first retransmission,
    which manufactures the paper's double-retransmission stalls.
    """

    def __init__(self, first_tx_indices, extra_drops: int = 0):
        self.first_tx_indices = set(first_tx_indices)
        self.extra_drops = extra_drops
        self._order: dict[int, int] = {}
        self._drops_left: dict[int, int] = {}

    def should_drop(self, rng: random.Random, now: float = 0.0, pkt=None) -> bool:
        if pkt is None or pkt.payload_len == 0:
            return False
        if pkt.seq not in self._order:
            index = len(self._order)
            self._order[pkt.seq] = index
            if index in self.first_tx_indices:
                self._drops_left[pkt.seq] = 1 + self.extra_drops
        if self._drops_left.get(pkt.seq, 0) > 0:
            self._drops_left[pkt.seq] -= 1
            return True
        return False

    def reset(self) -> None:
        self._order.clear()
        self._drops_left.clear()


class IncastBurstLoss(LossModel):
    """Synchronized incast drops a few packets into a burst.

    Data-center incast (many servers answering one aggregator at once)
    overflows the shallow switch buffer a few packets *into* the
    synchronized burst: the front of each flow's window is queued
    while the buffer still has room, then the fan-in collides and the
    next packets are lost together.  The model schedules loss epochs
    with exponential inter-arrival ``mean_interval`` seconds; once a
    flow hits an armed epoch, its first ``skip_min``..``skip_max``
    payload packets pass (buffer still filling), the following
    ``burst_min``..``burst_max`` are dropped, and the link is clean
    again until the next epoch.

    The resulting signature is what T-RACKs targets: a short flow
    loses packets near the *tail* of its window, at most a couple of
    segments arrive behind the hole — duplicate ACKs below
    ``dupthres`` — and a native sender has nothing left to do but wait
    out a 200 ms-floored RTO on a sub-millisecond path.
    """

    def __init__(
        self,
        mean_interval: float = 0.05,
        burst_min: int = 2,
        burst_max: int = 4,
        skip_min: int = 2,
        skip_max: int = 6,
    ):
        if mean_interval <= 0:
            raise ValueError("mean_interval must be positive")
        if not 1 <= burst_min <= burst_max:
            raise ValueError("need 1 <= burst_min <= burst_max")
        if not 0 <= skip_min <= skip_max:
            raise ValueError("need 0 <= skip_min <= skip_max")
        self.mean_interval = mean_interval
        self.burst_min = burst_min
        self.burst_max = burst_max
        self.skip_min = skip_min
        self.skip_max = skip_max
        self._next_epoch: float | None = None
        self._skip_left = 0
        self._drops_left = 0

    def should_drop(self, rng: random.Random, now: float = 0.0, pkt=None) -> bool:
        if self._next_epoch is None:
            self._next_epoch = now + rng.expovariate(1 / self.mean_interval)
        burst = False
        # Catch up over idle gaps: epochs with no traffic dropped
        # nothing, so only the most recent one arms a burst.
        while now >= self._next_epoch:
            burst = True
            self._next_epoch += rng.expovariate(1 / self.mean_interval)
        if burst:
            self._skip_left = rng.randint(self.skip_min, self.skip_max)
            self._drops_left = rng.randint(self.burst_min, self.burst_max)
        if pkt is not None and pkt.payload_len == 0:
            return False
        if self._skip_left > 0:
            self._skip_left -= 1
            return False
        if self._drops_left > 0:
            self._drops_left -= 1
            return True
        return False

    def reset(self) -> None:
        self._next_epoch = None
        self._skip_left = 0
        self._drops_left = 0


class CompositeLoss(LossModel):
    """Union of several loss models (drop when any model drops)."""

    def __init__(self, *models: LossModel):
        self.models = list(models)

    def should_drop(self, rng: random.Random, now: float = 0.0, pkt=None) -> bool:
        dropped = False
        # Evaluate every model so each consumes its randomness
        # deterministically regardless of the others' outcomes.
        for model in self.models:
            if model.should_drop(rng, now, pkt):
                dropped = True
        return dropped

    def reset(self) -> None:
        for model in self.models:
            model.reset()


class JitterModel:
    """Adds a random extra one-way delay to each packet.

    ``now`` is the simulation clock, used by time-correlated models.
    """

    def extra_delay(self, rng: random.Random, now: float = 0.0) -> float:
        raise NotImplementedError


@dataclass
class NoJitter(JitterModel):
    def extra_delay(self, rng: random.Random, now: float = 0.0) -> float:
        return 0.0


@dataclass
class UniformJitter(JitterModel):
    """Uniform jitter in ``[0, max_jitter]`` seconds."""

    max_jitter: float

    def extra_delay(self, rng: random.Random, now: float = 0.0) -> float:
        return rng.uniform(0.0, self.max_jitter)


class RandomWalkJitter(JitterModel):
    """Slowly-varying extra delay: cross-traffic queueing.

    The extra one-way delay follows a reflected Gaussian random walk in
    ``[floor, max_delay]`` whose step scales with the square root of
    elapsed time.  This reproduces the bufferbloat-era access links the
    paper measured: the *minimum* RTT stays low, but the RTT wanders by
    hundreds of milliseconds over seconds, inflating RTTVAR and hence
    the very conservative RTOs of Fig. 1 (RTO an order of magnitude
    above the RTT for 40% of flows), and occasionally producing pure
    *packet delay* stalls with no loss at all (the paper's Fig. 2).
    """

    def __init__(
        self,
        max_delay: float = 0.5,
        volatility: float = 0.12,
        floor: float = 0.0,
        start_fraction: float = 0.25,
    ):
        if max_delay <= 0 or volatility < 0:
            raise ValueError("max_delay must be positive, volatility >= 0")
        self.max_delay = max_delay
        self.volatility = volatility
        self.floor = floor
        self.start_fraction = start_fraction
        self._current: float | None = None
        self._last_time = 0.0

    def extra_delay(self, rng: random.Random, now: float = 0.0) -> float:
        if self._current is None:
            self._current = self.floor + rng.uniform(
                0.0, self.max_delay * self.start_fraction
            )
            self._last_time = now
            return self._current
        dt = max(0.0, min(now - self._last_time, 5.0))
        self._last_time = now
        if dt > 0:
            step = rng.gauss(0.0, self.volatility * math.sqrt(dt))
            value = self._current + step
            # Reflect at the boundaries to avoid sticking at the edges.
            if value > self.max_delay:
                value = 2 * self.max_delay - value
            if value < self.floor:
                value = 2 * self.floor - value
            self._current = min(self.max_delay, max(self.floor, value))
        return self._current

    def reset(self) -> None:
        self._current = None


class CompositeJitter(JitterModel):
    """Sum of several jitter models (e.g. random walk + spikes)."""

    def __init__(self, *models: JitterModel):
        self.models = list(models)

    def extra_delay(self, rng: random.Random, now: float = 0.0) -> float:
        return sum(model.extra_delay(rng, now) for model in self.models)


@dataclass
class SpikeJitter(JitterModel):
    """Mostly-quiet jitter with occasional large delay spikes.

    With probability ``spike_prob`` a packet is held for an extra
    delay drawn uniformly from ``[spike_low, spike_high]``; otherwise
    uniform jitter in ``[0, base_jitter]`` applies.  Spikes between the
    stall threshold and the RTO produce the paper's *packet delay*
    stalls; spikes beyond the RTO trigger spurious retransmissions
    (*ACK delay/loss* stalls) without any actual loss.
    """

    base_jitter: float = 0.002
    spike_prob: float = 0.001
    spike_low: float = 0.2
    spike_high: float = 0.6

    def extra_delay(self, rng: random.Random, now: float = 0.0) -> float:
        if rng.random() < self.spike_prob:
            return rng.uniform(self.spike_low, self.spike_high)
        return rng.uniform(0.0, self.base_jitter)


class RadioWakeJitter(JitterModel):
    """Cellular radio idle->active promotion latency.

    A cellular modem drops from DCH/active to an idle state after
    ``idle_threshold`` seconds without traffic; the next packet then
    pays a state-promotion delay of hundreds of milliseconds to
    seconds (RRC signalling) before the bearer is up again.  The first
    packet of a flow, and the first packet after any sufficiently long
    quiet gap, is delayed by ``uniform(promo_low, promo_high)``;
    packets on a warm radio pass untouched.

    For the recovery policies this is pure RTT *variance*: the first
    RTT sample of a flow can be 10x the path RTT, which both seeds the
    RTO absurdly high and — when the promotion hits mid-flow — looks
    exactly like a loss to any policy with a non-adaptive probe timer.
    """

    def __init__(
        self,
        idle_threshold: float = 2.0,
        promo_low: float = 0.2,
        promo_high: float = 1.2,
    ):
        if idle_threshold <= 0:
            raise ValueError("idle_threshold must be positive")
        if not 0.0 <= promo_low <= promo_high:
            raise ValueError("need 0 <= promo_low <= promo_high")
        self.idle_threshold = idle_threshold
        self.promo_low = promo_low
        self.promo_high = promo_high
        self._last_activity: float | None = None

    def extra_delay(self, rng: random.Random, now: float = 0.0) -> float:
        idle = (
            self._last_activity is None
            or now - self._last_activity >= self.idle_threshold
        )
        self._last_activity = now
        if idle:
            return rng.uniform(self.promo_low, self.promo_high)
        return 0.0

    def reset(self) -> None:
        self._last_activity = None
