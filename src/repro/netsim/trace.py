"""Capture taps.

A :class:`CaptureTap` sits at the server's NIC and records every packet
the server sends or receives, stamped with the simulation clock — the
same vantage point as the tcpdump captures the paper's dataset comes
from.  The tap yields :class:`~repro.packet.packet.PacketRecord`
objects directly and can also spill to a pcap file.
"""

from __future__ import annotations

from pathlib import Path

from ..packet.packet import PacketRecord
from ..packet.pcap import PcapWriter
from .engine import EventLoop


class CaptureTap:
    """Records packets crossing a capture point."""

    def __init__(self, engine: EventLoop, pcap_path: str | Path | None = None):
        self.engine = engine
        self.packets: list[PacketRecord] = []
        self._writer = PcapWriter(pcap_path) if pcap_path else None

    def capture(self, pkt: PacketRecord) -> PacketRecord:
        """Record ``pkt`` at the current simulation time.

        Returns the stamped copy so callers can forward it.
        """
        stamped = pkt.copy(timestamp=self.engine.now)
        self.packets.append(stamped)
        if self._writer is not None:
            self._writer.write(stamped)
        return stamped

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def __len__(self) -> int:
        return len(self.packets)
