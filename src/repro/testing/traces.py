"""Seedable random server-side traces for parity and property tests.

:func:`generate_trace` produces a time-ordered packet stream of many
interleaved TCP flows with a deterministic mix of the behaviours that
matter to the analyzer: clean request/response exchanges, stalls
(gaps over the detection threshold), retransmissions with duplicate
ACKs and SACK blocks, zero-window episodes, handshake option variants
(timestamps, window scaling, MSS), sequence numbers starting near the
32-bit wrap, flows captured mid-connection (no SYN), and RST/FIN/no
close endings.  The same seed always yields the same packets, so a
test can assert byte-identical output across pipelines (columnar
versus object) or across runs.

Timestamps are quantized to whole microseconds so a trace survives a
pcap round-trip (classic pcap stores µs) without changing any float.
"""

from __future__ import annotations

import random

from ..packet.headers import FLAG_ACK, FLAG_FIN, FLAG_RST, FLAG_SYN
from ..packet.options import TCPOptions
from ..packet.packet import PacketRecord
from ..tcp.constants import ts_now

_SEQ_MASK = 0xFFFFFFFF

#: Server endpoint every generated flow talks to.
SERVER_IP = 0x0A00_0001
SERVER_PORT = 80


def _quantize(t: float) -> float:
    """Round to whole microseconds (classic-pcap precision)."""
    return round(t * 1_000_000) / 1_000_000


class _FlowBuilder:
    """Emits one flow's packets, server-oriented, in time order."""

    def __init__(self, rng: random.Random, start: float, index: int):
        self.rng = rng
        self.t = start
        self.client_ip = 0xC0A8_0000 + rng.randrange(1, 0xFFFF)
        self.client_port = rng.randrange(1024, 0xFFFF)
        self.rtt = rng.uniform(0.01, 0.08)
        self.mss = rng.choice((536, 1000, 1448))
        self.use_ts = rng.random() < 0.5
        self.wscale = rng.choice((0, 0, 2, 7))
        # Raw 16-bit header field; the scaled value is window << wscale.
        self.window = min(0xFFFF, rng.randrange(4, 64) * self.mss >> self.wscale)
        # Start some flows within one window of the 32-bit wrap so the
        # raw uint32 columns must wrap mid-flow.
        if index % 5 == 1:
            self.isn_s = (_SEQ_MASK - rng.randrange(1, 4) * self.mss) & _SEQ_MASK
        else:
            self.isn_s = rng.getrandbits(32)
        self.isn_c = rng.getrandbits(32)
        self.seq_s = (self.isn_s + 1) & _SEQ_MASK
        self.seq_c = (self.isn_c + 1) & _SEQ_MASK
        self.rcv_nxt = self.seq_s  # client's next expected server seq
        self.packets: list[PacketRecord] = []

    # -- low-level emit -------------------------------------------------
    def _emit(self, src_is_server: bool, seq: int, ack: int, flags: int,
              payload: int = 0, window: int | None = None,
              options: TCPOptions | None = None) -> None:
        if options is None:
            options = self._options(src_is_server)
        if src_is_server:
            src, sport = SERVER_IP, SERVER_PORT
            dst, dport = self.client_ip, self.client_port
        else:
            src, sport = self.client_ip, self.client_port
            dst, dport = SERVER_IP, SERVER_PORT
        self.packets.append(
            PacketRecord(
                timestamp=_quantize(self.t),
                src_ip=src,
                dst_ip=dst,
                src_port=sport,
                dst_port=dport,
                seq=seq & _SEQ_MASK,
                ack=ack & _SEQ_MASK,
                flags=flags,
                window=window if window is not None else self.window,
                payload_len=payload,
                options=options,
            )
        )

    def _options(self, src_is_server: bool) -> TCPOptions:
        if not self.use_ts:
            return TCPOptions()
        val = ts_now(self.t)
        ecr = ts_now(self.t - self.rtt) if src_is_server else ts_now(
            self.t - self.rtt / 2
        )
        return TCPOptions(ts_val=val, ts_ecr=ecr)

    def _advance(self, lo: float, hi: float) -> None:
        self.t += self.rng.uniform(lo, hi)

    # -- protocol pieces --------------------------------------------------
    def handshake(self) -> None:
        syn_opts = TCPOptions(
            mss=self.mss,
            wscale=self.wscale or None,
            ts_val=ts_now(self.t) if self.use_ts else None,
        )
        self._emit(False, self.isn_c, 0, FLAG_SYN, options=syn_opts)
        self.t += self.rtt / 2
        self._emit(
            True, self.isn_s, self.seq_c, FLAG_SYN | FLAG_ACK,
            options=TCPOptions(
                mss=1448,
                wscale=self.wscale or None,
                ts_val=ts_now(self.t) if self.use_ts else None,
            ),
        )
        self.t += self.rtt / 2
        self._emit(False, self.seq_c, self.seq_s, FLAG_ACK)

    def request(self, size: int | None = None) -> None:
        self._advance(0.001, 0.01)
        size = size if size is not None else self.rng.randrange(80, 400)
        self._emit(False, self.seq_c, self.rcv_nxt, FLAG_ACK, payload=size)
        self.seq_c = (self.seq_c + size) & _SEQ_MASK

    def _client_ack(self, sack: list[tuple[int, int]] | None = None,
                    window: int | None = None) -> None:
        opts = self._options(False)
        if sack:
            opts = TCPOptions(
                ts_val=opts.ts_val, ts_ecr=opts.ts_ecr, sack_blocks=sack
            )
        self._emit(
            False, self.seq_c, self.rcv_nxt, FLAG_ACK,
            window=window, options=opts,
        )

    def respond(self, segments: int, lose: int | None = None) -> None:
        """Server sends ``segments`` MSS segments ``rtt/2`` apart; the
        client acks each delivered one.  ``lose`` drops that segment
        (0-based) from the capture until a timeout retransmission,
        generating dupacks with SACK while the hole is open."""
        lost_seq = None
        sacked: list[tuple[int, int]] = []
        for i in range(segments):
            self._advance(0.0005, 0.004)
            seq = self.seq_s
            self.seq_s = (self.seq_s + self.mss) & _SEQ_MASK
            if i == lose:
                lost_seq = seq  # dropped on the wire: not captured
                continue
            self._emit(True, seq, self.seq_c, FLAG_ACK, payload=self.mss)
            self.t += self.rtt / 2
            if lost_seq is None:
                self.rcv_nxt = (seq + self.mss) & _SEQ_MASK
                self._client_ack()
            else:
                # Hole open: duplicate ACK, SACKing this segment.
                end = (seq + self.mss) & _SEQ_MASK
                if sacked and sacked[-1][1] == seq:
                    sacked[-1] = (sacked[-1][0], end)
                else:
                    sacked.append((seq, end))
                self._client_ack(sack=list(reversed(sacked)))
            self.t -= self.rtt / 2
        if lost_seq is not None:
            # Timeout retransmission of the hole, then a cumulative ACK.
            self.t += max(0.25, 3 * self.rtt)
            self._emit(True, lost_seq, self.seq_c, FLAG_ACK, payload=self.mss)
            self.t += self.rtt / 2
            self.rcv_nxt = self.seq_s
            self._client_ack()
            self.t -= self.rtt / 2
        self.t += self.rtt / 2

    def stall(self) -> None:
        """An idle gap over any plausible detection threshold."""
        self.t += self.rng.uniform(1.0, 3.0)

    def zero_window(self) -> None:
        """Client closes its window, later reopens it."""
        self._advance(0.001, 0.01)
        self._client_ack(window=0)
        self.t += self.rng.uniform(0.3, 0.8)
        self._client_ack()

    def close(self) -> None:
        kind = self.rng.random()
        self._advance(0.001, 0.02)
        if kind < 0.2:
            self._emit(True, self.seq_s, self.seq_c, FLAG_RST | FLAG_ACK)
            return
        if kind < 0.9:
            self._emit(True, self.seq_s, self.seq_c, FLAG_FIN | FLAG_ACK)
            self.seq_s = (self.seq_s + 1) & _SEQ_MASK
            self.t += self.rtt / 2
            self._emit(
                False, self.seq_c, self.seq_s, FLAG_FIN | FLAG_ACK
            )
            self.seq_c = (self.seq_c + 1) & _SEQ_MASK
            self.t += self.rtt / 2
            self._emit(True, self.seq_s, self.seq_c, FLAG_ACK)
        # else: left open (finalized at end of stream)

    def build(self) -> list[PacketRecord]:
        rng = self.rng
        if rng.random() < 0.12:
            # Captured mid-connection: no handshake, data right away
            # (the demuxer must infer the server by data volume).
            self.rcv_nxt = self.seq_s
            for _ in range(rng.randrange(2, 6)):
                self._advance(0.001, 0.01)
                self._emit(True, self.seq_s, self.seq_c, FLAG_ACK,
                           payload=self.mss)
                self.seq_s = (self.seq_s + self.mss) & _SEQ_MASK
                self.t += self.rtt / 2
                self.rcv_nxt = self.seq_s
                self._client_ack()
                self.t -= self.rtt / 2
            return self.packets
        self.handshake()
        for _ in range(rng.randrange(1, 4)):
            self.request()
            segments = rng.randrange(2, 9)
            shape = rng.random()
            if shape < 0.45:
                self.respond(segments)  # clean
            elif shape < 0.7:
                self.respond(segments, lose=rng.randrange(segments))
            else:
                self.respond(max(1, segments // 2))
                self.stall()
                self.respond(segments - segments // 2 or 1)
            if rng.random() < 0.15:
                self.zero_window()
        self.close()
        return self.packets


def generate_trace(
    seed: int, flows: int = 20, start: float = 1000.0
) -> list[PacketRecord]:
    """One deterministic multi-flow server-side capture, time-ordered."""
    rng = random.Random(seed)
    packets: list[PacketRecord] = []
    for index in range(flows):
        flow_start = start + rng.uniform(0.0, 5.0)
        builder = _FlowBuilder(
            random.Random(rng.getrandbits(64)), flow_start, index
        )
        packets.extend(builder.build())
    packets.sort(key=lambda record: record.timestamp)
    return packets
