"""Seedable fault-injection harness.

Every injector is deterministic given its ``seed``: the same seed
produces the same corrupted bytes, the same crashing flows, and the
same worker deaths, so recovery tests are reproducible and CI can run
a fixed seed matrix.

Injection points mirror the failure domains the robustness layer
covers:

==============================  =====================================
injector                        exercises
==============================  =====================================
:func:`corrupt_pcap_bytes`      raw byte damage (fuzzing primitive)
:func:`corrupt_pcap_records`    record-aware framing damage →
                                :class:`~repro.packet.pcap.PcapReader`
                                resync / skip-and-count
:func:`inject_flow_crash`       analyzer crashes → per-flow
                                quarantine into
                                :class:`~repro.errors.SkippedFlow`
:func:`kill_worker_once`        worker process death → pool retry
                                with backoff
:func:`corrupt_cache_entry`     cache damage → corruption-as-miss
==============================  =====================================

Process-crossing injectors (:func:`inject_flow_crash`,
:func:`kill_worker_once`) work by setting module-level hooks that
fork-based worker pools inherit; both are context managers that always
restore the previous hook.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import random
import struct
from dataclasses import dataclass, field
from pathlib import Path

_GLOBAL_HEADER_LEN = 24
_RECORD_HEADER = struct.Struct("<IIII")

#: ``incl_len`` value planted by the ``length`` damage mode — far over
#: the reader's ``_MAX_RECORD_BYTES`` bound, so framing recovery (not
#: packet decoding) must handle it.
_BOGUS_INCL_LEN = 0x00FF_FFFF


@dataclass
class FaultPlan:
    """What :func:`corrupt_pcap_records` did to a capture file."""

    seed: int
    records_total: int = 0
    damaged: list[int] = field(default_factory=list)  # record indices
    modes: list[str] = field(default_factory=list)    # mode per index

    @property
    def records_damaged(self) -> int:
        return len(self.damaged)

    def describe(self) -> str:
        pairs = ", ".join(
            f"#{index}:{mode}"
            for index, mode in zip(self.damaged, self.modes)
        )
        return (
            f"seed {self.seed}: damaged {self.records_damaged}/"
            f"{self.records_total} records ({pairs})"
        )


def corrupt_pcap_bytes(
    data: bytes,
    seed: int,
    flips: int = 0,
    truncate_to: int | None = None,
    skip_global_header: bool = True,
) -> bytes:
    """Fuzzing primitive: flip ``flips`` random bits, then truncate.

    Bit positions are drawn from ``random.Random(seed)``.  With
    ``skip_global_header`` (default) the 24-byte pcap global header is
    left intact so the damage lands in record space — flipping the
    magic just makes every budget reject the file at open, which is a
    separate (and far less interesting) test.
    """
    rng = random.Random(seed)
    out = bytearray(data)
    lo = _GLOBAL_HEADER_LEN if skip_global_header else 0
    if len(out) > lo:
        for _ in range(flips):
            pos = rng.randrange(lo, len(out))
            out[pos] ^= 1 << rng.randrange(8)
    if truncate_to is not None:
        del out[max(0, truncate_to):]
    return bytes(out)


def _iter_record_spans(data: bytes) -> list[tuple[int, int]]:
    """(header_offset, incl_len) for each record of a classic pcap."""
    spans: list[tuple[int, int]] = []
    offset = _GLOBAL_HEADER_LEN
    while offset + _RECORD_HEADER.size <= len(data):
        incl_len = _RECORD_HEADER.unpack_from(data, offset)[2]
        if offset + _RECORD_HEADER.size + incl_len > len(data):
            break
        spans.append((offset, incl_len))
        offset += _RECORD_HEADER.size + incl_len
    return spans


#: Damage modes applied round-robin by :func:`corrupt_pcap_records`.
DAMAGE_MODES = ("length", "zero_header", "flip_body", "garbage_body")


def corrupt_pcap_records(
    src: str | Path,
    dst: str | Path,
    fraction: float = 0.01,
    seed: int = 0,
    modes: tuple[str, ...] = DAMAGE_MODES,
) -> FaultPlan:
    """Damage a deterministic ~``fraction`` of the records in ``src``.

    Writes the corrupted capture to ``dst`` and returns the
    :class:`FaultPlan` describing exactly which records were hit and
    how.  Damage modes:

    * ``length`` — overwrite ``incl_len`` with an implausibly large
      value (framing recovery must resync past the stale body);
    * ``zero_header`` — zero the 16-byte record header;
    * ``flip_body`` — flip a few random bits inside the packet body
      (frame stays intact; packet decoding must cope);
    * ``garbage_body`` — overwrite the body with random bytes
      (decoding fails; the reader skips and counts).
    """
    src, dst = Path(src), Path(dst)
    data = bytearray(src.read_bytes())
    spans = _iter_record_spans(bytes(data))
    plan = FaultPlan(seed=seed, records_total=len(spans))
    if not spans:
        dst.write_bytes(bytes(data))
        return plan
    rng = random.Random(seed)
    count = max(1, round(fraction * len(spans)))
    plan.damaged = sorted(rng.sample(range(len(spans)), min(count, len(spans))))
    for position, index in enumerate(plan.damaged):
        offset, incl_len = spans[index]
        body = offset + _RECORD_HEADER.size
        mode = modes[position % len(modes)]
        plan.modes.append(mode)
        if mode == "length":
            struct.pack_into("<I", data, offset + 8, _BOGUS_INCL_LEN)
        elif mode == "zero_header":
            data[offset:body] = bytes(_RECORD_HEADER.size)
        elif mode == "flip_body" and incl_len:
            for _ in range(3):
                pos = body + rng.randrange(incl_len)
                data[pos] ^= 1 << rng.randrange(8)
        elif mode == "garbage_body" and incl_len:
            data[body : body + incl_len] = rng.randbytes(incl_len)
    dst.write_bytes(bytes(data))
    return plan


# -- analyzer crashes ---------------------------------------------------


def _key_hash(key: object, seed: int) -> float:
    """Stable per-flow uniform in [0, 1) — identical in every worker."""
    digest = hashlib.sha256(f"{seed}:{key!r}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class InjectedFault(RuntimeError):
    """The exception :func:`inject_flow_crash` raises by default."""


@contextlib.contextmanager
def inject_flow_crash(
    fraction: float | None = None,
    seed: int = 0,
    keys: set | None = None,
    error: Exception | None = None,
):
    """Make the analyzer crash on a deterministic subset of flows.

    Selection is by a stable hash of the flow key (``fraction`` +
    ``seed``) and/or an explicit ``keys`` set, so the same flows crash
    no matter how the stream is chunked or which worker analyzes them.
    The crash is raised from inside :meth:`Tapo.analyze_flow
    <repro.core.tapo.Tapo.analyze_flow>` via the module's ``FLOW_HOOK``
    seam, which fork-based pools inherit.
    """
    from ..core import tapo as tapo_module

    fault = error if error is not None else InjectedFault(
        "injected analyzer fault"
    )

    def hook(flow) -> None:
        if keys is not None and flow.key in keys:
            raise fault
        if fraction is not None and _key_hash(flow.key, seed) < fraction:
            raise fault

    previous = tapo_module.FLOW_HOOK
    tapo_module.FLOW_HOOK = hook
    try:
        yield hook
    finally:
        tapo_module.FLOW_HOOK = previous


@contextlib.contextmanager
def kill_worker_once(sentinel_dir: str | Path, exit_code: int = 42):
    """Kill the first *worker* process that analyzes a flow.

    The kill fires at most once — a sentinel file created with
    ``O_CREAT | O_EXCL`` arbitrates between racing workers — and never
    in the parent process, so the pool's retry path (not the caller)
    has to absorb the death.  The sentinel lives in ``sentinel_dir``;
    use a fresh temp dir per test.
    """
    from ..core import tapo as tapo_module

    sentinel = Path(sentinel_dir) / "kill_worker_once.sentinel"
    parent = os.getpid()

    def hook(flow) -> None:
        if os.getpid() == parent:
            return
        try:
            fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return
        os.close(fd)
        os._exit(exit_code)

    previous = tapo_module.FLOW_HOOK
    tapo_module.FLOW_HOOK = hook
    try:
        yield sentinel
    finally:
        tapo_module.FLOW_HOOK = previous


# -- cache damage -------------------------------------------------------


def corrupt_cache_entry(
    path: str | Path, seed: int = 0, flips: int = 16
) -> int:
    """Flip ``flips`` random bits inside a cache entry file.

    Returns the number of bits flipped (0 for an empty file).  The
    entry's payload checksum guarantees the cache detects the damage
    and treats the entry as a recoverable miss.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        return 0
    rng = random.Random(seed)
    for _ in range(flips):
        pos = rng.randrange(len(data))
        data[pos] ^= 1 << rng.randrange(8)
    path.write_bytes(bytes(data))
    return flips
