"""Seedable fault-injection harness.

Every injector is deterministic given its ``seed``: the same seed
produces the same corrupted bytes, the same crashing flows, and the
same worker deaths, so recovery tests are reproducible and CI can run
a fixed seed matrix.

Injection points mirror the failure domains the robustness layer
covers:

==============================  =====================================
injector                        exercises
==============================  =====================================
:func:`corrupt_pcap_bytes`      raw byte damage (fuzzing primitive)
:func:`corrupt_pcap_records`    record-aware framing damage →
                                :class:`~repro.packet.pcap.PcapReader`
                                resync / skip-and-count
:func:`inject_flow_crash`       analyzer crashes → per-flow
                                quarantine into
                                :class:`~repro.errors.SkippedFlow`
:func:`kill_worker_once`        worker process death → pool retry
                                with backoff
:func:`corrupt_cache_entry`     cache damage → corruption-as-miss
:class:`ChaosProxy`             network faults between cluster peers
                                (drop, delay, duplicate, mid-frame
                                truncation, blackhole) → handshake
                                deadlines, heartbeat-loss detection,
                                shard reassignment
==============================  =====================================

Process-crossing injectors (:func:`inject_flow_crash`,
:func:`kill_worker_once`) work by setting module-level hooks that
fork-based worker pools inherit; both are context managers that always
restore the previous hook.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import random
import socket
import struct
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

_GLOBAL_HEADER_LEN = 24
_RECORD_HEADER = struct.Struct("<IIII")

#: ``incl_len`` value planted by the ``length`` damage mode — far over
#: the reader's ``_MAX_RECORD_BYTES`` bound, so framing recovery (not
#: packet decoding) must handle it.
_BOGUS_INCL_LEN = 0x00FF_FFFF


@dataclass
class FaultPlan:
    """What :func:`corrupt_pcap_records` did to a capture file."""

    seed: int
    records_total: int = 0
    damaged: list[int] = field(default_factory=list)  # record indices
    modes: list[str] = field(default_factory=list)    # mode per index

    @property
    def records_damaged(self) -> int:
        return len(self.damaged)

    def describe(self) -> str:
        pairs = ", ".join(
            f"#{index}:{mode}"
            for index, mode in zip(self.damaged, self.modes)
        )
        return (
            f"seed {self.seed}: damaged {self.records_damaged}/"
            f"{self.records_total} records ({pairs})"
        )


def corrupt_pcap_bytes(
    data: bytes,
    seed: int,
    flips: int = 0,
    truncate_to: int | None = None,
    skip_global_header: bool = True,
) -> bytes:
    """Fuzzing primitive: flip ``flips`` random bits, then truncate.

    Bit positions are drawn from ``random.Random(seed)``.  With
    ``skip_global_header`` (default) the 24-byte pcap global header is
    left intact so the damage lands in record space — flipping the
    magic just makes every budget reject the file at open, which is a
    separate (and far less interesting) test.
    """
    rng = random.Random(seed)
    out = bytearray(data)
    lo = _GLOBAL_HEADER_LEN if skip_global_header else 0
    if len(out) > lo:
        for _ in range(flips):
            pos = rng.randrange(lo, len(out))
            out[pos] ^= 1 << rng.randrange(8)
    if truncate_to is not None:
        del out[max(0, truncate_to):]
    return bytes(out)


def _iter_record_spans(data: bytes) -> list[tuple[int, int]]:
    """(header_offset, incl_len) for each record of a classic pcap."""
    spans: list[tuple[int, int]] = []
    offset = _GLOBAL_HEADER_LEN
    while offset + _RECORD_HEADER.size <= len(data):
        incl_len = _RECORD_HEADER.unpack_from(data, offset)[2]
        if offset + _RECORD_HEADER.size + incl_len > len(data):
            break
        spans.append((offset, incl_len))
        offset += _RECORD_HEADER.size + incl_len
    return spans


#: Damage modes applied round-robin by :func:`corrupt_pcap_records`.
DAMAGE_MODES = ("length", "zero_header", "flip_body", "garbage_body")


def corrupt_pcap_records(
    src: str | Path,
    dst: str | Path,
    fraction: float = 0.01,
    seed: int = 0,
    modes: tuple[str, ...] = DAMAGE_MODES,
) -> FaultPlan:
    """Damage a deterministic ~``fraction`` of the records in ``src``.

    Writes the corrupted capture to ``dst`` and returns the
    :class:`FaultPlan` describing exactly which records were hit and
    how.  Damage modes:

    * ``length`` — overwrite ``incl_len`` with an implausibly large
      value (framing recovery must resync past the stale body);
    * ``zero_header`` — zero the 16-byte record header;
    * ``flip_body`` — flip a few random bits inside the packet body
      (frame stays intact; packet decoding must cope);
    * ``garbage_body`` — overwrite the body with random bytes
      (decoding fails; the reader skips and counts).
    """
    src, dst = Path(src), Path(dst)
    data = bytearray(src.read_bytes())
    spans = _iter_record_spans(bytes(data))
    plan = FaultPlan(seed=seed, records_total=len(spans))
    if not spans:
        dst.write_bytes(bytes(data))
        return plan
    rng = random.Random(seed)
    count = max(1, round(fraction * len(spans)))
    plan.damaged = sorted(rng.sample(range(len(spans)), min(count, len(spans))))
    for position, index in enumerate(plan.damaged):
        offset, incl_len = spans[index]
        body = offset + _RECORD_HEADER.size
        mode = modes[position % len(modes)]
        plan.modes.append(mode)
        if mode == "length":
            struct.pack_into("<I", data, offset + 8, _BOGUS_INCL_LEN)
        elif mode == "zero_header":
            data[offset:body] = bytes(_RECORD_HEADER.size)
        elif mode == "flip_body" and incl_len:
            for _ in range(3):
                pos = body + rng.randrange(incl_len)
                data[pos] ^= 1 << rng.randrange(8)
        elif mode == "garbage_body" and incl_len:
            data[body : body + incl_len] = rng.randbytes(incl_len)
    dst.write_bytes(bytes(data))
    return plan


# -- analyzer crashes ---------------------------------------------------


def _key_hash(key: object, seed: int) -> float:
    """Stable per-flow uniform in [0, 1) — identical in every worker."""
    digest = hashlib.sha256(f"{seed}:{key!r}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class InjectedFault(RuntimeError):
    """The exception :func:`inject_flow_crash` raises by default."""


@contextlib.contextmanager
def inject_flow_crash(
    fraction: float | None = None,
    seed: int = 0,
    keys: set | None = None,
    error: Exception | None = None,
):
    """Make the analyzer crash on a deterministic subset of flows.

    Selection is by a stable hash of the flow key (``fraction`` +
    ``seed``) and/or an explicit ``keys`` set, so the same flows crash
    no matter how the stream is chunked or which worker analyzes them.
    The crash is raised from inside :meth:`Tapo.analyze_flow
    <repro.core.tapo.Tapo.analyze_flow>` via the module's ``FLOW_HOOK``
    seam, which fork-based pools inherit.
    """
    from ..core import tapo as tapo_module

    fault = error if error is not None else InjectedFault(
        "injected analyzer fault"
    )

    def hook(flow) -> None:
        if keys is not None and flow.key in keys:
            raise fault
        if fraction is not None and _key_hash(flow.key, seed) < fraction:
            raise fault

    previous = tapo_module.FLOW_HOOK
    tapo_module.FLOW_HOOK = hook
    try:
        yield hook
    finally:
        tapo_module.FLOW_HOOK = previous


@contextlib.contextmanager
def kill_worker_once(sentinel_dir: str | Path, exit_code: int = 42):
    """Kill the first *worker* process that analyzes a flow.

    The kill fires at most once — a sentinel file created with
    ``O_CREAT | O_EXCL`` arbitrates between racing workers — and never
    in the parent process, so the pool's retry path (not the caller)
    has to absorb the death.  The sentinel lives in ``sentinel_dir``;
    use a fresh temp dir per test.
    """
    from ..core import tapo as tapo_module

    sentinel = Path(sentinel_dir) / "kill_worker_once.sentinel"
    parent = os.getpid()

    def hook(flow) -> None:
        if os.getpid() == parent:
            return
        try:
            fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return
        os.close(fd)
        os._exit(exit_code)

    previous = tapo_module.FLOW_HOOK
    tapo_module.FLOW_HOOK = hook
    try:
        yield sentinel
    finally:
        tapo_module.FLOW_HOOK = previous


# -- cache damage -------------------------------------------------------


def corrupt_cache_entry(
    path: str | Path, seed: int = 0, flips: int = 16
) -> int:
    """Flip ``flips`` random bits inside a cache entry file.

    Returns the number of bits flipped (0 for an empty file).  The
    entry's payload checksum guarantees the cache detects the damage
    and treats the entry as a recoverable miss.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        return 0
    rng = random.Random(seed)
    for _ in range(flips):
        pos = rng.randrange(len(data))
        data[pos] ^= 1 << rng.randrange(8)
    path.write_bytes(bytes(data))
    return flips


# -- network faults -----------------------------------------------------


@dataclass(frozen=True)
class NetFaultPlan:
    """What :class:`ChaosProxy` does to one traffic direction.

    Rates are per forwarded chunk (one ``recv`` worth of bytes, i.e.
    roughly one frame for the cluster protocol's write pattern), drawn
    from the direction's seeded RNG:

    * ``drop_rate`` — silently discard the chunk (the framed stream
      desynchronizes; the receiver sees bad magic or a truncated
      frame and must treat the peer as lost);
    * ``duplicate_rate`` — forward the chunk twice (stream corruption
      from the other side: bytes after a valid frame that are not a
      frame header);
    * ``truncate_rate`` — forward a strict prefix of the chunk, then
      tear the connection down: the canonical mid-frame EOF;
    * ``delay`` — sleep this long before forwarding each chunk (slow
      link; must *not* trip liveness detection by itself);
    * ``blackhole_after`` — after this many forwarded bytes, keep the
      connection open but forward nothing ever again (the half-open
      peer TCP cannot detect without keepalives — only heartbeat
      deadlines catch it);
    * ``bytes_before_faults`` — let this many bytes through untouched
      first (e.g. let the handshake complete so the fault lands on an
      authenticated session).
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    truncate_rate: float = 0.0
    delay: float = 0.0
    blackhole_after: int | None = None
    bytes_before_faults: int = 0


class _FaultGate:
    """Deterministic per-direction fault decisions.

    Split from the proxy's pump threads so the decision sequence is
    unit-testable without sockets: feed chunks to :meth:`apply` and
    assert on the returned actions.
    """

    def __init__(self, plan: NetFaultPlan, rng: random.Random):
        self.plan = plan
        self.rng = rng
        self.forwarded = 0
        self.blackholed = False
        #: One entry per chunk: pass/drop/duplicate/truncate/blackhole.
        self.actions: list[str] = []

    def apply(self, chunk: bytes) -> tuple[list[bytes], bool]:
        """Decide one chunk's fate: ``(pieces_to_forward, close_now)``.

        An empty piece list with ``close_now`` false means the chunk
        vanished (drop or blackhole) but the connection stays up.
        """
        plan = self.plan
        if self.blackholed or (
            plan.blackhole_after is not None
            and self.forwarded >= plan.blackhole_after
        ):
            self.blackholed = True
            self.actions.append("blackhole")
            return [], False
        if plan.blackhole_after is not None and (
            self.forwarded + len(chunk) > plan.blackhole_after
        ):
            # The threshold lands mid-chunk: forward exactly up to it,
            # swallow the rest.  Cutting by byte count (not chunk
            # boundary) keeps the engagement point independent of how
            # TCP happened to coalesce the stream.
            keep = plan.blackhole_after - self.forwarded
            self.forwarded = plan.blackhole_after
            self.blackholed = True
            self.actions.append("blackhole")
            return ([chunk[:keep]] if keep else []), False
        if self.forwarded < plan.bytes_before_faults:
            self.forwarded += len(chunk)
            self.actions.append("pass")
            return [chunk], False
        roll = self.rng.random()
        if roll < plan.drop_rate:
            self.actions.append("drop")
            return [], False
        roll -= plan.drop_rate
        if roll < plan.truncate_rate and len(chunk) > 1:
            cut = 1 + self.rng.randrange(len(chunk) - 1)
            self.forwarded += cut
            self.actions.append("truncate")
            return [chunk[:cut]], True
        roll -= plan.truncate_rate
        if roll < plan.duplicate_rate:
            self.forwarded += 2 * len(chunk)
            self.actions.append("duplicate")
            return [chunk, chunk], False
        self.forwarded += len(chunk)
        self.actions.append("pass")
        return [chunk], False


class ChaosProxy:
    """A seedable TCP proxy that injects network faults between
    cluster peers.

    Sits between dial-in workers and a ``repro-paper cluster --listen``
    coordinator (or any TCP pair): workers connect to
    :attr:`address`, each accepted connection is dialed through to the
    target, and every chunk of each direction passes a
    :class:`_FaultGate` driven by a per-connection, per-direction RNG
    — connection ``i``'s client→server gate seeds from
    ``(seed * 1000003 + i) * 2``, server→client from ``... * 2 + 1`` —
    so a given ``(seed, plan)`` replays the identical fault sequence
    every run.

    ``plan_for(conn_index)`` lets a test give each connection its own
    plan (worker 0 clean, worker 1 blackholed, worker 2 truncating…);
    otherwise every connection uses ``plan``.  Use as a context
    manager, or :meth:`start` / :meth:`stop`.
    """

    def __init__(
        self,
        target_host: str,
        target_port: int,
        *,
        seed: int = 0,
        plan: NetFaultPlan | None = None,
        plan_for=None,
    ):
        self.target = (target_host, target_port)
        self.seed = seed
        self.plan = plan or NetFaultPlan()
        self.plan_for = plan_for
        self.connections: list[dict] = []
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._sockets: list[socket.socket] = []
        self._stopping = threading.Event()
        self._lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        if self._listener is None:
            raise RuntimeError("ChaosProxy is not started")
        return self._listener.getsockname()[:2]

    def start(self) -> "ChaosProxy":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(32)
        self._listener = listener
        accept = threading.Thread(
            target=self._accept_loop, name="chaos-accept", daemon=True
        )
        accept.start()
        self._threads.append(accept)
        return self

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            # Same wake-up trick for the accept loop: on Linux a
            # blocked accept() survives close() but not shutdown().
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            sockets = list(self._sockets)
        for sock in sockets:
            # shutdown() wakes a pump thread blocked in recv(); close()
            # alone would leave it pinned until the join timeout.
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=5)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- internals ----------------------------------------------------
    def _accept_loop(self) -> None:
        index = 0
        while not self._stopping.is_set():
            try:
                client, _addr = self._listener.accept()
            except OSError:
                return
            try:
                upstream = socket.create_connection(self.target, timeout=10)
            except OSError:
                client.close()
                continue
            plan = (
                self.plan_for(index) if self.plan_for is not None
                else self.plan
            )
            base = self.seed * 1000003 + index
            gates = {
                "c2s": _FaultGate(plan, random.Random(base * 2)),
                "s2c": _FaultGate(plan, random.Random(base * 2 + 1)),
            }
            with self._lock:
                self._sockets.extend((client, upstream))
                self.connections.append(
                    {"index": index, "plan": plan, **gates}
                )
            for name, src, dst in (
                ("c2s", client, upstream),
                ("s2c", upstream, client),
            ):
                pump = threading.Thread(
                    target=self._pump,
                    args=(src, dst, gates[name]),
                    name=f"chaos-{name}-{index}",
                    daemon=True,
                )
                pump.start()
                self._threads.append(pump)
            index += 1

    def _pump(
        self, src: socket.socket, dst: socket.socket, gate: _FaultGate
    ) -> None:
        try:
            while True:
                chunk = src.recv(65536)
                if not chunk:
                    break
                pieces, close_now = gate.apply(chunk)
                if gate.plan.delay:
                    time.sleep(gate.plan.delay)
                for piece in pieces:
                    dst.sendall(piece)
                if close_now:
                    # Mid-frame truncation: hard-close both directions
                    # so each side sees the torn stream immediately.
                    src.close()
                    dst.close()
                    return
        except OSError:
            pass
        finally:
            if gate.blackholed:
                # Half-open simulation: keep both sockets up, just
                # never forward again.  The peers must detect this via
                # deadlines, not FIN/RST.
                return
            try:
                dst.shutdown(socket.SHUT_WR)  # propagate half-close
            except OSError:
                try:
                    dst.close()
                except OSError:
                    pass
