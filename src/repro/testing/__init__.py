"""Test support utilities shipped with the package.

:mod:`repro.testing.faults` is the seedable fault-injection harness
used by ``tests/test_faults.py`` and
``benchmarks/bench_fault_recovery.py`` to prove the pipeline's
recovery guarantees.  Nothing here is imported by production code
paths; importing it has no side effects.
"""

from .faults import (
    ChaosProxy,
    FaultPlan,
    NetFaultPlan,
    corrupt_cache_entry,
    corrupt_pcap_bytes,
    corrupt_pcap_records,
    inject_flow_crash,
    kill_worker_once,
)
from .traces import generate_trace

__all__ = [
    "ChaosProxy",
    "FaultPlan",
    "NetFaultPlan",
    "corrupt_cache_entry",
    "corrupt_pcap_bytes",
    "corrupt_pcap_records",
    "generate_trace",
    "inject_flow_crash",
    "kill_worker_once",
]
