"""TCP option encoding and decoding.

Implements the option kinds that matter for server-side stall analysis:

* ``MSS`` (kind 2) — maximum segment size, carried on SYN.
* ``Window Scale`` (kind 3) — receive-window shift count.
* ``SACK Permitted`` (kind 4) — negotiated on SYN.
* ``SACK`` (kind 5) — selective acknowledgment blocks; the first block
  may be a DSACK (RFC 2883) reporting a duplicate segment.
* ``Timestamps`` (kind 8) — TSval/TSecr, used for RTT measurement.

The wire format follows RFC 793 / RFC 7323: ``NOP`` (kind 1) padding and
``EOL`` (kind 0) termination are honoured when decoding, and options are
padded to a 4-byte boundary when encoding.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..errors import ParseError

KIND_EOL = 0
KIND_NOP = 1
KIND_MSS = 2
KIND_WSCALE = 3
KIND_SACK_PERMITTED = 4
KIND_SACK = 5
KIND_TIMESTAMP = 8

#: A SACK block: (left edge, right edge), right edge exclusive.
SackBlock = tuple[int, int]


class OptionDecodeError(ParseError):
    """Raised when a TCP option area is malformed."""


@dataclass(slots=True)
class TCPOptions:
    """Decoded TCP options of a single segment.

    Absent options are ``None`` (or an empty list for SACK blocks).
    """

    mss: int | None = None
    wscale: int | None = None
    sack_permitted: bool = False
    sack_blocks: list[SackBlock] = field(default_factory=list)
    ts_val: int | None = None
    ts_ecr: int | None = None
    #: Lenient decode hit a malformed option and stopped early; the
    #: fields above hold whatever parsed cleanly before the damage.
    truncated_options: bool = False

    def encode(self) -> bytes:
        """Serialize to wire format, padded to a 4-byte boundary."""
        out = bytearray()
        if self.mss is not None:
            out += struct.pack("!BBH", KIND_MSS, 4, self.mss)
        if self.wscale is not None:
            out += struct.pack("!BBB", KIND_WSCALE, 3, self.wscale)
        if self.sack_permitted:
            out += struct.pack("!BB", KIND_SACK_PERMITTED, 2)
        if self.ts_val is not None:
            out += struct.pack(
                "!BBII", KIND_TIMESTAMP, 10, self.ts_val, self.ts_ecr or 0
            )
        if self.sack_blocks:
            blocks = self.sack_blocks[:4]
            out += struct.pack("!BB", KIND_SACK, 2 + 8 * len(blocks))
            for left, right in blocks:
                out += struct.pack("!II", left, right)
        while len(out) % 4:
            out += bytes([KIND_NOP])
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes, lenient: bool = False) -> "TCPOptions":
        """Parse a TCP option area.

        Raises :class:`OptionDecodeError` on truncated or malformed
        options rather than silently guessing.  With ``lenient=True``
        a malformed option instead *ends* parsing — everything decoded
        up to that point is kept, as real stacks behave — and the
        partial result is flagged via :attr:`truncated_options`.
        """
        opts = cls()
        i = 0
        n = len(data)
        while i < n:
            kind = data[i]
            if kind == KIND_EOL:
                break
            if kind == KIND_NOP:
                i += 1
                continue
            if i + 1 >= n:
                if lenient:
                    opts.truncated_options = True
                    break
                raise OptionDecodeError("option kind %d truncated" % kind)
            length = data[i + 1]
            if length < 2 or i + length > n:
                if lenient:
                    opts.truncated_options = True
                    break
                raise OptionDecodeError(
                    "option kind %d has bad length %d" % (kind, length)
                )
            body = data[i + 2 : i + length]
            if kind == KIND_MSS and length == 4:
                (opts.mss,) = struct.unpack("!H", body)
            elif kind == KIND_WSCALE and length == 3:
                opts.wscale = body[0]
            elif kind == KIND_SACK_PERMITTED and length == 2:
                opts.sack_permitted = True
            elif kind == KIND_TIMESTAMP and length == 10:
                opts.ts_val, opts.ts_ecr = struct.unpack("!II", body)
            elif kind == KIND_SACK:
                if (length - 2) % 8:
                    if lenient:
                        opts.truncated_options = True
                        break
                    raise OptionDecodeError("SACK option length %d" % length)
                for off in range(0, length - 2, 8):
                    left, right = struct.unpack("!II", body[off : off + 8])
                    opts.sack_blocks.append((left, right))
            # Unknown option kinds are skipped, as real stacks do.
            i += length
        return opts

    def wire_length(self) -> int:
        """Length of the encoded option area including padding."""
        return len(self.encode())
