"""Classic libpcap file reader and writer.

Implements the original pcap format (magic ``0xa1b2c3d4``, microsecond
timestamps, both byte orders on read) with the ``LINKTYPE_RAW`` (101)
and ``LINKTYPE_ETHERNET`` (1) link types.  Raw IP is the native format
for simulator output; Ethernet frames are supported on read so traces
captured with tcpdump on a real interface can be analyzed too.
"""

from __future__ import annotations

import struct
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import BinaryIO

from .headers import HeaderDecodeError
from .packet import PacketRecord

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1

LINKTYPE_ETHERNET = 1
LINKTYPE_RAW = 101

_GLOBAL_HEADER = struct.Struct("IHHiIII")
_RECORD_HEADER = struct.Struct("IIII")
ETHERTYPE_IPV4 = 0x0800


class PcapFormatError(ValueError):
    """Raised when a pcap file is malformed."""


class PcapWriter:
    """Stream packet records into a classic pcap file.

    Usable as a context manager::

        with PcapWriter(path) as writer:
            writer.write(record)
    """

    def __init__(self, path: str | Path, linktype: int = LINKTYPE_RAW):
        self._file: BinaryIO = open(path, "wb")
        self.linktype = linktype
        header = struct.pack(
            "!IHHiIII" if False else "<IHHiIII",
            PCAP_MAGIC,
            2,
            4,
            0,
            0,
            65535,
            linktype,
        )
        self._file.write(header)
        self.packets_written = 0

    def write(self, record: PacketRecord) -> None:
        """Append one packet record."""
        data = record.encode()
        if self.linktype == LINKTYPE_ETHERNET:
            data = b"\x00" * 12 + struct.pack("!H", ETHERTYPE_IPV4) + data
        ts_sec = int(record.timestamp)
        ts_usec = int(round((record.timestamp - ts_sec) * 1_000_000))
        if ts_usec >= 1_000_000:
            ts_sec += 1
            ts_usec -= 1_000_000
        self._file.write(
            struct.pack("<IIII", ts_sec, ts_usec, len(data), len(data))
        )
        self._file.write(data)
        self.packets_written += 1

    def write_all(self, records: Iterable[PacketRecord]) -> int:
        """Append every record from an iterable; return the count."""
        count = 0
        for record in records:
            self.write(record)
            count += 1
        return count

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: Default file-read granularity for :meth:`PcapReader.iter_records`.
#: One syscall per buffer instead of two per packet.
READ_BUFFER_BYTES = 1 << 20


class PcapReader:
    """Iterate packet records out of a classic pcap file.

    Non-IPv4 frames and packets that fail to parse as TCP are skipped
    and counted in :attr:`skipped` — production traces always contain
    ARP and other noise, and the analyzer should not die on it.

    Iteration is streaming: the file is read in
    :data:`READ_BUFFER_BYTES` slabs and decoded one record at a time,
    so traces never need to fit in memory.  :meth:`iter_chunks` groups
    the same stream into bounded lists for fan-out to workers.
    """

    def __init__(self, path: str | Path):
        self._file: BinaryIO = open(path, "rb")
        raw = self._file.read(_GLOBAL_HEADER.size)
        if len(raw) < _GLOBAL_HEADER.size:
            raise PcapFormatError("pcap global header truncated")
        magic = struct.unpack("<I", raw[:4])[0]
        if magic == PCAP_MAGIC:
            self._endian = "<"
        elif magic == PCAP_MAGIC_SWAPPED:
            self._endian = ">"
        else:
            raise PcapFormatError("bad pcap magic %#010x" % magic)
        fields = struct.unpack(self._endian + "IHHiIII", raw)
        self.linktype = fields[6]
        if self.linktype not in (LINKTYPE_RAW, LINKTYPE_ETHERNET):
            raise PcapFormatError("unsupported linktype %d" % self.linktype)
        self.skipped = 0

    def __iter__(self) -> Iterator[PacketRecord]:
        return self.iter_records()

    def iter_records(
        self, buffer_bytes: int = READ_BUFFER_BYTES
    ) -> Iterator[PacketRecord]:
        """Yield records one at a time, reading the file in
        ``buffer_bytes`` slabs (constant memory regardless of trace
        size)."""
        record_struct = struct.Struct(self._endian + "IIII")
        header_size = record_struct.size
        unpack_header = record_struct.unpack_from
        ethernet = self.linktype == LINKTYPE_ETHERNET
        buffer = b""
        offset = 0
        eof = False
        while True:
            # Top up the buffer until it holds one full record (or EOF).
            while not eof and len(buffer) - offset < header_size:
                slab = self._file.read(buffer_bytes)
                if not slab:
                    eof = True
                    break
                buffer = buffer[offset:] + slab
                offset = 0
            if len(buffer) - offset < header_size:
                if len(buffer) - offset > 0:
                    raise PcapFormatError("pcap record header truncated")
                return
            ts_sec, ts_usec, incl_len, _orig_len = unpack_header(
                buffer, offset
            )
            while not eof and len(buffer) - offset < header_size + incl_len:
                slab = self._file.read(buffer_bytes)
                if not slab:
                    eof = True
                    break
                buffer = buffer[offset:] + slab
                offset = 0
            if len(buffer) - offset < header_size + incl_len:
                raise PcapFormatError("pcap packet body truncated")
            data = buffer[offset + header_size : offset + header_size + incl_len]
            offset += header_size + incl_len
            if ethernet:
                if len(data) < 14:
                    self.skipped += 1
                    continue
                ethertype = struct.unpack("!H", data[12:14])[0]
                if ethertype != ETHERTYPE_IPV4:
                    self.skipped += 1
                    continue
                data = data[14:]
            timestamp = ts_sec + ts_usec / 1_000_000
            try:
                yield PacketRecord.decode(data, timestamp)
            except HeaderDecodeError:
                self.skipped += 1

    def iter_chunks(
        self,
        chunk_packets: int = 4096,
        buffer_bytes: int = READ_BUFFER_BYTES,
    ) -> Iterator[list[PacketRecord]]:
        """Yield records grouped into lists of ``chunk_packets`` (the
        last may be shorter) — the unit of fan-out for streaming
        analysis."""
        if chunk_packets < 1:
            raise ValueError("chunk_packets must be >= 1")
        chunk: list[PacketRecord] = []
        for record in self.iter_records(buffer_bytes):
            chunk.append(record)
            if len(chunk) >= chunk_packets:
                yield chunk
                chunk = []
        if chunk:
            yield chunk

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "PcapReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def write_pcap(
    path: str | Path,
    records: Iterable[PacketRecord],
    linktype: int = LINKTYPE_RAW,
) -> int:
    """Write all ``records`` to ``path``; return the packet count."""
    with PcapWriter(path, linktype=linktype) as writer:
        return writer.write_all(records)


def read_pcap(path: str | Path) -> list[PacketRecord]:
    """Read every packet record from ``path``."""
    with PcapReader(path) as reader:
        return list(reader)
