"""Classic libpcap file reader and writer.

Implements the original pcap format (magic ``0xa1b2c3d4``, microsecond
timestamps, both byte orders on read) with the ``LINKTYPE_RAW`` (101)
and ``LINKTYPE_ETHERNET`` (1) link types.  Raw IP is the native format
for simulator output; Ethernet frames are supported on read so traces
captured with tcpdump on a real interface can be analyzed too.
"""

from __future__ import annotations

import struct
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import BinaryIO

from ..errors import ErrorBudget, ParseError
from .headers import HeaderDecodeError
from .packet import PacketRecord

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1

LINKTYPE_ETHERNET = 1
LINKTYPE_RAW = 101

_GLOBAL_HEADER = struct.Struct("IHHiIII")
_RECORD_HEADER = struct.Struct("IIII")
ETHERTYPE_IPV4 = 0x0800

#: Lenient-mode framing sanity bound: no sane capture carries a record
#: this large (the classic snaplen cap is 65535), so a bigger
#: ``incl_len`` means the record header itself is damaged.
_MAX_RECORD_BYTES = 1 << 20

#: Lenient-mode resync heuristic: a candidate record header whose
#: ``ts_sec`` jumps more than this from the last good record is
#: treated as garbage rather than a one-day capture gap.
_RESYNC_TS_WINDOW = 86_400


class PcapFormatError(ParseError):
    """Raised when a pcap file is malformed."""


class PcapWriter:
    """Stream packet records into a classic pcap file.

    Usable as a context manager::

        with PcapWriter(path) as writer:
            writer.write(record)
    """

    def __init__(self, path: str | Path, linktype: int = LINKTYPE_RAW):
        self._file: BinaryIO = open(path, "wb")
        self.linktype = linktype
        header = struct.pack(
            "!IHHiIII" if False else "<IHHiIII",
            PCAP_MAGIC,
            2,
            4,
            0,
            0,
            65535,
            linktype,
        )
        self._file.write(header)
        self.packets_written = 0

    def write(self, record: PacketRecord) -> None:
        """Append one packet record."""
        data = record.encode()
        if self.linktype == LINKTYPE_ETHERNET:
            data = b"\x00" * 12 + struct.pack("!H", ETHERTYPE_IPV4) + data
        ts_sec = int(record.timestamp)
        ts_usec = int(round((record.timestamp - ts_sec) * 1_000_000))
        if ts_usec >= 1_000_000:
            ts_sec += 1
            ts_usec -= 1_000_000
        self._file.write(
            struct.pack("<IIII", ts_sec, ts_usec, len(data), len(data))
        )
        self._file.write(data)
        self.packets_written += 1

    def write_all(self, records: Iterable[PacketRecord]) -> int:
        """Append every record from an iterable; return the count."""
        count = 0
        for record in records:
            self.write(record)
            count += 1
        return count

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: Default file-read granularity for :meth:`PcapReader.iter_records`.
#: One syscall per buffer instead of two per packet.
READ_BUFFER_BYTES = 1 << 20


class PcapReader:
    """Iterate packet records out of a classic pcap file.

    Non-IPv4 frames and packets that fail to parse as TCP are skipped
    and counted in :attr:`skipped` — production traces always contain
    ARP and other noise, and the analyzer should not die on it.

    Framing damage is governed by ``errors``, an
    :class:`~repro.errors.ErrorBudget` (or its string spec).  Strict —
    the default — raises a typed :class:`PcapFormatError` at the first
    truncated or corrupt record, exactly the historical behavior.
    Tolerant budgets instead *recover*: a record with an implausible
    header is skipped and the reader scans forward for the next
    plausible record boundary (resync), a truncated tail is dropped,
    and malformed TCP option areas are parsed partially.  Every
    recovery is counted (:attr:`corrupt_records`, :attr:`resyncs`,
    :attr:`bytes_skipped`, :attr:`option_errors`) so dirty input is
    visible, never silent.

    Iteration is streaming: the file is read in
    :data:`READ_BUFFER_BYTES` slabs and decoded one record at a time,
    so traces never need to fit in memory.  :meth:`iter_chunks` groups
    the same stream into bounded lists for fan-out to workers.
    """

    def __init__(
        self,
        path: str | Path,
        errors: "ErrorBudget | str | None" = None,
    ):
        self._file: BinaryIO = open(path, "rb")
        raw = self._file.read(_GLOBAL_HEADER.size)
        if len(raw) < _GLOBAL_HEADER.size:
            raise PcapFormatError("pcap global header truncated")
        magic = struct.unpack("<I", raw[:4])[0]
        if magic == PCAP_MAGIC:
            self._endian = "<"
        elif magic == PCAP_MAGIC_SWAPPED:
            self._endian = ">"
        else:
            raise PcapFormatError("bad pcap magic %#010x" % magic)
        fields = struct.unpack(self._endian + "IHHiIII", raw)
        self.linktype = fields[6]
        if self.linktype not in (LINKTYPE_RAW, LINKTYPE_ETHERNET):
            raise PcapFormatError("unsupported linktype %d" % self.linktype)
        self.errors = ErrorBudget.parse(errors)
        self.skipped = 0
        self.records_read = 0
        #: Records lost to framing damage (skipped over or truncated).
        self.corrupt_records = 0
        #: Times the reader had to scan for the next record boundary.
        self.resyncs = 0
        #: Bytes discarded while resyncing or dropping a corrupt tail.
        self.bytes_skipped = 0
        #: Packets whose TCP option area was malformed and parsed
        #: partially (tolerant budgets only).
        self.option_errors = 0

    def __iter__(self) -> Iterator[PacketRecord]:
        return self.iter_records()

    def iter_records(
        self, buffer_bytes: int = READ_BUFFER_BYTES
    ) -> Iterator[PacketRecord]:
        """Yield records one at a time, reading the file in
        ``buffer_bytes`` slabs (constant memory regardless of trace
        size)."""
        record_struct = struct.Struct(self._endian + "IIII")
        header_size = record_struct.size
        unpack_header = record_struct.unpack_from
        ethernet = self.linktype == LINKTYPE_ETHERNET
        budget = self.errors
        tolerant = budget.tolerant
        buffer = b""
        offset = 0
        eof = False
        last_ts: int | None = None

        def fill(need: int) -> bool:
            """Top up the buffer to ``need`` bytes past ``offset``."""
            nonlocal buffer, offset, eof
            while not eof and len(buffer) - offset < need:
                slab = self._file.read(buffer_bytes)
                if not slab:
                    eof = True
                    break
                buffer = buffer[offset:] + slab
                offset = 0
            return len(buffer) - offset >= need

        def plausible(pos: int) -> bool:
            """Sanity-check a candidate record header at ``pos``."""
            ts_sec, ts_usec, incl_len, orig_len = unpack_header(buffer, pos)
            if ts_usec >= 1_000_000 or incl_len > _MAX_RECORD_BYTES:
                return False
            # No record can be smaller than one IPv4 header.
            if incl_len < 20 or incl_len > orig_len:
                return False
            if orig_len > _MAX_RECORD_BYTES:
                return False
            if (
                last_ts is not None
                and abs(ts_sec - last_ts) > _RESYNC_TS_WINDOW
            ):
                return False
            return True

        def chain_ok(pos: int) -> bool:
            """A resync candidate must also be followed by a plausible
            header (when the next one is in the buffer) — a single
            16-byte check syncs on garbage too easily."""
            if not plausible(pos):
                return False
            incl_len = unpack_header(buffer, pos)[2]
            nxt = pos + header_size + incl_len
            if nxt + header_size <= len(buffer):
                return plausible(nxt)
            return True

        def corrupt(reason: str) -> None:
            """Count one framing fault; raise unless the budget allows."""
            if not tolerant:
                raise PcapFormatError(reason)
            self.corrupt_records += 1
            budget.check(
                self.corrupt_records,
                self.records_read + self.corrupt_records,
                "corrupt pcap records",
            )

        def resync() -> bool:
            """Advance to the next plausible record header, skipping
            at least one byte; False when the rest of the file holds
            none."""
            nonlocal buffer, offset
            offset += 1
            self.bytes_skipped += 1
            while True:
                if not fill(header_size):
                    self.bytes_skipped += len(buffer) - offset
                    offset = len(buffer)
                    return False
                limit = len(buffer) - header_size
                while offset <= limit:
                    if chain_ok(offset):
                        return True
                    offset += 1
                    self.bytes_skipped += 1
                # Exhausted this buffer; fill() will compact and read
                # the next slab (or report EOF on the next pass).

        while True:
            if not fill(header_size):
                if len(buffer) - offset > 0:
                    corrupt("pcap record header truncated")
                    self.bytes_skipped += len(buffer) - offset
                return
            if tolerant and not plausible(offset):
                corrupt("pcap record framing implausible")
                self.resyncs += 1
                if not resync():
                    return
                continue
            ts_sec, ts_usec, incl_len, _orig_len = unpack_header(
                buffer, offset
            )
            if not fill(header_size + incl_len):
                # Strict raises here.  Lenient resyncs instead of
                # dropping the tail outright: a "truncated body" can
                # also be a corrupt length field swallowing real
                # records behind it.
                corrupt("pcap packet body truncated")
                self.resyncs += 1
                if not resync():
                    return
                continue
            data = buffer[offset + header_size : offset + header_size + incl_len]
            offset += header_size + incl_len
            last_ts = ts_sec
            self.records_read += 1
            if ethernet:
                if len(data) < 14:
                    self.skipped += 1
                    continue
                ethertype = struct.unpack("!H", data[12:14])[0]
                if ethertype != ETHERTYPE_IPV4:
                    self.skipped += 1
                    continue
                data = data[14:]
            timestamp = ts_sec + ts_usec / 1_000_000
            try:
                record = PacketRecord.decode(data, timestamp, lenient=tolerant)
            except HeaderDecodeError:
                self.skipped += 1
                continue
            if record.options.truncated_options:
                self.option_errors += 1
            yield record

    def iter_chunks(
        self,
        chunk_packets: int = 4096,
        buffer_bytes: int = READ_BUFFER_BYTES,
    ) -> Iterator[list[PacketRecord]]:
        """Yield records grouped into lists of ``chunk_packets`` (the
        last may be shorter) — the unit of fan-out for streaming
        analysis."""
        if chunk_packets < 1:
            raise ValueError("chunk_packets must be >= 1")
        chunk: list[PacketRecord] = []
        for record in self.iter_records(buffer_bytes):
            chunk.append(record)
            if len(chunk) >= chunk_packets:
                yield chunk
                chunk = []
        if chunk:
            yield chunk

    def fold_faults(self, faults) -> None:
        """Fold this reader's recovery counters into a
        :class:`repro.errors.FaultStats`."""
        faults.corrupt_records += self.corrupt_records
        faults.resyncs += self.resyncs
        faults.option_errors += self.option_errors

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "PcapReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def write_pcap(
    path: str | Path,
    records: Iterable[PacketRecord],
    linktype: int = LINKTYPE_RAW,
) -> int:
    """Write all ``records`` to ``path``; return the packet count."""
    with PcapWriter(path, linktype=linktype) as writer:
        return writer.write_all(records)


def read_pcap(
    path: str | Path, errors: "ErrorBudget | str | None" = None
) -> list[PacketRecord]:
    """Read every packet record from ``path``."""
    with PcapReader(path, errors=errors) as reader:
        return list(reader)
