"""Classic libpcap file reader and writer.

Implements the original pcap format (magic ``0xa1b2c3d4``, microsecond
timestamps, both byte orders on read) with the ``LINKTYPE_RAW`` (101)
and ``LINKTYPE_ETHERNET`` (1) link types.  Raw IP is the native format
for simulator output; Ethernet frames are supported on read so traces
captured with tcpdump on a real interface can be analyzed too.
"""

from __future__ import annotations

import mmap
import struct
from array import array
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import BinaryIO

from ..errors import ErrorBudget, ParseError
from .checksum import verify_tcp_checksum
from .columnar import _np
from .columnar import PacketColumns, decode_spans
from .headers import HeaderDecodeError
from .packet import PacketRecord


def _subtract_spans(incls: "array", starts: "array", header_size: int) -> None:
    """In place: ``incls[i] -= starts[i] + header_size`` (turns the
    next-offset chain into record body lengths)."""
    if _np is not None:
        out = _np.frombuffer(incls, dtype=_np.int64)
        out -= _np.frombuffer(starts, dtype=_np.int64)
        out -= header_size
        return
    for index in range(len(incls)):
        incls[index] -= starts[index] + header_size


def _shift_spans(starts: "array", header_size: int) -> None:
    """In place: ``starts[i] += header_size`` (header offsets from the
    strict chase become body offsets)."""
    if _np is not None:
        out = _np.frombuffer(starts, dtype=_np.int64)
        out += header_size
        return
    for index in range(len(starts)):
        starts[index] += header_size

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1

LINKTYPE_ETHERNET = 1
LINKTYPE_RAW = 101

_GLOBAL_HEADER = struct.Struct("IHHiIII")
_RECORD_HEADER = struct.Struct("IIII")
ETHERTYPE_IPV4 = 0x0800

#: Lenient-mode framing sanity bound: no sane capture carries a record
#: this large (the classic snaplen cap is 65535), so a bigger
#: ``incl_len`` means the record header itself is damaged.
_MAX_RECORD_BYTES = 1 << 20

#: Lenient-mode resync heuristic: a candidate record header whose
#: ``ts_sec`` jumps more than this from the last good record is
#: treated as garbage rather than a one-day capture gap.
_RESYNC_TS_WINDOW = 86_400


class PcapFormatError(ParseError):
    """Raised when a pcap file is malformed."""


class PcapWriter:
    """Stream packet records into a classic pcap file.

    Usable as a context manager::

        with PcapWriter(path) as writer:
            writer.write(record)
    """

    def __init__(self, path: str | Path, linktype: int = LINKTYPE_RAW):
        self._file: BinaryIO = open(path, "wb")
        self.linktype = linktype
        header = struct.pack(
            "!IHHiIII" if False else "<IHHiIII",
            PCAP_MAGIC,
            2,
            4,
            0,
            0,
            65535,
            linktype,
        )
        self._file.write(header)
        self.packets_written = 0

    def write(self, record: PacketRecord) -> None:
        """Append one packet record."""
        data = record.encode()
        if self.linktype == LINKTYPE_ETHERNET:
            data = b"\x00" * 12 + struct.pack("!H", ETHERTYPE_IPV4) + data
        ts_sec = int(record.timestamp)
        ts_usec = int(round((record.timestamp - ts_sec) * 1_000_000))
        if ts_usec >= 1_000_000:
            ts_sec += 1
            ts_usec -= 1_000_000
        self._file.write(
            struct.pack("<IIII", ts_sec, ts_usec, len(data), len(data))
        )
        self._file.write(data)
        self.packets_written += 1

    def write_all(self, records: Iterable[PacketRecord]) -> int:
        """Append every record from an iterable; return the count."""
        count = 0
        for record in records:
            self.write(record)
            count += 1
        return count

    def flush(self) -> None:
        """Push buffered records to the OS (visible to live tailers)."""
        self._file.flush()

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: Default file-read granularity for :meth:`PcapReader.iter_records`.
#: One syscall per buffer instead of two per packet.
READ_BUFFER_BYTES = 1 << 20

#: Default slab size for :meth:`PcapReader.iter_columns`.  Columnar
#: decode has a fixed vectorization cost per batch, so it prefers
#: fewer, larger slabs; 4 MiB keeps memory modest while making the
#: per-batch overhead negligible.
COLUMN_BUFFER_BYTES = 4 << 20


def parse_global_header(raw: bytes) -> tuple[str, int]:
    """Validate a 24-byte pcap global header; return (endian, linktype).

    Shared by :class:`PcapReader` and the follow-mode tail source in
    :mod:`repro.live.sources`, so both accept exactly the same files.
    """
    if len(raw) < _GLOBAL_HEADER.size:
        raise PcapFormatError("pcap global header truncated")
    magic = struct.unpack("<I", raw[:4])[0]
    if magic == PCAP_MAGIC:
        endian = "<"
    elif magic == PCAP_MAGIC_SWAPPED:
        endian = ">"
    else:
        raise PcapFormatError("bad pcap magic %#010x" % magic)
    fields = struct.unpack(endian + "IHHiIII", raw)
    linktype = fields[6]
    if linktype not in (LINKTYPE_RAW, LINKTYPE_ETHERNET):
        raise PcapFormatError("unsupported linktype %d" % linktype)
    return endian, linktype


class PcapScanner:
    """Incremental pcap record scanner: push bytes in, drain records out.

    The framing/recovery state machine behind :class:`PcapReader`,
    factored into push form so a *growing* capture can be scanned too:
    :meth:`push` appends whatever bytes are available, :meth:`drain`
    yields every record that is complete so far and stops (without
    error) at a partial record, and :meth:`finish` marks end-of-input
    so the tail is then judged — truncated records become faults
    instead of "wait for more data".

    ``counters`` is the object that carries the public fault/progress
    attributes (``records_read``, ``skipped``, ``corrupt_records``,
    ``resyncs``, ``bytes_skipped``, ``option_errors``) —
    :class:`PcapReader` passes itself, so its counter surface is
    unchanged.  Recovery semantics (plausibility, chain-checked
    resync, budget accounting) are identical between batch reads and
    incremental tails because this is the only implementation.
    """

    def __init__(
        self,
        endian: str,
        linktype: int,
        errors: ErrorBudget,
        counters,
    ):
        self._endian = endian
        self._struct = struct.Struct(endian + "IIII")
        self._incl_struct = struct.Struct(endian + "8xI")
        self._ethernet = linktype == LINKTYPE_ETHERNET
        self._budget = errors
        self._counters = counters
        self._buffer = b""
        self._offset = 0
        self._last_ts: int | None = None
        self._final = False
        self._resyncing = False

    @property
    def pending_bytes(self) -> int:
        """Bytes pushed but not yet consumed by a parse decision.

        A resumable source offset is ``bytes_pushed - pending_bytes``:
        re-reading from there replays no already-parsed record.
        """
        return len(self._buffer) - self._offset

    def push(self, data: bytes) -> None:
        """Append newly available capture bytes."""
        if not data:
            return
        if self._offset >= len(self._buffer):
            # Fully consumed: adopt the new slab without copying.
            self._buffer = data
            self._offset = 0
            return
        if self._offset:
            self._buffer = self._buffer[self._offset :]
            self._offset = 0
        self._buffer += data

    def finish(self) -> None:
        """Mark end-of-input: the next :meth:`drain` judges the tail."""
        self._final = True

    def drop_pending(self) -> int:
        """Forget the unconsumed tail and return its length.

        For seekable sources: the caller rewinds by the returned count
        and re-reads, so the tail arrives again at the *front* of the
        next slab — which :meth:`push` then adopts by reference instead
        of paying a buffer concatenation per slab.
        """
        pending = len(self._buffer) - self._offset
        self._buffer = b""
        self._offset = 0
        return pending

    # -- framing heuristics (identical to the historical reader) ------
    def _plausible(self, pos: int) -> bool:
        """Sanity-check a candidate record header at ``pos``."""
        ts_sec, ts_usec, incl_len, orig_len = self._struct.unpack_from(
            self._buffer, pos
        )
        if ts_usec >= 1_000_000 or incl_len > _MAX_RECORD_BYTES:
            return False
        # No record can be smaller than one IPv4 header.
        if incl_len < 20 or incl_len > orig_len:
            return False
        if orig_len > _MAX_RECORD_BYTES:
            return False
        if (
            self._last_ts is not None
            and abs(ts_sec - self._last_ts) > _RESYNC_TS_WINDOW
        ):
            return False
        return True

    def _chain_ok(self, pos: int) -> bool | None:
        """A resync candidate must also be followed by a plausible
        header — a single 16-byte check syncs on garbage too easily.
        ``None`` means undecidable yet: the next header lies beyond the
        bytes pushed so far."""
        if not self._plausible(pos):
            return False
        incl_len = self._struct.unpack_from(self._buffer, pos)[2]
        nxt = pos + self._struct.size + incl_len
        if nxt + self._struct.size <= len(self._buffer):
            return self._plausible(nxt)
        return None

    def _corrupt(self, reason: str) -> None:
        """Count one framing fault; raise unless the budget allows."""
        if not self._budget.tolerant:
            raise PcapFormatError(reason)
        counters = self._counters
        counters.corrupt_records += 1
        self._budget.check(
            counters.corrupt_records,
            counters.records_read + counters.corrupt_records,
            "corrupt pcap records",
        )

    def _begin_resync(self) -> None:
        """Skip at least one byte and start scanning for a boundary."""
        self._offset += 1
        self._counters.bytes_skipped += 1
        self._resyncing = True

    def _scan_resync(self) -> bool:
        """Advance to the next plausible record header.

        True: positioned on a boundary (resync over).  False: need
        more pushed bytes, or — after :meth:`finish` — the rest of the
        input holds no boundary and was discarded.
        """
        counters = self._counters
        limit = len(self._buffer) - self._struct.size
        while self._offset <= limit:
            ok = self._chain_ok(self._offset)
            if ok is None and not self._final:
                return False  # candidate needs the next header's bytes
            if ok is not False:  # True, or undecidable at end of input
                self._resyncing = False
                return True
            self._offset += 1
            counters.bytes_skipped += 1
        if not self._final:
            return False
        counters.bytes_skipped += len(self._buffer) - self._offset
        self._offset = len(self._buffer)
        return False

    # -- record extraction ---------------------------------------------
    def drain(self) -> Iterator[PacketRecord]:
        """Yield every record decodable from the bytes pushed so far.

        Stops silently at a partial record until :meth:`finish` is
        called; after that, a partial tail is a framing fault handled
        under the error budget.
        """
        header_size = self._struct.size
        unpack_header = self._struct.unpack_from
        counters = self._counters
        tolerant = self._budget.tolerant
        verify = getattr(counters, "verify_checksums", False)
        while True:
            if self._resyncing and not self._scan_resync():
                return
            available = len(self._buffer) - self._offset
            if available < header_size:
                if not self._final:
                    return
                if available > 0:
                    self._corrupt("pcap record header truncated")
                    counters.bytes_skipped += available
                    self._offset = len(self._buffer)
                return
            if tolerant and not self._plausible(self._offset):
                self._corrupt("pcap record framing implausible")
                counters.resyncs += 1
                self._begin_resync()
                continue
            ts_sec, ts_usec, incl_len, _orig_len = unpack_header(
                self._buffer, self._offset
            )
            if available < header_size + incl_len:
                if not self._final:
                    return  # body still being written; wait for bytes
                # Strict raises here.  Lenient resyncs instead of
                # dropping the tail outright: a "truncated body" can
                # also be a corrupt length field swallowing real
                # records behind it.
                self._corrupt("pcap packet body truncated")
                counters.resyncs += 1
                self._begin_resync()
                continue
            start = self._offset + header_size
            data = self._buffer[start : start + incl_len]
            self._offset = start + incl_len
            self._last_ts = ts_sec
            counters.records_read += 1
            if self._ethernet:
                if len(data) < 14:
                    counters.skipped += 1
                    continue
                ethertype = struct.unpack("!H", data[12:14])[0]
                if ethertype != ETHERTYPE_IPV4:
                    counters.skipped += 1
                    continue
                data = data[14:]
            timestamp = ts_sec + ts_usec / 1_000_000
            try:
                record = PacketRecord.decode(
                    data, timestamp, lenient=tolerant
                )
            except HeaderDecodeError:
                counters.skipped += 1
                continue
            if record.options.truncated_options:
                counters.option_errors += 1
            if verify:
                ip_len = (data[0] & 0x0F) * 4
                total_length = (data[2] << 8) | data[3]
                end = (
                    min(len(data), max(total_length, ip_len))
                    if total_length
                    else len(data)
                )
                if not verify_tcp_checksum(
                    record.src_ip, record.dst_ip, data[ip_len:end]
                ):
                    counters.checksum_errors += 1
            yield record

    # -- columnar extraction ---------------------------------------------
    def _collect_spans(self) -> tuple[array, array]:
        """Advance framing over every complete record; return spans.

        The framing walk — plausibility checks, resync, budget
        accounting — matches the state machine :meth:`drain` runs;
        only record *decoding* is deferred, so the columnar layer
        (:func:`repro.packet.columnar.decode_spans`) can batch it.
        Returned arrays are parallel ``(body_offset, body_length)``
        per record, with offsets into the current buffer (valid until
        the next :meth:`push`).  Record timestamps sit at
        ``body_offset - 16``; the columnar decoder extracts them in
        bulk.
        """
        counters = self._counters
        starts = array("q")
        incls = array("q")
        if not self._budget.tolerant:
            # Strict mode never resyncs — any framing damage raises —
            # so the walk reduces to chasing ``incl_len``.  Bodies abut
            # (no bytes are ever skipped), so lengths are derived from
            # consecutive offsets afterwards instead of being appended
            # inside the hot loop.
            buffer = self._buffer
            blen = len(buffer)
            offset = self._offset
            header_size = self._struct.size
            limit = blen - header_size
            unpack_incl = self._incl_struct.unpack_from
            found: list[int] = []
            append_start = found.append
            while offset <= limit:
                (incl_len,) = unpack_incl(buffer, offset)
                nxt = offset + header_size + incl_len
                if nxt > blen:
                    if self._final:
                        self._corrupt("pcap packet body truncated")
                    break  # body still being written; wait for bytes
                # Header offsets, not body offsets: one add less per
                # record here; the uniform +16 happens vectorized below.
                append_start(offset)
                offset = nxt
            else:
                if self._final and blen - offset > 0:
                    self._corrupt("pcap record header truncated")
            self._offset = offset
            starts = array("q", found)
            count = len(starts)
            counters.records_read += count
            if count:
                # Next-record offsets; the sentinel for the final
                # record is its body end so the uniform subtraction
                # below yields each body length.
                incls = array("q", starts)
                del incls[0]
                incls.append(offset)
                _subtract_spans(incls, starts, header_size)
                _shift_spans(starts, header_size)
            return starts, incls
        header_size = self._struct.size
        unpack_header = self._struct.unpack_from
        while True:
            if self._resyncing and not self._scan_resync():
                break
            available = len(self._buffer) - self._offset
            if available < header_size:
                if not self._final:
                    break
                if available > 0:
                    self._corrupt("pcap record header truncated")
                    counters.bytes_skipped += available
                    self._offset = len(self._buffer)
                break
            if not self._plausible(self._offset):
                self._corrupt("pcap record framing implausible")
                counters.resyncs += 1
                self._begin_resync()
                continue
            ts_sec, _ts_usec, incl_len, _orig_len = unpack_header(
                self._buffer, self._offset
            )
            if available < header_size + incl_len:
                if not self._final:
                    break  # body still being written; wait for bytes
                self._corrupt("pcap packet body truncated")
                counters.resyncs += 1
                self._begin_resync()
                continue
            start = self._offset + header_size
            self._offset = start + incl_len
            self._last_ts = ts_sec
            counters.records_read += 1
            starts.append(start)
            incls.append(incl_len)
        return starts, incls

    def drain_columns(self) -> PacketColumns:
        """Columnar counterpart of :meth:`drain`: decode every record
        complete so far into one :class:`PacketColumns` batch.

        Counter and recovery semantics are identical to the object
        path; the batch may be empty when no complete record is
        buffered.
        """
        starts, incls = self._collect_spans()
        columns = decode_spans(
            self._buffer,
            starts,
            incls,
            endian=self._endian,
            ethernet=self._ethernet,
            tolerant=self._budget.tolerant,
            counters=self._counters,
        )
        if getattr(self._counters, "verify_checksums", False):
            # Lazy checksum policy: the columnar path defers
            # verification entirely and counts what it skipped.
            self._counters.checksums_skipped += len(columns)
        return columns


class PcapReader:
    """Iterate packet records out of a classic pcap file.

    Non-IPv4 frames and packets that fail to parse as TCP are skipped
    and counted in :attr:`skipped` — production traces always contain
    ARP and other noise, and the analyzer should not die on it.

    Framing damage is governed by ``errors``, an
    :class:`~repro.errors.ErrorBudget` (or its string spec).  Strict —
    the default — raises a typed :class:`PcapFormatError` at the first
    truncated or corrupt record, exactly the historical behavior.
    Tolerant budgets instead *recover*: a record with an implausible
    header is skipped and the reader scans forward for the next
    plausible record boundary (resync), a truncated tail is dropped,
    and malformed TCP option areas are parsed partially.  Every
    recovery is counted (:attr:`corrupt_records`, :attr:`resyncs`,
    :attr:`bytes_skipped`, :attr:`option_errors`) so dirty input is
    visible, never silent.

    Iteration is streaming: the file is read in
    :data:`READ_BUFFER_BYTES` slabs and decoded one record at a time,
    so traces never need to fit in memory.  :meth:`iter_chunks` groups
    the same stream into bounded lists for fan-out to workers.
    """

    def __init__(
        self,
        path: str | Path,
        errors: "ErrorBudget | str | None" = None,
        verify_checksums: bool = False,
    ):
        self._file: BinaryIO = open(path, "rb")
        raw = self._file.read(_GLOBAL_HEADER.size)
        self._endian, self.linktype = parse_global_header(raw)
        self.errors = ErrorBudget.parse(errors)
        #: Verify each packet's TCP checksum while decoding (object
        #: path only; the columnar path defers and counts skips).
        self.verify_checksums = verify_checksums
        self.skipped = 0
        self.records_read = 0
        #: Records lost to framing damage (skipped over or truncated).
        self.corrupt_records = 0
        #: Times the reader had to scan for the next record boundary.
        self.resyncs = 0
        #: Bytes discarded while resyncing or dropping a corrupt tail.
        self.bytes_skipped = 0
        #: Packets whose TCP option area was malformed and parsed
        #: partially (tolerant budgets only).
        self.option_errors = 0
        #: Packets whose TCP checksum failed verification.
        self.checksum_errors = 0
        #: Packets whose requested checksum verification was skipped
        #: by the lazy columnar path.
        self.checksums_skipped = 0

    def __iter__(self) -> Iterator[PacketRecord]:
        return self.iter_records()

    def iter_records(
        self, buffer_bytes: int = READ_BUFFER_BYTES
    ) -> Iterator[PacketRecord]:
        """Yield records one at a time, reading the file in
        ``buffer_bytes`` slabs (constant memory regardless of trace
        size)."""
        scanner = PcapScanner(
            self._endian, self.linktype, self.errors, counters=self
        )
        while True:
            slab = self._file.read(buffer_bytes)
            if not slab:
                break
            scanner.push(slab)
            yield from scanner.drain()
        scanner.finish()
        yield from scanner.drain()

    def iter_columns(
        self, buffer_bytes: int = COLUMN_BUFFER_BYTES
    ) -> Iterator[PacketColumns]:
        """Yield :class:`~repro.packet.columnar.PacketColumns` batches,
        one per ``buffer_bytes`` slab — the columnar counterpart of
        :meth:`iter_records`, with identical skip/recovery counters.

        Regular files are memory-mapped and decoded through zero-copy
        slab windows; unmappable sources (pipes) fall back to plain
        reads.  Either way memory stays bounded by the slab size, not
        the trace size."""
        scanner = PcapScanner(
            self._endian, self.linktype, self.errors, counters=self
        )
        try:
            mapped = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
        except (ValueError, OSError):
            mapped = None
        if mapped is not None:
            yield from self._iter_columns_mapped(
                scanner, mapped, buffer_bytes
            )
            return
        while True:
            slab = self._file.read(buffer_bytes)
            if not slab:
                break
            scanner.push(slab)
            columns = scanner.drain_columns()
            if len(columns):
                yield columns
            pending = scanner.pending_bytes
            if 0 < pending < len(slab):
                # Rewind over the partial record tail and re-read it
                # at the head of the next slab; every push then adopts
                # its slab by reference, copying nothing.  (A tail as
                # large as the whole slab — a record bigger than the
                # buffer — falls back to buffer growth instead.)
                self._file.seek(-pending, 1)
                scanner.drop_pending()
        scanner.finish()
        columns = scanner.drain_columns()
        if len(columns):
            yield columns

    def _iter_columns_mapped(
        self, scanner: PcapScanner, mapped: "mmap.mmap", buffer_bytes: int
    ) -> Iterator[PacketColumns]:
        """Slab windows over a memory-mapped capture: each push hands
        the scanner a :class:`memoryview` slice, so no capture byte is
        ever copied on its way to the columnar decoder."""
        view = memoryview(mapped)
        size = len(view)
        pos = self._file.tell()
        window = buffer_bytes
        while pos < size:
            end = min(pos + window, size)
            scanner.push(view[pos:end])
            columns = scanner.drain_columns()
            if len(columns):
                yield columns
            pending = scanner.pending_bytes
            if pending == 0 or end == size:
                # Fully consumed — or at EOF, where the tail stays
                # with the scanner for finish() to judge.
                pos = end
                window = buffer_bytes
                continue
            consumed = (end - pos) - pending
            pos = end - pending
            scanner.drop_pending()
            # A record larger than the window makes no progress;
            # double the window until it fits.
            window = buffer_bytes if consumed else window * 2
        scanner.finish()
        columns = scanner.drain_columns()
        if len(columns):
            yield columns
        self._file.seek(size)

    def iter_chunks(
        self,
        chunk_packets: int = 4096,
        buffer_bytes: int = READ_BUFFER_BYTES,
    ) -> Iterator[list[PacketRecord]]:
        """Yield records grouped into lists of ``chunk_packets`` (the
        last may be shorter) — the unit of fan-out for streaming
        analysis."""
        if chunk_packets < 1:
            raise ValueError("chunk_packets must be >= 1")
        chunk: list[PacketRecord] = []
        for record in self.iter_records(buffer_bytes):
            chunk.append(record)
            if len(chunk) >= chunk_packets:
                yield chunk
                chunk = []
        if chunk:
            yield chunk

    def fold_faults(self, faults) -> None:
        """Fold this reader's recovery counters into a
        :class:`repro.errors.FaultStats`."""
        faults.corrupt_records += self.corrupt_records
        faults.resyncs += self.resyncs
        faults.option_errors += self.option_errors
        faults.checksum_errors += self.checksum_errors
        faults.checksums_skipped += self.checksums_skipped

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "PcapReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def write_pcap(
    path: str | Path,
    records: Iterable[PacketRecord],
    linktype: int = LINKTYPE_RAW,
) -> int:
    """Write all ``records`` to ``path``; return the packet count."""
    with PcapWriter(path, linktype=linktype) as writer:
        return writer.write_all(records)


def read_pcap(
    path: str | Path, errors: "ErrorBudget | str | None" = None
) -> list[PacketRecord]:
    """Read every packet record from ``path``."""
    with PcapReader(path, errors=errors) as reader:
        return list(reader)
