"""32-bit TCP sequence-number arithmetic.

TCP sequence numbers live in a 32-bit space and wrap around.  All
comparisons must therefore be made modulo 2**32 using signed circular
distance, exactly as the Linux kernel's ``before()``/``after()`` macros
do.  Every module in this repository that touches sequence numbers goes
through these helpers so that wraparound is handled in exactly one
place.
"""

from __future__ import annotations

SEQ_SPACE = 1 << 32
_HALF_SPACE = 1 << 31


def seq_add(seq: int, delta: int) -> int:
    """Return ``seq + delta`` modulo the 32-bit sequence space."""
    return (seq + delta) % SEQ_SPACE


def seq_sub(a: int, b: int) -> int:
    """Return the circular distance ``a - b``.

    The result is signed: positive when ``a`` is after ``b``, negative
    when ``a`` is before ``b``.  Values are interpreted using the usual
    "closest direction around the circle" rule, which is correct as long
    as the two numbers are within 2**31 of each other (always true for
    real TCP windows).
    """
    diff = (a - b) % SEQ_SPACE
    if diff >= _HALF_SPACE:
        diff -= SEQ_SPACE
    return diff


def seq_before(a: int, b: int) -> bool:
    """True when sequence number ``a`` is strictly before ``b``."""
    return seq_sub(a, b) < 0


def seq_after(a: int, b: int) -> bool:
    """True when sequence number ``a`` is strictly after ``b``."""
    return seq_sub(a, b) > 0


def seq_leq(a: int, b: int) -> bool:
    """True when ``a`` is before or equal to ``b``."""
    return seq_sub(a, b) <= 0


def seq_geq(a: int, b: int) -> bool:
    """True when ``a`` is after or equal to ``b``."""
    return seq_sub(a, b) >= 0


def seq_max(a: int, b: int) -> int:
    """Return the later of two sequence numbers."""
    return a if seq_after(a, b) else b


def seq_min(a: int, b: int) -> int:
    """Return the earlier of two sequence numbers."""
    return a if seq_before(a, b) else b


def seq_between(seq: int, low: int, high: int) -> bool:
    """True when ``low <= seq < high`` in circular order."""
    return seq_leq(low, seq) and seq_before(seq, high)


def seq_wrap(seq: int) -> int:
    """Clamp an arbitrary integer into the 32-bit sequence space."""
    return seq % SEQ_SPACE
