"""Internet checksum (RFC 1071) used by the IPv4 and TCP headers."""

from __future__ import annotations

import struct


def ones_complement_sum(data: bytes) -> int:
    """Return the 16-bit one's-complement sum of ``data``.

    Odd-length input is padded with a trailing zero byte, as RFC 1071
    specifies.
    """
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def checksum(data: bytes) -> int:
    """Return the Internet checksum of ``data``."""
    return (~ones_complement_sum(data)) & 0xFFFF


def tcp_pseudo_header(src_ip: int, dst_ip: int, tcp_length: int) -> bytes:
    """Build the IPv4 pseudo-header used in the TCP checksum."""
    return struct.pack("!IIBBH", src_ip, dst_ip, 0, 6, tcp_length)


def tcp_checksum(src_ip: int, dst_ip: int, segment: bytes) -> int:
    """Compute the TCP checksum over pseudo-header + segment."""
    pseudo = tcp_pseudo_header(src_ip, dst_ip, len(segment))
    return checksum(pseudo + segment)


def verify_tcp_checksum(src_ip: int, dst_ip: int, segment: bytes) -> bool:
    """True when ``segment`` (with its checksum field filled) verifies."""
    pseudo = tcp_pseudo_header(src_ip, dst_ip, len(segment))
    return ones_complement_sum(pseudo + segment) == 0xFFFF
