"""IPv4 and TCP header structures with wire-format codecs.

These are deliberately minimal: enough to serialize the simulator's
traffic into real pcap files and to parse those files back in TAPO.
IP addresses are stored as 32-bit integers; :func:`ip_to_str` and
:func:`ip_from_str` convert to and from dotted-quad notation.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..errors import ParseError
from .checksum import checksum, tcp_checksum
from .options import TCPOptions

IPPROTO_TCP = 6

# TCP flag bits.
FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10
FLAG_URG = 0x20


class HeaderDecodeError(ParseError):
    """Raised when a packet cannot be parsed."""


def ip_from_str(text: str) -> int:
    """Parse dotted-quad notation into a 32-bit integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError("not a dotted quad: %r" % text)
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError("octet out of range in %r" % text)
        value = (value << 8) | octet
    return value


def ip_to_str(value: int) -> str:
    """Format a 32-bit integer as dotted-quad notation."""
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(slots=True)
class IPv4Header:
    """An IPv4 header without options (IHL = 5)."""

    src: int
    dst: int
    total_length: int = 0
    identification: int = 0
    ttl: int = 64
    protocol: int = IPPROTO_TCP

    HEADER_LEN = 20

    def encode(self) -> bytes:
        header = struct.pack(
            "!BBHHHBBHII",
            (4 << 4) | 5,
            0,
            self.total_length,
            self.identification,
            0,
            self.ttl,
            self.protocol,
            0,
            self.src,
            self.dst,
        )
        csum = checksum(header)
        return header[:10] + struct.pack("!H", csum) + header[12:]

    @classmethod
    def decode(cls, data: bytes) -> tuple["IPv4Header", int]:
        """Parse an IPv4 header; return (header, header_length)."""
        if len(data) < cls.HEADER_LEN:
            raise HeaderDecodeError("IPv4 header truncated")
        (
            ver_ihl,
            _tos,
            total_length,
            identification,
            _frag,
            ttl,
            protocol,
            _csum,
            src,
            dst,
        ) = struct.unpack("!BBHHHBBHII", data[: cls.HEADER_LEN])
        version = ver_ihl >> 4
        ihl = (ver_ihl & 0x0F) * 4
        if version != 4:
            raise HeaderDecodeError("not IPv4 (version=%d)" % version)
        if ihl < cls.HEADER_LEN or ihl > len(data):
            raise HeaderDecodeError("bad IHL %d" % ihl)
        header = cls(
            src=src,
            dst=dst,
            total_length=total_length,
            identification=identification,
            ttl=ttl,
            protocol=protocol,
        )
        return header, ihl


@dataclass(slots=True)
class TCPHeader:
    """A TCP header with decoded options."""

    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int = FLAG_ACK
    window: int = 65535
    urgent: int = 0
    options: TCPOptions = field(default_factory=TCPOptions)

    BASE_LEN = 20

    @property
    def syn(self) -> bool:
        return bool(self.flags & FLAG_SYN)

    @property
    def fin(self) -> bool:
        return bool(self.flags & FLAG_FIN)

    @property
    def rst(self) -> bool:
        return bool(self.flags & FLAG_RST)

    @property
    def ack_flag(self) -> bool:
        return bool(self.flags & FLAG_ACK)

    @property
    def psh(self) -> bool:
        return bool(self.flags & FLAG_PSH)

    def header_length(self) -> int:
        return self.BASE_LEN + self.options.wire_length()

    def encode(self, payload: bytes, src_ip: int, dst_ip: int) -> bytes:
        """Serialize header + payload with a valid checksum."""
        opt_bytes = self.options.encode()
        data_offset = (self.BASE_LEN + len(opt_bytes)) // 4
        header = struct.pack(
            "!HHIIBBHHH",
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            data_offset << 4,
            self.flags,
            self.window,
            0,
            self.urgent,
        )
        segment = header + opt_bytes + payload
        csum = tcp_checksum(src_ip, dst_ip, segment)
        return segment[:16] + struct.pack("!H", csum) + segment[18:]

    @classmethod
    def decode(
        cls, data: bytes, lenient: bool = False
    ) -> tuple["TCPHeader", int]:
        """Parse a TCP header; return (header, header_length).

        ``lenient`` tolerates a malformed option area (partial options
        are kept) instead of raising
        :class:`~repro.packet.options.OptionDecodeError`.
        """
        if len(data) < cls.BASE_LEN:
            raise HeaderDecodeError("TCP header truncated")
        (
            src_port,
            dst_port,
            seq,
            ack,
            offset_reserved,
            flags,
            window,
            _csum,
            urgent,
        ) = struct.unpack("!HHIIBBHHH", data[: cls.BASE_LEN])
        header_len = (offset_reserved >> 4) * 4
        if header_len < cls.BASE_LEN or header_len > len(data):
            raise HeaderDecodeError("bad TCP data offset %d" % header_len)
        options = TCPOptions.decode(
            data[cls.BASE_LEN : header_len], lenient=lenient
        )
        header = cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
            urgent=urgent,
            options=options,
        )
        return header, header_len
