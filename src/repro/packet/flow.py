"""Flow identification and demultiplexing.

A *flow* is one TCP connection identified by its canonical 4-tuple.
The analyzer works from the server's point of view, so every flow is
oriented: the *server endpoint* is the sender whose stalls we classify,
and packets are tagged :data:`Direction.OUT` (server -> client) or
:data:`Direction.IN` (client -> server).
"""

from __future__ import annotations

import enum
from collections import defaultdict
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field

from .packet import PacketRecord


class Direction(enum.Enum):
    """Packet direction relative to the server endpoint."""

    OUT = "out"  # server -> client
    IN = "in"  # client -> server


_M64 = 0xFFFFFFFFFFFFFFFF


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: avalanche a 64-bit value.

    The columnar batch decoder vectorizes this exact sequence
    (:meth:`repro.packet.columnar.PacketColumns.shard_ids`), so the two
    implementations must stay in lockstep bit for bit.
    """
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & _M64
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & _M64
    return x ^ (x >> 31)


def flow_shard(
    src_ip: int, src_port: int, dst_ip: int, dst_port: int, n_shards: int
) -> int:
    """Deterministic shard of a flow, direction-invariant.

    Each endpoint packs into 48 bits (``ip << 16 | port``) and runs
    through :func:`_mix64`; the two hashes combine with XOR, which is
    commutative, so both directions of a connection land on the same
    shard without canonicalizing the endpoint order first.  The mix is
    explicit (not Python ``hash()``) so shard assignment is identical
    across processes, platforms, and interpreter versions — the
    cluster's checkpoint/resume and merge-parity guarantees depend on
    that.
    """
    a = _mix64((src_ip << 16) | src_port)
    b = _mix64((dst_ip << 16) | dst_port)
    return (a ^ b) % n_shards


@dataclass(frozen=True, order=True)
class FlowKey:
    """Canonical 4-tuple: the endpoints sorted so either direction maps
    to the same key."""

    ip_a: int
    port_a: int
    ip_b: int
    port_b: int

    @classmethod
    def from_packet(cls, pkt: PacketRecord) -> "FlowKey":
        a = (pkt.src_ip, pkt.src_port)
        b = (pkt.dst_ip, pkt.dst_port)
        if a > b:
            a, b = b, a
        return cls(a[0], a[1], b[0], b[1])

    def endpoints(self) -> tuple[tuple[int, int], tuple[int, int]]:
        return (self.ip_a, self.port_a), (self.ip_b, self.port_b)

    def shard_of(self, n_shards: int) -> int:
        """Which of ``n_shards`` cluster shards owns this flow."""
        return flow_shard(
            self.ip_a, self.port_a, self.ip_b, self.port_b, n_shards
        )


ServerPredicate = Callable[[PacketRecord], bool]


def server_by_ip(*server_ips: int) -> ServerPredicate:
    """Predicate: the server endpoint is any of the given IPs."""
    ips = frozenset(server_ips)

    def predicate(pkt: PacketRecord) -> bool:
        return pkt.src_ip in ips

    return predicate


def server_by_port(*server_ports: int) -> ServerPredicate:
    """Predicate: the server endpoint is any of the given ports
    (e.g. 80/443 for a front-end web server)."""
    ports = frozenset(server_ports)

    def predicate(pkt: PacketRecord) -> bool:
        return pkt.src_port in ports

    return predicate


@dataclass
class FlowTrace:
    """All packets of one connection, oriented toward the server.

    ``server`` / ``client`` are (ip, port) endpoints; ``packets`` is the
    time-ordered capture with a direction tag per packet.
    """

    key: FlowKey
    server: tuple[int, int]
    client: tuple[int, int]
    packets: list[tuple[PacketRecord, Direction]]

    def direction_of(self, pkt: PacketRecord) -> Direction:
        if (pkt.src_ip, pkt.src_port) == self.server:
            return Direction.OUT
        return Direction.IN

    def append(self, pkt: PacketRecord) -> None:
        self.packets.append((pkt, self.direction_of(pkt)))

    @property
    def first_time(self) -> float:
        return self.packets[0][0].timestamp if self.packets else 0.0

    @property
    def last_time(self) -> float:
        return self.packets[-1][0].timestamp if self.packets else 0.0

    @property
    def duration(self) -> float:
        return self.last_time - self.first_time

    def out_packets(self) -> list[PacketRecord]:
        return [p for p, d in self.packets if d is Direction.OUT]

    def in_packets(self) -> list[PacketRecord]:
        return [p for p, d in self.packets if d is Direction.IN]

    def bytes_out(self) -> int:
        return sum(p.payload_len for p, d in self.packets if d is Direction.OUT)


class FlowDemuxer:
    """Group a packet stream into per-connection :class:`FlowTrace`\\ s.

    The ``server_side`` predicate decides, for each packet, whether its
    *source* is the server endpoint.  When no predicate is given the
    demuxer infers the server as the endpoint that sent the SYN+ACK
    (falling back to the destination of the first SYN, then to the
    endpoint sending the most data).
    """

    def __init__(self, server_side: ServerPredicate | None = None):
        self._server_side = server_side
        self._flows: dict[FlowKey, FlowTrace] = {}
        self._pending: dict[FlowKey, list[PacketRecord]] = defaultdict(list)

    def feed(self, pkt: PacketRecord) -> FlowKey:
        key = FlowKey.from_packet(pkt)
        flow = self._flows.get(key)
        if flow is not None:
            flow.append(pkt)
            return key
        server = self._identify_server(key, pkt)
        if server is None:
            self._pending[key].append(pkt)
            return key
        endpoints = key.endpoints()
        client = endpoints[1] if endpoints[0] == server else endpoints[0]
        flow = FlowTrace(key=key, server=server, client=client, packets=[])
        for earlier in self._pending.pop(key, []):
            flow.append(earlier)
        flow.append(pkt)
        self._flows[key] = flow
        return key

    def feed_all(self, packets: Iterable[PacketRecord]) -> None:
        for pkt in packets:
            self.feed(pkt)

    def _identify_server(
        self, key: FlowKey, pkt: PacketRecord
    ) -> tuple[int, int] | None:
        if self._server_side is not None:
            if self._server_side(pkt):
                return (pkt.src_ip, pkt.src_port)
            return (pkt.dst_ip, pkt.dst_port)
        # Inference: SYN+ACK source is the server; a bare SYN points at it.
        if pkt.syn and pkt.has_ack:
            return (pkt.src_ip, pkt.src_port)
        if pkt.syn:
            return (pkt.dst_ip, pkt.dst_port)
        return None

    def _resolve_pending(self, key: FlowKey) -> FlowTrace:
        """Force a still-ambiguous flow into a trace, inferring the
        server by data volume (the heavier sender is assumed to be the
        server)."""
        packets = self._pending.pop(key)
        by_endpoint: dict[tuple[int, int], int] = defaultdict(int)
        for pkt in packets:
            by_endpoint[(pkt.src_ip, pkt.src_port)] += pkt.payload_len
        server = max(by_endpoint, key=by_endpoint.get)  # type: ignore[arg-type]
        endpoints = key.endpoints()
        client = endpoints[1] if endpoints[0] == server else endpoints[0]
        flow = FlowTrace(key=key, server=server, client=client, packets=[])
        for pkt in packets:
            flow.append(pkt)
        return flow

    def flows(self) -> list[FlowTrace]:
        """Finalized flows, resolving any still-ambiguous ones by data
        volume (the heavier sender is assumed to be the server)."""
        for key in list(self._pending):
            self._flows[key] = self._resolve_pending(key)
        return sorted(self._flows.values(), key=lambda f: f.first_time)


def demux(
    packets: Iterable[PacketRecord],
    server_side: ServerPredicate | None = None,
) -> list[FlowTrace]:
    """Convenience wrapper: demultiplex ``packets`` into flows."""
    demuxer = FlowDemuxer(server_side)
    demuxer.feed_all(packets)
    return demuxer.flows()


# -- streaming demux ------------------------------------------------------


@dataclass
class StreamStats:
    """Accounting for one streaming demux pass.

    ``buffered_packets`` tracks the packets currently held by open
    flows (identified and pending); its peak is the demuxer's actual
    memory bound and what :mod:`benchmarks.bench_stream_memory`
    asserts stays flat as the trace grows.
    """

    packets: int = 0
    flows_started: int = 0
    flows_closed: int = 0  # evicted after FIN/FIN or RST + linger
    flows_evicted_idle: int = 0  # evicted on the idle timeout
    flows_finalized: int = 0  # still open at end of stream
    flows_reopened: int = 0  # tuple seen again after eviction (no SYN)
    buffered_packets: int = 0
    peak_buffered_packets: int = 0
    active_flows: int = 0
    peak_active_flows: int = 0

    @property
    def flows_total(self) -> int:
        return self.flows_closed + self.flows_evicted_idle + self.flows_finalized

    def to_registry(self, registry, prefix: str = "repro_stream_") -> None:
        """Fold this pass into a :class:`repro.obs.metrics.MetricsRegistry`."""
        registry.counter(
            prefix + "packets_total", "Packets demultiplexed"
        ).inc(self.packets)
        registry.counter(
            prefix + "flows_closed_total", "Flows evicted after FIN/RST"
        ).inc(self.flows_closed)
        registry.counter(
            prefix + "flows_evicted_idle_total",
            "Flows evicted on the idle timeout",
        ).inc(self.flows_evicted_idle)
        registry.counter(
            prefix + "flows_finalized_total",
            "Flows still open at end of stream",
        ).inc(self.flows_finalized)
        registry.counter(
            prefix + "flows_reopened_total",
            "Flows restarted mid-stream after eviction (no SYN seen)",
        ).inc(self.flows_reopened)
        registry.gauge(
            prefix + "peak_buffered_packets",
            "Most packets buffered in open flows at once",
        ).set(float(self.peak_buffered_packets))
        registry.gauge(
            prefix + "peak_active_flows", "Most flows open at once"
        ).set(float(self.peak_active_flows))


class StreamDemuxer(FlowDemuxer):
    """Demultiplex an unbounded packet stream with bounded memory.

    Flows are *evicted* — removed from the demuxer and handed to the
    caller as completed :class:`FlowTrace`\\ s — as soon as the stream
    shows they are over:

    * a clean close (FIN seen from both endpoints) or an RST, after
      ``close_linger`` seconds of trace time so straggling
      retransmissions still attach to the flow;
    * no packets for ``idle_timeout`` seconds of trace time.

    Memory is therefore O(open flows), not O(trace).  Either bound may
    be ``None`` to disable it; with both disabled the demuxer holds
    everything and :meth:`finish` reproduces batch :func:`demux`
    exactly.  Trace-time monotonicity is assumed, as everywhere else
    in the analyzer.

    The caveat versus batch demux: if the same 4-tuple reappears
    *after* its flow was evicted (port reuse, or a straggler beyond
    the linger), the new packets start a fresh flow instead of merging
    into the old one.  ``stats.flows_reopened`` counts flows that
    started without a SYN, which upper-bounds how often that happened.
    """

    #: Eviction sweeps cost O(open flows); amortize by sweeping at
    #: most once per this fraction of the smallest timeout.
    _SWEEP_FRACTION = 0.25

    def __init__(
        self,
        server_side: ServerPredicate | None = None,
        *,
        idle_timeout: float | None = 60.0,
        close_linger: float | None = 5.0,
        stats: StreamStats | None = None,
    ):
        super().__init__(server_side)
        self.idle_timeout = idle_timeout
        self.close_linger = close_linger
        self.stats = stats if stats is not None else StreamStats()
        self._ready: list[FlowTrace] = []
        self._fins: dict[FlowKey, set[tuple[int, int]]] = {}
        self._closed_at: dict[FlowKey, float] = {}
        self._last_seen: dict[FlowKey, float] = {}
        bounds = [b for b in (idle_timeout, close_linger) if b is not None]
        self._sweep_every = (
            max(min(bounds) * self._SWEEP_FRACTION, 1e-3) if bounds else None
        )
        self._next_sweep: float | None = None

    # -- feeding ------------------------------------------------------
    def feed(self, pkt: PacketRecord) -> FlowKey:
        known_before = self._is_known(FlowKey.from_packet(pkt))
        key = super().feed(pkt)
        stats = self.stats
        stats.packets += 1
        stats.buffered_packets += 1
        if stats.buffered_packets > stats.peak_buffered_packets:
            stats.peak_buffered_packets = stats.buffered_packets
        if not known_before:
            stats.flows_started += 1
            if not pkt.syn:
                stats.flows_reopened += 1
            stats.active_flows += 1
            if stats.active_flows > stats.peak_active_flows:
                stats.peak_active_flows = stats.active_flows
        now = pkt.timestamp
        self._last_seen[key] = now
        if pkt.rst:
            self._closed_at.setdefault(key, now)
        elif pkt.fin:
            fins = self._fins.setdefault(key, set())
            fins.add((pkt.src_ip, pkt.src_port))
            if len(fins) >= 2:
                self._closed_at.setdefault(key, now)
        if self._sweep_every is not None:
            if self._next_sweep is None:
                self._next_sweep = now + self._sweep_every
            elif now >= self._next_sweep:
                self._sweep(now)
                self._next_sweep = now + self._sweep_every
        return key

    def _is_known(self, key: FlowKey) -> bool:
        return key in self._flows or key in self._pending

    # -- eviction -----------------------------------------------------
    def _sweep(self, now: float) -> None:
        evict: list[tuple[float, FlowKey, bool]] = []
        for key, last in self._last_seen.items():
            closed_at = self._closed_at.get(key)
            if (
                self.close_linger is not None
                and closed_at is not None
                and now - closed_at >= self.close_linger
            ):
                evict.append((closed_at, key, True))
            elif (
                self.idle_timeout is not None
                and now - last >= self.idle_timeout
            ):
                evict.append((last, key, False))
        # Deterministic hand-off order: by close/last-activity time.
        evict.sort(key=lambda item: (item[0], item[1]))
        for _when, key, was_closed in evict:
            self._evict(key, was_closed)

    def _evict(self, key: FlowKey, was_closed: bool) -> None:
        flow = self._flows.pop(key, None)
        if flow is None:
            if key not in self._pending:
                return
            flow = self._resolve_pending(key)
        self._fins.pop(key, None)
        self._closed_at.pop(key, None)
        self._last_seen.pop(key, None)
        stats = self.stats
        stats.buffered_packets -= len(flow.packets)
        stats.active_flows -= 1
        if was_closed:
            stats.flows_closed += 1
        else:
            stats.flows_evicted_idle += 1
        self._ready.append(flow)

    # -- hand-off -----------------------------------------------------
    def poll(self) -> list[FlowTrace]:
        """Flows completed since the last call (possibly empty)."""
        ready, self._ready = self._ready, []
        return ready

    def finish(self) -> list[FlowTrace]:
        """Flush every still-open flow, sorted by first packet time
        (the batch :meth:`FlowDemuxer.flows` order)."""
        remaining = self.flows()  # resolves pending, sorts by first_time
        self._flows.clear()
        self._fins.clear()
        self._closed_at.clear()
        self._last_seen.clear()
        stats = self.stats
        for flow in remaining:
            stats.buffered_packets -= len(flow.packets)
            stats.active_flows -= 1
            stats.flows_finalized += 1
        return remaining


def demux_stream(
    packets: Iterable[PacketRecord],
    server_side: ServerPredicate | None = None,
    *,
    idle_timeout: float | None = 60.0,
    close_linger: float | None = 5.0,
    stats: StreamStats | None = None,
) -> Iterator[FlowTrace]:
    """Incrementally demultiplex ``packets``, yielding each flow as it
    completes (FIN/RST close or idle timeout) and flushing the rest at
    end of stream.  Memory stays O(open flows); see
    :class:`StreamDemuxer` for the eviction rules.
    """
    demuxer = StreamDemuxer(
        server_side,
        idle_timeout=idle_timeout,
        close_linger=close_linger,
        stats=stats,
    )
    for pkt in packets:
        demuxer.feed(pkt)
        if demuxer._ready:
            yield from demuxer.poll()
    yield from demuxer.finish()
