"""Flow identification and demultiplexing.

A *flow* is one TCP connection identified by its canonical 4-tuple.
The analyzer works from the server's point of view, so every flow is
oriented: the *server endpoint* is the sender whose stalls we classify,
and packets are tagged :data:`Direction.OUT` (server -> client) or
:data:`Direction.IN` (client -> server).
"""

from __future__ import annotations

import enum
from collections import defaultdict
from collections.abc import Callable, Iterable
from dataclasses import dataclass

from .packet import PacketRecord


class Direction(enum.Enum):
    """Packet direction relative to the server endpoint."""

    OUT = "out"  # server -> client
    IN = "in"  # client -> server


@dataclass(frozen=True, order=True)
class FlowKey:
    """Canonical 4-tuple: the endpoints sorted so either direction maps
    to the same key."""

    ip_a: int
    port_a: int
    ip_b: int
    port_b: int

    @classmethod
    def from_packet(cls, pkt: PacketRecord) -> "FlowKey":
        a = (pkt.src_ip, pkt.src_port)
        b = (pkt.dst_ip, pkt.dst_port)
        if a > b:
            a, b = b, a
        return cls(a[0], a[1], b[0], b[1])

    def endpoints(self) -> tuple[tuple[int, int], tuple[int, int]]:
        return (self.ip_a, self.port_a), (self.ip_b, self.port_b)


ServerPredicate = Callable[[PacketRecord], bool]


def server_by_ip(*server_ips: int) -> ServerPredicate:
    """Predicate: the server endpoint is any of the given IPs."""
    ips = frozenset(server_ips)

    def predicate(pkt: PacketRecord) -> bool:
        return pkt.src_ip in ips

    return predicate


def server_by_port(*server_ports: int) -> ServerPredicate:
    """Predicate: the server endpoint is any of the given ports
    (e.g. 80/443 for a front-end web server)."""
    ports = frozenset(server_ports)

    def predicate(pkt: PacketRecord) -> bool:
        return pkt.src_port in ports

    return predicate


@dataclass
class FlowTrace:
    """All packets of one connection, oriented toward the server.

    ``server`` / ``client`` are (ip, port) endpoints; ``packets`` is the
    time-ordered capture with a direction tag per packet.
    """

    key: FlowKey
    server: tuple[int, int]
    client: tuple[int, int]
    packets: list[tuple[PacketRecord, Direction]]

    def direction_of(self, pkt: PacketRecord) -> Direction:
        if (pkt.src_ip, pkt.src_port) == self.server:
            return Direction.OUT
        return Direction.IN

    def append(self, pkt: PacketRecord) -> None:
        self.packets.append((pkt, self.direction_of(pkt)))

    @property
    def first_time(self) -> float:
        return self.packets[0][0].timestamp if self.packets else 0.0

    @property
    def last_time(self) -> float:
        return self.packets[-1][0].timestamp if self.packets else 0.0

    @property
    def duration(self) -> float:
        return self.last_time - self.first_time

    def out_packets(self) -> list[PacketRecord]:
        return [p for p, d in self.packets if d is Direction.OUT]

    def in_packets(self) -> list[PacketRecord]:
        return [p for p, d in self.packets if d is Direction.IN]

    def bytes_out(self) -> int:
        return sum(p.payload_len for p, d in self.packets if d is Direction.OUT)


class FlowDemuxer:
    """Group a packet stream into per-connection :class:`FlowTrace`\\ s.

    The ``server_side`` predicate decides, for each packet, whether its
    *source* is the server endpoint.  When no predicate is given the
    demuxer infers the server as the endpoint that sent the SYN+ACK
    (falling back to the destination of the first SYN, then to the
    endpoint sending the most data).
    """

    def __init__(self, server_side: ServerPredicate | None = None):
        self._server_side = server_side
        self._flows: dict[FlowKey, FlowTrace] = {}
        self._pending: dict[FlowKey, list[PacketRecord]] = defaultdict(list)

    def feed(self, pkt: PacketRecord) -> None:
        key = FlowKey.from_packet(pkt)
        flow = self._flows.get(key)
        if flow is not None:
            flow.append(pkt)
            return
        server = self._identify_server(key, pkt)
        if server is None:
            self._pending[key].append(pkt)
            return
        endpoints = key.endpoints()
        client = endpoints[1] if endpoints[0] == server else endpoints[0]
        flow = FlowTrace(key=key, server=server, client=client, packets=[])
        for earlier in self._pending.pop(key, []):
            flow.append(earlier)
        flow.append(pkt)
        self._flows[key] = flow

    def feed_all(self, packets: Iterable[PacketRecord]) -> None:
        for pkt in packets:
            self.feed(pkt)

    def _identify_server(
        self, key: FlowKey, pkt: PacketRecord
    ) -> tuple[int, int] | None:
        if self._server_side is not None:
            if self._server_side(pkt):
                return (pkt.src_ip, pkt.src_port)
            return (pkt.dst_ip, pkt.dst_port)
        # Inference: SYN+ACK source is the server; a bare SYN points at it.
        if pkt.syn and pkt.has_ack:
            return (pkt.src_ip, pkt.src_port)
        if pkt.syn:
            return (pkt.dst_ip, pkt.dst_port)
        return None

    def flows(self) -> list[FlowTrace]:
        """Finalized flows, resolving any still-ambiguous ones by data
        volume (the heavier sender is assumed to be the server)."""
        for key, packets in list(self._pending.items()):
            by_endpoint: dict[tuple[int, int], int] = defaultdict(int)
            for pkt in packets:
                by_endpoint[(pkt.src_ip, pkt.src_port)] += pkt.payload_len
            server = max(by_endpoint, key=by_endpoint.get)  # type: ignore[arg-type]
            endpoints = key.endpoints()
            client = endpoints[1] if endpoints[0] == server else endpoints[0]
            flow = FlowTrace(key=key, server=server, client=client, packets=[])
            for pkt in packets:
                flow.append(pkt)
            self._flows[key] = flow
            del self._pending[key]
        return sorted(self._flows.values(), key=lambda f: f.first_time)


def demux(
    packets: Iterable[PacketRecord],
    server_side: ServerPredicate | None = None,
) -> list[FlowTrace]:
    """Convenience wrapper: demultiplex ``packets`` into flows."""
    demuxer = FlowDemuxer(server_side)
    demuxer.feed_all(packets)
    return demuxer.flows()
