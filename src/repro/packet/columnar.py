"""Zero-copy columnar batch decode of pcap slabs.

The object pipeline materializes one :class:`~repro.packet.packet.
PacketRecord` (plus a :class:`~repro.packet.options.TCPOptions`) per
packet *before* demux ever sees it, which is the analyzer's
single-core throughput ceiling.  This module parses a whole slab of
framed pcap records into :class:`PacketColumns` — parallel arrays of
timestamps, endpoints, seq/ack numbers, flags, windows and payload
lengths — so the demux and the first-pass stall screen can run over
plain integers and only the flows that need the full object oracle
pay for materialization.

Two decoders produce identical columns:

* a vectorized path using :mod:`numpy` when it is importable — field
  bytes are gathered straight out of the slab buffer (zero copy) and
  assembled with array arithmetic;
* a pure-Python ``struct.unpack_from`` loop otherwise.

numpy is strictly optional: nothing in the public API exposes numpy
types (columns are stdlib :class:`array.array` objects holding plain
Python ints/floats), and the fallback is used transparently.

Validation mirrors :meth:`PacketRecord.decode
<repro.packet.packet.PacketRecord.decode>` *exactly* — the same
records are skipped, the same option areas raise in strict mode —
because the columnar path must be indistinguishable from the object
path in everything but speed.

TCP options are the one variable-length part of a packet.  The
overwhelmingly common case in server traces is a 12-byte timestamp
option area (``NOP NOP TS`` or ``TS`` + padding); those are decoded
with a branch-free pattern match into ``ts_val``/``ts_ecr`` columns.
Anything else — SYN options, SACK blocks, malformed areas — falls
back to the real :meth:`TCPOptions.decode
<repro.packet.options.TCPOptions.decode>` and the decoded object is
kept in a side table, so materialization reproduces the object path's
options byte for byte (including ``truncated_options`` accounting and
strict-mode :class:`~repro.packet.options.OptionDecodeError`).
"""

from __future__ import annotations

import struct
from array import array
from collections.abc import Iterator

from .headers import FLAG_ACK, FLAG_FIN, FLAG_RST, FLAG_SYN
from .options import TCPOptions
from .packet import PacketRecord

try:  # optional accelerator — never a hard dependency
    import numpy as _np
except Exception:  # pragma: no cover - exercised on numpy-less installs
    _np = None

#: Typecode holding an unsigned 32-bit value exactly.
_U32 = "I" if array("I").itemsize == 4 else "L"
_U32_ITEMSIZE = array(_U32).itemsize

#: ``optbits`` flags.
OPT_TS = 0x01   #: pattern-matched timestamp option (ts_val/ts_ecr valid)
OPT_ODD = 0x02  #: full decode kept in :attr:`PacketColumns.odd_options`

_ETHERTYPE_IPV4 = 0x0800

_TCP_FIXED = struct.Struct("!HHII")
_BE32 = struct.Struct("!I")


class PacketColumns:
    """One batch of decoded packets as parallel arrays.

    Column ``i`` across every array describes packet ``i`` of the
    batch, in capture order.  All values are plain Python ints/floats
    (``seq``/``ack`` are raw uint32 — callers use
    :mod:`repro.packet.seqnum` for wraparound-correct comparisons).

    ``optbits[i]`` says how packet ``i``'s TCP options were handled:
    :data:`OPT_TS` means the timestamp columns are valid, or
    :data:`OPT_ODD` means the fully-decoded
    :class:`~repro.packet.options.TCPOptions` sits in
    :attr:`odd_options`; ``0`` means the option area was empty.

    Batches built from already-materialized records (see
    :meth:`from_records`) keep the original objects in
    :attr:`source_records`, so :meth:`record` returns them unchanged.
    """

    __slots__ = (
        "timestamps", "src_ip", "dst_ip", "src_port", "dst_port",
        "seq", "ack", "flags", "window", "payload_len",
        "ts_val", "ts_ecr", "optbits", "odd_options", "source_records",
    )

    def __init__(self) -> None:
        self.timestamps = array("d")
        self.src_ip = array(_U32)
        self.dst_ip = array(_U32)
        self.src_port = array("H")
        self.dst_port = array("H")
        self.seq = array(_U32)
        self.ack = array(_U32)
        self.flags = array("B")
        self.window = array("H")
        self.payload_len = array(_U32)
        self.ts_val = array(_U32)
        self.ts_ecr = array(_U32)
        self.optbits = array("B")
        self.odd_options: dict[int, TCPOptions] = {}
        self.source_records: list[PacketRecord] | None = None

    def __len__(self) -> int:
        return len(self.timestamps)

    # -- construction --------------------------------------------------
    @classmethod
    def from_records(cls, records: list[PacketRecord]) -> "PacketColumns":
        """Wrap materialized records into columns (for callers that
        enter the pipeline with objects, e.g. ``analyze_packets``).

        The originals are kept, so materializing a flow back out of
        these columns is free and exact.
        """
        cols = cls()
        append = cols._append_record
        for record in records:
            append(record)
        cols.source_records = list(records)
        return cols

    def _append_record(self, record: PacketRecord) -> None:
        index = len(self.timestamps)
        self.timestamps.append(record.timestamp)
        self.src_ip.append(record.src_ip)
        self.dst_ip.append(record.dst_ip)
        self.src_port.append(record.src_port)
        self.dst_port.append(record.dst_port)
        self.seq.append(record.seq)
        self.ack.append(record.ack)
        self.flags.append(record.flags & 0xFF)
        self.window.append(record.window)
        self.payload_len.append(record.payload_len)
        opts = record.options
        if (
            opts.mss is None
            and opts.wscale is None
            and not opts.sack_permitted
            and not opts.sack_blocks
            and not opts.truncated_options
        ):
            if opts.ts_val is None:
                self.ts_val.append(0)
                self.ts_ecr.append(0)
                self.optbits.append(0)
            else:
                self.ts_val.append(opts.ts_val & 0xFFFFFFFF)
                self.ts_ecr.append((opts.ts_ecr or 0) & 0xFFFFFFFF)
                self.optbits.append(OPT_TS)
        else:
            self.ts_val.append(0)
            self.ts_ecr.append(0)
            self.optbits.append(OPT_ODD)
            self.odd_options[index] = opts

    # -- materialization ----------------------------------------------
    def options_for(self, index: int) -> TCPOptions:
        """The options object the object path would have produced."""
        bits = self.optbits[index]
        if bits & OPT_ODD:
            return self.odd_options[index]
        if bits & OPT_TS:
            return TCPOptions(
                ts_val=self.ts_val[index], ts_ecr=self.ts_ecr[index]
            )
        return TCPOptions()

    def record(self, index: int) -> PacketRecord:
        """Materialize packet ``index`` as a full object record."""
        source = self.source_records
        if source is not None:
            return source[index]
        return PacketRecord(
            timestamp=self.timestamps[index],
            src_ip=self.src_ip[index],
            dst_ip=self.dst_ip[index],
            src_port=self.src_port[index],
            dst_port=self.dst_port[index],
            seq=self.seq[index],
            ack=self.ack[index],
            flags=self.flags[index],
            window=self.window[index],
            payload_len=self.payload_len[index],
            options=self.options_for(index),
        )

    def records(self) -> Iterator[PacketRecord]:
        """Materialize every packet (mostly for tests/debugging)."""
        for index in range(len(self)):
            yield self.record(index)

    # -- cluster fan-out ----------------------------------------------
    _COLUMN_NAMES = (
        "timestamps", "src_ip", "dst_ip", "src_port", "dst_port",
        "seq", "ack", "flags", "window", "payload_len",
        "ts_val", "ts_ecr", "optbits",
    )

    def shard_ids(self, n_shards: int) -> array:
        """Per-packet shard assignment under ``n_shards``-way sharding.

        Row ``i`` gets :func:`repro.packet.flow.flow_shard` of packet
        ``i``'s endpoints — the same explicit SplitMix64-XOR mix
        :meth:`FlowKey.shard_of <repro.packet.flow.FlowKey.shard_of>`
        computes, vectorized over the whole slab when numpy is
        importable.  Both directions of a connection always map to the
        same shard, so a flow never straddles two cluster workers.
        """
        n = len(self)
        if _np is not None and n:
            u64 = _np.uint64
            src = (
                _np.frombuffer(self.src_ip, dtype=_np.uint32).astype(u64)
                << u64(16)
            ) | _np.frombuffer(self.src_port, dtype=_np.uint16).astype(u64)
            dst = (
                _np.frombuffer(self.dst_ip, dtype=_np.uint32).astype(u64)
                << u64(16)
            ) | _np.frombuffer(self.dst_port, dtype=_np.uint16).astype(u64)
            with _np.errstate(over="ignore"):
                mixed = None
                for endpoint in (src, dst):
                    x = endpoint
                    x = (x ^ (x >> u64(30))) * u64(0xBF58476D1CE4E5B9)
                    x = (x ^ (x >> u64(27))) * u64(0x94D049BB133111EB)
                    x = x ^ (x >> u64(31))
                    mixed = x if mixed is None else mixed ^ x
            ids = (mixed % u64(n_shards)).astype(_np.uint16)
            out = array("H")
            out.frombytes(ids.tobytes())
            return out
        from .flow import flow_shard

        return array(
            "H",
            (
                flow_shard(
                    self.src_ip[i], self.src_port[i],
                    self.dst_ip[i], self.dst_port[i], n_shards,
                )
                for i in range(n)
            ),
        )

    def select(self, indices) -> "PacketColumns":
        """A new batch holding rows ``indices`` (ascending), in order."""
        out = PacketColumns()
        for name in self._COLUMN_NAMES:
            column = getattr(self, name)
            getattr(out, name).extend(column[i] for i in indices)
        odd = self.odd_options
        if odd:
            optbits = self.optbits
            out.odd_options = {
                new_index: odd[old_index]
                for new_index, old_index in enumerate(indices)
                if optbits[old_index] & OPT_ODD
            }
        source = self.source_records
        if source is not None:
            out.source_records = [source[i] for i in indices]
        return out

    def select_shard(self, shard: int, n_shards: int) -> "PacketColumns":
        """Rows of this slab owned by cluster shard ``shard``.

        This is the fan-out primitive of :mod:`repro.cluster`: each
        worker decodes the capture slab-by-slab and keeps only its own
        rows, so flow state, analysis, and result shipping all scale
        with ``1/n_shards`` of the trace.
        """
        if n_shards <= 1:
            return self
        ids = self.shard_ids(n_shards)
        if _np is not None and len(ids):
            mask = _np.frombuffer(ids, dtype=_np.uint16) == shard
            indices = _np.nonzero(mask)[0].tolist()
        else:
            indices = [i for i, owner in enumerate(ids) if owner == shard]
        if len(indices) == len(ids):
            return self
        return self.select(indices)


def decode_spans(
    buffer: bytes,
    starts: array,
    incls: array,
    endian: str,
    ethernet: bool,
    tolerant: bool,
    counters,
) -> PacketColumns:
    """Decode framed record spans out of ``buffer`` into columns.

    ``starts``/``incls`` are body offsets and lengths produced by the
    pcap framing layer; each record's ``(ts_sec, ts_usec)`` pair sits
    in the 16-byte header preceding its body (``endian`` byte order).
    ``counters`` carries the same fault surface the object reader
    updates (``skipped``, ``option_errors``).
    """
    if _np is not None and len(starts):
        return _decode_spans_numpy(
            buffer, starts, incls, endian, ethernet, tolerant, counters
        )
    return _decode_spans_python(
        buffer, starts, incls, endian, ethernet, tolerant, counters
    )


# -- pure-Python decoder ----------------------------------------------


def _decode_spans_python(
    buffer: bytes,
    starts: array,
    incls: array,
    endian: str,
    ethernet: bool,
    tolerant: bool,
    counters,
) -> PacketColumns:
    unpack_ts = struct.Struct(endian + "II").unpack_from
    cols = PacketColumns()
    ts_out = cols.timestamps
    src_ip_out, dst_ip_out = cols.src_ip, cols.dst_ip
    src_port_out, dst_port_out = cols.src_port, cols.dst_port
    seq_out, ack_out = cols.seq, cols.ack
    flags_out, window_out = cols.flags, cols.window
    payload_out = cols.payload_len
    tsval_out, tsecr_out = cols.ts_val, cols.ts_ecr
    optbits_out = cols.optbits
    odd_options = cols.odd_options
    unpack_be32 = _BE32.unpack_from
    unpack_tcp = _TCP_FIXED.unpack_from
    skipped = 0
    option_errors = 0
    for span in range(len(starts)):
        off = starts[span]
        avail = incls[span]
        if ethernet:
            if avail < 14 or buffer[off + 12] != 0x08 or buffer[off + 13]:
                skipped += 1
                continue
            off += 14
            avail -= 14
        if avail < 20:
            skipped += 1
            continue
        ver_ihl = buffer[off]
        if ver_ihl >> 4 != 4:
            skipped += 1
            continue
        ihl = (ver_ihl & 0x0F) * 4
        if ihl < 20 or ihl > avail:
            skipped += 1
            continue
        if buffer[off + 9] != 6:  # not TCP
            skipped += 1
            continue
        total_length = (buffer[off + 2] << 8) | buffer[off + 3]
        if total_length:
            end_rel = min(avail, max(total_length, ihl))
        else:
            end_rel = avail
        tcp_off = off + ihl
        tcp_avail = end_rel - ihl
        if tcp_avail < 20:
            skipped += 1
            continue
        doff = (buffer[tcp_off + 12] >> 4) * 4
        if doff < 20 or doff > tcp_avail:
            skipped += 1
            continue
        opt_len = doff - 20
        opt_off = tcp_off + 20
        # Fast-path the ubiquitous 12-byte timestamp option area.
        ts_val = ts_ecr = 0
        optbits = 0
        if opt_len == 12:
            b0 = buffer[opt_off]
            b1 = buffer[opt_off + 1]
            if (
                b0 == 1
                and b1 == 1
                and buffer[opt_off + 2] == 8
                and buffer[opt_off + 3] == 10
            ):
                (ts_val,) = unpack_be32(buffer, opt_off + 4)
                (ts_ecr,) = unpack_be32(buffer, opt_off + 8)
                optbits = OPT_TS
            elif b0 == 8 and b1 == 10:
                b10 = buffer[opt_off + 10]
                if b10 == 0 or (b10 == 1 and buffer[opt_off + 11] <= 1):
                    (ts_val,) = unpack_be32(buffer, opt_off + 2)
                    (ts_ecr,) = unpack_be32(buffer, opt_off + 6)
                    optbits = OPT_TS
        if not optbits and opt_len:
            # SYN options, SACK blocks, unusual padding, damage: the
            # real decoder, with identical strict/lenient behavior.
            options = TCPOptions.decode(
                buffer[opt_off : opt_off + opt_len], lenient=tolerant
            )
            if options.truncated_options:
                option_errors += 1
            optbits = OPT_ODD
            odd_options[len(ts_out)] = options
        ts_sec, ts_usec = unpack_ts(buffer, starts[span] - 16)
        ts_out.append(ts_sec + ts_usec / 1_000_000)
        (src_ip,) = unpack_be32(buffer, off + 12)
        (dst_ip,) = unpack_be32(buffer, off + 16)
        src_ip_out.append(src_ip)
        dst_ip_out.append(dst_ip)
        src_port, dst_port, seq, ack = unpack_tcp(buffer, tcp_off)
        src_port_out.append(src_port)
        dst_port_out.append(dst_port)
        seq_out.append(seq)
        ack_out.append(ack)
        flags_out.append(buffer[tcp_off + 13])
        window_out.append(
            (buffer[tcp_off + 14] << 8) | buffer[tcp_off + 15]
        )
        payload_out.append(tcp_avail - doff)
        tsval_out.append(ts_val)
        tsecr_out.append(ts_ecr)
        optbits_out.append(optbits)
    counters.skipped += skipped
    counters.option_errors += option_errors
    return cols


# -- numpy-vectorized decoder -----------------------------------------


def _decode_spans_numpy(
    buffer: bytes,
    starts: array,
    incls: array,
    endian: str,
    ethernet: bool,
    tolerant: bool,
    counters,
) -> PacketColumns:
    np = _np
    buf = np.frombuffer(buffer, dtype=np.uint8)
    limit = len(buf) - 1
    count = len(starts)
    off = np.frombuffer(starts, dtype=np.int64)
    avail = np.frombuffer(incls, dtype=np.int64)
    i64 = np.int64
    # Gather indices fit int32 for any slab under 2 GiB — half the
    # index-matrix memory traffic of int64.
    idx_dtype = np.int32 if len(buf) < (1 << 31) else np.int64

    def take(base, width):
        """One ``(width, rows)`` byte-matrix gather: row ``k`` holds
        byte ``base + k`` of every record, contiguous for cheap field
        math.  The matrix stays uint8 — callers cast the few rows they
        do arithmetic on (:func:`be32`/:func:`u16`) instead of paying
        an 8x widening copy of the whole matrix.  Bases are clamped so
        the whole window stays inside the buffer — a length-``rows``
        pass, an order of magnitude cheaper than clipping the full
        index matrix.  A clamp shifts a row's window, but callers keep
        windows narrow enough that no *valid* record's window can
        overrun (spans guarantee bodies lie inside the buffer); every
        consumer of a possibly-shifted row is fenced by the validity
        mask or by length predicates (``opt_len``) that come from
        ``doff``, not from these bytes."""
        safe = np.minimum(base, len(buf) - width).astype(idx_dtype)
        np.maximum(safe, 0, out=safe)
        idx = np.arange(width, dtype=idx_dtype)[:, None] + safe[None, :]
        return buf[idx]

    def take_exact(base, width):
        """Element-clipped gather for windows that may legitimately
        overrun their record (the SACK area): in-range bytes must stay
        at their true columns, so clip per element, not per base."""
        idx = np.arange(width, dtype=np.int64)[:, None] + base[None, :]
        return buf[np.minimum(idx, limit)]

    u32 = np.uint32

    def be32(matrix, row):
        out = matrix[row].astype(u32)
        out <<= 8
        out |= matrix[row + 1]
        out <<= 8
        out |= matrix[row + 2]
        out <<= 8
        out |= matrix[row + 3]
        return out

    def u16(matrix, row):
        out = matrix[row].astype(np.uint16)
        out <<= 8
        out |= matrix[row + 1]
        return out

    # Record-header timestamps, in the file's byte order (the body
    # offset in ``starts`` sits 16 bytes past its record header).
    def le32(matrix, row):
        out = matrix[row + 3].astype(u32)
        out <<= 8
        out |= matrix[row + 2]
        out <<= 8
        out |= matrix[row + 1]
        out <<= 8
        out |= matrix[row]
        return out

    # One sparse gather covers every header byte the decode consults:
    # the record timestamp, [the ethertype,] the needed IPv4 fields,
    # and — speculatively, valid whenever no record carries IP
    # options, i.e. always on real traffic — the fixed TCP header.
    # Gathering a hand-picked row list instead of a dense window
    # skips the 20 bytes nothing reads (``incl_len``/``orig_len``,
    # IP id/frag/ttl/checksum), which is most of the gather cost.
    # Bases are clamped per record (see :func:`take`); the window's
    # last byte sits 36 bytes into the body, inside any valid record
    # (minimum body: a 40-byte IP+TCP header pair), so no valid row
    # ever clamps.
    lead = (16 + 14) if ethernet else 16
    picks = [0, 1, 2, 3, 4, 5, 6, 7]  # record-header timestamp
    if ethernet:
        picks += [28, 29]  # ethertype
    picks += [lead, lead + 2, lead + 3, lead + 9]  # ver_ihl, length, proto
    picks += list(range(lead + 12, lead + 20))  # src, dst
    picks += list(range(lead + 20, lead + 36))  # TCP header (no IP options)
    width = lead + 36
    safe = np.minimum(off - 16, len(buf) - width).astype(idx_dtype)
    np.maximum(safe, 0, out=safe)
    rows = np.array(picks, dtype=idx_dtype)
    m = buf[rows[:, None] + safe[None, :]]
    # Row indices within the sparse matrix (groups stay consecutive
    # so the multi-byte helpers work unchanged).
    r_eth = 8
    r_ip = 8 + (2 if ethernet else 0)  # ver_ihl, len_hi, len_lo, proto
    r_addr = r_ip + 4                  # src_ip, dst_ip
    r_tcp = r_addr + 8

    if endian == "<":
        ts_sec = le32(m, 0)
        ts_usec = le32(m, 4)
    else:
        ts_sec = be32(m, 0)
        ts_usec = be32(m, 4)
    ts = ts_sec.astype(np.float64) + ts_usec.astype(np.float64) / 1_000_000

    ok = np.ones(count, dtype=bool)
    if ethernet:
        ok &= (avail >= 14) & (m[r_eth] == 0x08) & (m[r_eth + 1] == 0x00)
        off = off + 14
        avail = avail - 14
    ok &= avail >= 20

    # IPv4 fields (uint8 — comparisons and the 4-bit fields stay in
    # range without widening).
    ver_ihl = m[r_ip]
    ihl = (ver_ihl & 0x0F).astype(i64) * 4
    ok &= (ver_ihl >> 4) == 4
    ok &= (ihl >= 20) & (ihl <= avail)
    ok &= m[r_ip + 3] == 6  # TCP only
    total_length = u16(m, r_ip + 1)
    end_rel = np.where(
        total_length > 0,
        np.minimum(avail, np.maximum(total_length, ihl)),
        avail,
    )
    src_ip = be32(m, r_addr)
    dst_ip = be32(m, r_addr + 4)

    # TCP fixed header (16 bytes is enough: the checksum and
    # urgent-pointer rows are never consulted).  When every valid
    # record has a 20-byte IP header the speculative rows of the
    # sparse gather are the real thing; IP options (never seen on
    # sane traffic) fall back to a gather at the per-record offsets.
    tcp_off = off + ihl
    tcp_avail = end_rel - ihl
    ok &= tcp_avail >= 20
    if bool(np.all((ihl == 20) | ~ok)):
        tcp = m[r_tcp:]
    else:
        tcp = take(tcp_off, 16)
    doff = (tcp[12] >> 4).astype(i64) * 4
    ok &= (doff >= 20) & (doff <= tcp_avail)

    # Option-area pattern match, full width (see the python decoder
    # for the patterns).  Garbage rows — no options, or a window that
    # overran its record and clamp-shifted — are fenced out by
    # ``has_opts`` and the length predicates: every pattern requires
    # ``opt_len >= 12``, and such a record's body (and therefore this
    # window) provably lies inside the buffer.
    opt_len = doff - 20
    opt_off = tcp_off + 20
    opts = take(opt_off, 12)
    has_opts = ok & (opt_len > 0)
    b0, b1 = opts[0], opts[1]
    b10, b11 = opts[10], opts[11]
    is12 = has_opts & (opt_len == 12)
    pat_nop = (
        is12 & (b0 == 1) & (b1 == 1)
        & (opts[2] == 8) & (opts[3] == 10)
    )
    pat_raw = (
        is12 & (b0 == 8) & (b1 == 10)
        & ((b10 == 0) | ((b10 == 1) & (b11 <= 1)))
    )
    if pat_raw.any():
        has_ts = pat_nop | pat_raw
        ts_val = np.where(pat_nop, be32(opts, 4), be32(opts, 2))
        ts_ecr = np.where(pat_nop, be32(opts, 8), be32(opts, 6))
    else:  # NOP-NOP-TS is the layout every sane stack emits
        has_ts = pat_nop
        ts_val = be32(opts, 4)
        ts_ecr = be32(opts, 8)
    ts_val = ts_val * has_ts
    ts_ecr = ts_ecr * has_ts
    # ``TS`` followed by one SACK option (1-4 blocks) — the layout
    # the native encoder emits on every SACK-carrying ACK.  The
    # sizes work out with no padding: 10 + 2 + 8k for k blocks,
    # always a multiple of 4, and the SACK length byte pins the
    # block count.
    pat_sack = (
        has_opts
        & ((opt_len >= 20) & (opt_len <= 44) & ((opt_len & 7) == 4))
        & (b0 == 8) & (b1 == 10) & (b10 == 5) & (b11 == opt_len - 10)
    )
    odd = has_opts & ~has_ts

    kept = int(np.count_nonzero(ok))
    counters.skipped += count - kept

    cols = PacketColumns()
    if kept == count:
        # Nothing dropped (the common case on real traces): every
        # computed vector is already the output column.
        keep = slice(None)
    else:
        keep = np.nonzero(ok)[0]
    _fill(cols.timestamps, ts[keep])
    _fill(cols.src_ip, src_ip[keep])
    _fill(cols.dst_ip, dst_ip[keep])
    _fill(cols.src_port, u16(tcp, 0)[keep])
    _fill(cols.dst_port, u16(tcp, 2)[keep])
    _fill(cols.seq, be32(tcp, 4)[keep])
    _fill(cols.ack, be32(tcp, 8)[keep])
    _fill(cols.flags, tcp[13][keep])
    _fill(cols.window, u16(tcp, 14)[keep])
    _fill(cols.payload_len, (tcp_avail - doff)[keep])
    _fill(cols.ts_val, ts_val[keep])
    _fill(cols.ts_ecr, ts_ecr[keep])
    optbits = np.zeros(count, dtype=np.uint8)
    optbits[has_ts] = OPT_TS
    optbits[odd] = OPT_ODD
    _fill(cols.optbits, optbits[keep])

    if odd.any():
        # Row index within the compacted batch for each odd packet.
        position = np.cumsum(ok) - 1
        sack_rows = np.nonzero(pat_sack)[0]
        if len(sack_rows):
            # TS+SACK areas are the bulk of odd packets on a stally
            # trace; copy their raw bytes out of the slab (tiny — at
            # most 44 per row) and decode each one only if somebody
            # actually asks for it.  The pattern guarantees the area
            # is well-formed, so deferral can't hide an
            # ``option_errors`` count the object path would have made.
            raw = np.ascontiguousarray(take_exact(opt_off[sack_rows], 44).T)
            cols.odd_options = _LazySackOptions(
                dict(zip(position[sack_rows].tolist(), range(len(sack_rows)))),
                raw,
                opt_len[sack_rows].tolist(),
                tolerant,
            )
        odd_options = cols.odd_options
        decode_rows = np.nonzero(odd & ~pat_sack)[0]
        option_errors = 0
        decode = TCPOptions.decode
        for start, length, out_row in zip(
            opt_off[decode_rows].tolist(),
            opt_len[decode_rows].tolist(),
            position[decode_rows].tolist(),
        ):
            options = decode(
                buffer[start : start + length], lenient=tolerant
            )
            if options.truncated_options:
                option_errors += 1
            odd_options[out_row] = options
        counters.option_errors += option_errors
    return cols


class _LazySackOptions(dict):
    """``odd_options`` mapping that decodes TS+SACK rows on demand.

    Eagerly-decoded oddballs (SYN options, damage) live in the dict
    itself; pattern-matched SACK rows keep only their raw option
    bytes until first access, when :meth:`TCPOptions.decode
    <repro.packet.options.TCPOptions.decode>` — the same oracle the
    object path runs — materializes and caches the object.  Flows
    that never leave the fast path never pay for it.
    """

    __slots__ = ("_at", "_raw", "_lengths", "_lenient")

    def __init__(self, at, raw, lengths, lenient):
        super().__init__()
        self._at = at          #: batch row -> column in ``_raw``
        self._raw = raw        #: (rows, 44) uint8 option-area bytes
        self._lengths = lengths
        self._lenient = lenient

    def __missing__(self, key):
        at = self._at.get(key)
        if at is None:
            raise KeyError(key)
        options = TCPOptions.decode(
            self._raw[at][: self._lengths[at]].tobytes(),
            lenient=self._lenient,
        )
        self[key] = options
        return options

    def get(self, key, default=None):
        try:
            return self[key]
        except KeyError:
            return default

    def __contains__(self, key):
        return dict.__contains__(self, key) or key in self._at


def _fill(column: array, values) -> None:
    """Move a numpy vector into a stdlib array without per-item boxing."""
    np = _np
    typecode = column.typecode
    if typecode == "d":
        dtype = np.float64
    elif typecode == "B":
        dtype = np.uint8
    elif typecode == "H":
        dtype = np.uint16
    else:  # the u32 column type ('I' or platform fallback 'L')
        dtype = np.uint32 if _U32_ITEMSIZE == 4 else np.uint64
    # frombytes accepts any byte-shaped buffer, so hand it the numpy
    # memory directly rather than an intermediate ``bytes`` copy.
    column.frombytes(np.ascontiguousarray(values, dtype=dtype).data.cast("B"))
