"""The packet record shared by the simulator and the analyzer.

A :class:`PacketRecord` is what a capture tap at the server observes: a
timestamp plus the IPv4/TCP headers and the payload length.  Payload
*content* is not retained (TAPO never needs it), which keeps multi-
million-packet traces cheap.  Records serialize to and from real
raw-IP packet bytes so traces can round-trip through pcap files.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .headers import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_PSH,
    FLAG_RST,
    FLAG_SYN,
    HeaderDecodeError,
    IPv4Header,
    TCPHeader,
)
from .options import SackBlock, TCPOptions
from .seqnum import seq_add


@dataclass(slots=True)
class PacketRecord:
    """One TCP/IPv4 packet as seen at a capture point.

    ``payload_len`` is the TCP payload length in bytes; SYN and FIN each
    consume one sequence number but carry no payload here.

    Slotted: multi-million-packet traces are the norm once datasets are
    cached on disk, and dropping the per-instance ``__dict__`` cuts the
    record's footprint roughly in half.
    """

    timestamp: float
    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int = FLAG_ACK
    window: int = 65535
    payload_len: int = 0
    options: TCPOptions = field(default_factory=TCPOptions)

    # -- flag helpers -------------------------------------------------
    @property
    def syn(self) -> bool:
        return bool(self.flags & FLAG_SYN)

    @property
    def fin(self) -> bool:
        return bool(self.flags & FLAG_FIN)

    @property
    def rst(self) -> bool:
        return bool(self.flags & FLAG_RST)

    @property
    def has_ack(self) -> bool:
        return bool(self.flags & FLAG_ACK)

    @property
    def psh(self) -> bool:
        return bool(self.flags & FLAG_PSH)

    @property
    def sack_blocks(self) -> list[SackBlock]:
        return self.options.sack_blocks

    @property
    def seq_space(self) -> int:
        """Sequence-number space consumed (payload + SYN/FIN flags)."""
        return self.payload_len + int(self.syn) + int(self.fin)

    @property
    def end_seq(self) -> int:
        """First sequence number after this segment."""
        return seq_add(self.seq, self.seq_space)

    def is_data(self) -> bool:
        """True when the segment carries payload bytes."""
        return self.payload_len > 0

    def is_pure_ack(self) -> bool:
        """True for an ACK with no payload and no SYN/FIN/RST."""
        return (
            self.has_ack
            and self.payload_len == 0
            and not (self.syn or self.fin or self.rst)
        )

    def copy(self, **changes) -> "PacketRecord":
        """Return a copy with ``changes`` applied (options are shared)."""
        return replace(self, **changes)

    # -- wire codec ---------------------------------------------------
    def encode(self) -> bytes:
        """Serialize as a raw IPv4 packet (payload is zero bytes)."""
        tcp = TCPHeader(
            src_port=self.src_port,
            dst_port=self.dst_port,
            seq=self.seq,
            ack=self.ack,
            flags=self.flags,
            window=self.window,
            options=self.options,
        )
        payload = bytes(self.payload_len)
        segment = tcp.encode(payload, self.src_ip, self.dst_ip)
        ip = IPv4Header(
            src=self.src_ip,
            dst=self.dst_ip,
            total_length=IPv4Header.HEADER_LEN + len(segment),
        )
        return ip.encode() + segment

    @classmethod
    def decode(
        cls, data: bytes, timestamp: float = 0.0, lenient: bool = False
    ) -> "PacketRecord":
        """Parse a raw IPv4 packet into a record.

        ``lenient`` tolerates a malformed TCP option area (keeping the
        cleanly-parsed prefix) instead of raising.
        """
        ip, ip_len = IPv4Header.decode(data)
        if ip.protocol != 6:
            raise HeaderDecodeError("not TCP (protocol=%d)" % ip.protocol)
        end = min(len(data), ip_len + max(ip.total_length - ip_len, 0))
        tcp_bytes = data[ip_len:end] if ip.total_length else data[ip_len:]
        tcp, tcp_len = TCPHeader.decode(tcp_bytes, lenient=lenient)
        payload_len = len(tcp_bytes) - tcp_len
        return cls(
            timestamp=timestamp,
            src_ip=ip.src,
            dst_ip=ip.dst,
            src_port=tcp.src_port,
            dst_port=tcp.dst_port,
            seq=tcp.seq,
            ack=tcp.ack,
            flags=tcp.flags,
            window=tcp.window,
            payload_len=payload_len,
            options=tcp.options,
        )

    def describe(self) -> str:
        """Human-readable one-liner, tcpdump style."""
        names = []
        for bit, name in (
            (FLAG_SYN, "S"),
            (FLAG_FIN, "F"),
            (FLAG_RST, "R"),
            (FLAG_PSH, "P"),
            (FLAG_ACK, "."),
        ):
            if self.flags & bit:
                names.append(name)
        return (
            f"{self.timestamp:.6f} "
            f"{self.src_ip:#010x}:{self.src_port} > "
            f"{self.dst_ip:#010x}:{self.dst_port} "
            f"[{''.join(names) or '-'}] seq={self.seq} ack={self.ack} "
            f"len={self.payload_len} win={self.window}"
        )
