"""Unified command-line entry point: ``repro-paper <subcommand>``.

One binary fronts every layer of the pipeline:

=============  =====================================================
``run``        simulate the three services and regenerate the
               paper's tables/figures (:mod:`repro.experiments.cli`)
``analyze``    classify stalls in a pcap trace, batch or streaming
               (:mod:`repro.core.cli`; also installed as ``tapo``)
``trace``      flight-recorder deep dive on one simulated flow
               (:mod:`repro.obs.export`)
``watch``      continuous stall monitoring of a live/rotating capture
               (:mod:`repro.live.cli`)
``results``    inspect/trend-check the longitudinal results store
               (:mod:`repro.results.cli`)
``matrix``     policy tournament: every recovery policy × workload ×
               path scenario, ranked (:mod:`repro.matrix.cli`)
``cluster``    sharded analysis fleet: N worker processes, merged
               byte-identical report (:mod:`repro.cluster.cli`)
``cluster-worker``  dial in to a ``cluster --listen`` coordinator and
               execute shard assignments
               (:mod:`repro.cluster.worker_cli`)
=============  =====================================================

The shared flags mean the same thing everywhere they apply:
``--workers`` (process count, 0 = one per core), ``--no-cache``
(bypass dataset caches; ``run`` only), ``--stats`` (runtime counters
to stderr), ``--metrics-out PREFIX`` (PREFIX.json + PREFIX.prom).

Old invocations keep working:

===============================  ================================
old                              new
===============================  ================================
``repro-paper --flows 150``      ``repro-paper run --flows 150``
``repro-paper trace --flow 3``   ``repro-paper trace --flow 3``
``tapo trace.pcap``              ``repro-paper analyze trace.pcap``
===============================  ================================

A bare ``repro-paper --flows ...`` (no subcommand) is forwarded to
``run`` for backward compatibility.
"""

from __future__ import annotations

import sys

_SUBCOMMANDS = (
    "run", "analyze", "trace", "watch", "matrix", "results", "cluster",
    "cluster-worker",
)

_USAGE = """\
usage: repro-paper <subcommand> [options]

subcommands:
  run        simulate services and regenerate the paper's evaluation
  analyze    classify TCP stalls in a pcap trace (batch or --stream)
  trace      re-simulate one flow with the flight recorder on
  watch      continuously monitor stalls in a live/rotating capture
  matrix     run the policy tournament: every recovery policy against
             every workload x path scenario, ranked per scenario
  results    inspect the longitudinal results store (list/show/
             trends/compact/merge/dashboard)
  cluster    shard a capture across N worker processes and merge
             their reports (byte-identical to a single-process run)
  cluster-worker
             dial in to a 'cluster --listen' coordinator and execute
             shard assignments (cross-host fleet member)

Run 'repro-paper <subcommand> -h' for subcommand options.
Flags without a subcommand are forwarded to 'run' (legacy form).
"""


def version_string() -> str:
    """The installed package version (falls back to the source tree's
    ``repro.__version__`` when running uninstalled)."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        from . import __version__

        return __version__


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in ("help", "--help", "-h"):
        print(_USAGE, end="")
        return 0
    if argv and argv[0] in ("--version", "version"):
        print(f"repro-paper {version_string()}")
        return 0
    command, rest = (argv[0], argv[1:]) if argv else ("run", [])
    if command == "analyze":
        from .core.cli import main as analyze_main

        return analyze_main(rest)
    if command == "trace":
        from .obs.export import trace_main

        return trace_main(rest)
    if command == "watch":
        from .live.cli import main as watch_main

        return watch_main(rest)
    if command == "matrix":
        from .matrix.cli import main as matrix_main

        return matrix_main(rest)
    if command == "results":
        from .results.cli import main as results_main

        return results_main(rest)
    if command == "cluster":
        from .cluster.cli import main as cluster_main

        return cluster_main(rest)
    if command == "cluster-worker":
        from .cluster.worker_cli import main as cluster_worker_main

        return cluster_worker_main(rest)
    if command == "run":
        from .experiments.cli import main as run_main

        return run_main(rest)
    if command.startswith("-"):
        # Legacy form: 'repro-paper --flows 150' predates subcommands.
        from .experiments.cli import main as run_main

        return run_main(argv)
    print(f"repro-paper: unknown subcommand {command!r}\n", file=sys.stderr)
    print(_USAGE, end="", file=sys.stderr)
    return 2


def tapo_main(argv: list[str] | None = None) -> int:
    """Entry point for the ``tapo`` alias (== ``repro-paper analyze``)."""
    from .core.cli import main as analyze_main

    return analyze_main(argv)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
