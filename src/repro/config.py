"""Frozen configuration objects for the public API.

Historically every entry point grew its own keyword soup — ``tau``,
``init_cwnd``, ``record_series`` on the analyzer side; ``workers``,
``use_cache``, chunking knobs on the experiment side.  The supported
surface now takes two value objects instead:

* :class:`AnalysisConfig` — how TAPO mimics the server's stack
  (stall threshold, shadow window, optional kernel-variable series);
* :class:`RunConfig` — how work is executed (worker processes, cache
  usage, chunk sizing, streaming backpressure).

Both are frozen dataclasses: hashable, comparable, safe to share
across worker processes, and usable as cache-key components.  The old
keyword arguments keep working everywhere through shims that emit
:class:`DeprecationWarning` (see :func:`warn_deprecated_kwargs`).
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field

from .errors import ErrorBudget


#: The release in which every currently-shimmed legacy spelling goes
#: away (the deprecation policy promises at least one minor release of
#: warning before this).
DEPRECATED_REMOVAL_VERSION = "2.0"


def warn_deprecated_kwargs(where: str, names: list[str], instead: str) -> None:
    """Emit the standard deprecation warning for legacy keyword soup.

    The message always names both the replacement and the removal
    version, so callers know exactly what to change and by when.
    ``stacklevel=3`` points at the caller of the shimmed entry point
    (user code), not at the shim itself.
    """
    warnings.warn(
        f"{where}({', '.join(sorted(names))}=...) is deprecated; "
        f"pass {instead} instead (the legacy spelling will be removed "
        f"in repro {DEPRECATED_REMOVAL_VERSION})",
        DeprecationWarning,
        stacklevel=3,
    )


def validate_policies(names) -> tuple[str, ...]:
    """Resolve recovery-policy names through the policy registry.

    Every surface that selects policies by name — ``--policy`` /
    ``--policies`` flags, :class:`repro.matrix.MatrixConfig` — funnels
    through here, so an unknown name always fails the same way: a
    ``ValueError`` naming the registered policies (raised by
    :meth:`repro.tcp.policies.PolicyRegistry.get`).  Returns the names
    as a tuple, order preserved, duplicates rejected.
    """
    from .tcp.policies import REGISTRY

    resolved: list[str] = []
    for name in names:
        REGISTRY.get(name)
        if name in resolved:
            raise ValueError(f"recovery policy {name!r} selected twice")
        resolved.append(name)
    return tuple(resolved)


@dataclass(frozen=True)
class AnalysisConfig:
    """How TAPO analyzes a flow (the paper's Sec. 3 knobs).

    Parameters
    ----------
    tau:
        Stall-threshold multiplier on SRTT; a gap longer than
        ``min(tau * SRTT, RTO)`` is a stall (paper uses 2).
    init_cwnd:
        Initial congestion window assumed for the shadow window, in
        segments (Linux 2.6.32 default is 3).
    record_series:
        Also record the per-ACK inferred kernel-variable time-series
        (``FlowAnalysis.kernel_series``) for comparison against the
        simulator's flight-recorder ground truth.
    columnar:
        Decode pcap slabs into parallel arrays and analyze flows on
        the columnar fast path when it provably matches the object
        pipeline, falling back to full object analysis otherwise (see
        :mod:`repro.packet.columnar`).  Reports are byte-identical
        either way; ``False`` forces the object path everywhere (the
        CLI spells this ``--no-columnar``).
    verify_checksums:
        Verify each packet's TCP checksum during object-path decode
        and count failures (``repro_fault_checksum_errors_total``).
        The columnar path never verifies eagerly: when verification
        is requested it defers and counts the skips
        (``repro_fault_checksums_skipped_total``).
    errors:
        An :class:`~repro.errors.ErrorBudget` governing how ingestion
        and analysis react to dirty input.  ``strict`` (the default)
        raises a typed :class:`~repro.errors.ReproError` at the first
        fault; ``lenient`` recovers from corrupt pcap records and
        quarantines crashing flows as
        :class:`~repro.errors.SkippedFlow` records; ``budget(...)``
        tolerates a bounded amount of damage.
    """

    tau: float = 2.0
    init_cwnd: int = 3
    record_series: bool = False
    columnar: bool = True
    verify_checksums: bool = False
    errors: ErrorBudget = field(default_factory=ErrorBudget.strict)

    def replace(self, **changes) -> "AnalysisConfig":
        """Return a copy with ``changes`` applied."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class RunConfig:
    """How work is executed: parallelism, caching, and backpressure.

    Parameters
    ----------
    workers:
        Worker processes.  ``1`` = serial in-process (the default);
        ``0``/``None`` = one per core.  Results are identical for any
        worker count.
    use_cache:
        Consult/populate the dataset caches (in-process memo and the
        content-addressed on-disk store).
    chunk_flows:
        Flows per work unit shipped to a worker.  ``None`` picks a
        size automatically.
    max_in_flight_chunks:
        Backpressure bound for streaming analysis: at most this many
        chunks may be queued or executing at once; submission blocks
        (and upstream packet reading pauses) when the bound is hit.
        ``None`` derives ``2 * workers``.
    idle_timeout:
        Streaming demux: a flow with no packets for this many seconds
        (trace time) is considered finished and evicted.
    close_linger:
        Streaming demux: seconds of trace time a flow lingers after a
        clean close (FIN in both directions, or RST) before eviction,
        so straggling retransmissions still attach to it.
    max_retries:
        How many times a chunk whose worker *died* (not merely raised)
        is retried in a fresh worker before being declared poisoned.
    retry_backoff:
        Base delay in seconds before the second and later retries of a
        dead chunk; doubles per attempt.
    """

    workers: int | None = 1
    use_cache: bool = True
    chunk_flows: int | None = None
    max_in_flight_chunks: int | None = None
    idle_timeout: float = 60.0
    close_linger: float = 5.0
    max_retries: int = 2
    retry_backoff: float = 0.1

    def replace(self, **changes) -> "RunConfig":
        """Return a copy with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    def resolved_workers(self) -> int:
        """Concrete worker count (``0``/``None`` = one per core)."""
        from .experiments.parallel import resolve_workers

        return resolve_workers(self.workers)
