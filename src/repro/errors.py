"""Structured error taxonomy and error-budget policies.

Production traces are dirty: truncated captures, garbage TCP options,
pathological flows that trip analyzer edge cases.  A pipeline meant to
run unattended over billions of packets must degrade gracefully on
those inputs instead of failing closed, and it must do so *visibly* —
every fault is typed, counted, and attributable.

Two pieces live here:

* the :class:`ReproError` hierarchy — every fault the pipeline can
  recover from (or deliberately raise) derives from it, so callers can
  catch one base class and fuzzers can assert nothing else escapes;
* :class:`ErrorBudget` — the policy object that decides how much
  damage a run tolerates, threaded through
  :class:`repro.config.AnalysisConfig`:

  =========================  ==========================================
  ``ErrorBudget.strict()``   fail closed: raise at the first fault
                             (the historical behavior, and the default)
  ``ErrorBudget.lenient()``  never fail: skip, quarantine, and count
  ``ErrorBudget.budget(..)`` tolerate up to N faults or a fraction of
                             processed units, then raise
                             :class:`ErrorBudgetExceeded`
  =========================  ==========================================

Faults that are skipped rather than raised remain observable: parse
recoveries surface through :class:`~repro.packet.pcap.PcapReader`
counters, quarantined flows through :class:`SkippedFlow` records on
:class:`~repro.core.report.ServiceReport`, and everything through the
:mod:`repro.obs.metrics` registry.

This module is a leaf: it imports nothing from :mod:`repro`, so every
layer (packet codecs included) can depend on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ReproError(Exception):
    """Base class of every structured pipeline fault."""


class ParseError(ReproError, ValueError):
    """Malformed input bytes: pcap framing, headers, or TCP options.

    Subclasses :class:`ValueError` so historical ``except ValueError``
    call sites keep working.
    """


class FlowAnalysisError(ReproError):
    """One flow's analysis crashed.

    Carries enough context to quarantine or report the flow: the flow
    key, the packet index the analyzer had reached, and the original
    exception as ``__cause__``.
    """

    def __init__(self, message: str, key: object = None,
                 packet_index: int | None = None):
        super().__init__(message)
        self.key = key
        self.packet_index = packet_index


class CacheError(ReproError):
    """A cache entry could not be read, verified, or written.

    Always recoverable: the dataset cache treats it as a miss and
    rebuilds.  Raised internally by the cache layer and counted; it
    never propagates out of :class:`~repro.experiments.cache.DatasetCache`.
    """


class WorkerError(ReproError):
    """A worker process failed while executing a task."""


class PoisonTaskError(WorkerError):
    """A task failed repeatedly across workers and was quarantined.

    Raised only in strict mode; tolerant budgets quarantine the task's
    flows as :class:`SkippedFlow` records instead.
    """


class ErrorBudgetExceeded(ReproError):
    """A ``budget(...)`` policy ran out of tolerated faults."""

    def __init__(self, message: str, errors: int = 0, units: int = 0):
        super().__init__(message)
        self.errors = errors
        self.units = units


@dataclass(frozen=True)
class ErrorBudget:
    """How many faults a run tolerates before failing.

    Frozen and hashable so it can ride inside
    :class:`~repro.config.AnalysisConfig` (itself frozen, pickled to
    worker processes, and used as a cache-key component).  The budget
    is pure policy — callers keep their own fault counts and ask
    :meth:`allows` whether the run may continue.

    Parameters
    ----------
    mode:
        ``"strict"`` (raise at the first fault), ``"lenient"`` (never
        raise), or ``"budget"`` (tolerate up to the caps below).
    max_errors:
        Budget mode: absolute fault cap.
    max_fraction:
        Budget mode: tolerated faults as a fraction of processed units
        (records for parsing, flows for analysis).  When both caps are
        set, the run fails only when *both* are exceeded, so a small
        absolute floor keeps tiny inputs from failing on one fault.
    """

    mode: str = "strict"
    max_errors: int | None = None
    max_fraction: float | None = None

    _MODES = ("strict", "lenient", "budget")

    def __post_init__(self):
        if self.mode not in self._MODES:
            raise ValueError(f"unknown error-budget mode {self.mode!r}")
        if self.mode == "budget" and (
            self.max_errors is None and self.max_fraction is None
        ):
            raise ValueError("budget mode needs max_errors or max_fraction")

    # -- constructors --------------------------------------------------
    @classmethod
    def strict(cls) -> "ErrorBudget":
        """Fail closed: the first fault raises (default)."""
        return cls(mode="strict")

    @classmethod
    def lenient(cls) -> "ErrorBudget":
        """Never fail: skip, quarantine, and count every fault."""
        return cls(mode="lenient")

    @classmethod
    def budget(
        cls,
        max_errors: int | None = None,
        max_fraction: float | None = None,
    ) -> "ErrorBudget":
        """Tolerate up to a count and/or fraction of faults."""
        return cls(
            mode="budget", max_errors=max_errors, max_fraction=max_fraction
        )

    @classmethod
    def parse(cls, spec: "str | ErrorBudget | None") -> "ErrorBudget":
        """Build a budget from a CLI-style spec.

        Accepts ``"strict"``, ``"lenient"``, ``"budget:N"`` (absolute),
        ``"budget:X%"`` or ``"budget:0.01"`` (fraction), an existing
        :class:`ErrorBudget` (returned as-is), or ``None`` (strict).
        """
        if spec is None:
            return cls.strict()
        if isinstance(spec, ErrorBudget):
            return spec
        text = spec.strip().lower()
        if text == "strict":
            return cls.strict()
        if text == "lenient":
            return cls.lenient()
        if text.startswith("budget:"):
            arg = text[len("budget:"):].strip()
            try:
                if arg.endswith("%"):
                    return cls.budget(max_fraction=float(arg[:-1]) / 100.0)
                if "." in arg or "e" in arg:
                    return cls.budget(max_fraction=float(arg))
                return cls.budget(max_errors=int(arg))
            except ValueError:
                pass
        raise ValueError(
            f"bad error-budget spec {spec!r}; expected 'strict', "
            "'lenient', 'budget:N', 'budget:X%', or 'budget:0.01'"
        )

    # -- policy --------------------------------------------------------
    @property
    def tolerant(self) -> bool:
        """Whether faults are recovered at all (lenient or budget)."""
        return self.mode != "strict"

    def allows(self, errors: int, units: int) -> bool:
        """Whether ``errors`` faults out of ``units`` processed units
        is within policy."""
        if self.mode == "strict":
            return errors == 0
        if self.mode == "lenient":
            return True
        within_count = (
            self.max_errors is not None and errors <= self.max_errors
        )
        within_fraction = (
            self.max_fraction is not None
            and errors <= self.max_fraction * max(units, 1)
        )
        return within_count or within_fraction

    def check(self, errors: int, units: int, what: str = "faults") -> None:
        """Raise :class:`ErrorBudgetExceeded` when out of budget."""
        if not self.allows(errors, units):
            raise ErrorBudgetExceeded(
                f"error budget exceeded: {errors} {what} "
                f"in {units} units ({self.describe()})",
                errors=errors,
                units=units,
            )

    def describe(self) -> str:
        if self.mode == "budget":
            parts = []
            if self.max_errors is not None:
                parts.append(f"max {self.max_errors}")
            if self.max_fraction is not None:
                parts.append(f"max {self.max_fraction:.4g} of units")
            return "budget: " + ", ".join(parts)
        return self.mode


@dataclass
class SkippedFlow:
    """One quarantined flow: the fault record a tolerant run keeps.

    Plain picklable data — produced inside analyzer workers, shipped
    back to the parent, surfaced on
    :class:`~repro.core.report.ServiceReport` and in the metrics
    registry.  ``key`` is the flow's canonical 4-tuple
    (:class:`repro.packet.flow.FlowKey`); ``packet_index`` is how far
    into the flow the analyzer got before the fault.
    """

    key: object
    error_type: str
    error: str
    packets: int = 0
    packet_index: int | None = None
    #: Trace time of the flow's last packet — lets time-windowed
    #: aggregation (:mod:`repro.live.windows`) place the quarantined
    #: flow in the window its analysis would have landed in.
    last_time: float | None = None

    @classmethod
    def from_exception(
        cls, flow, exc: BaseException, packet_index: int | None = None
    ) -> "SkippedFlow":
        return cls(
            key=flow.key,
            error_type=type(exc).__name__,
            error=str(exc) or type(exc).__name__,
            packets=len(flow.packets),
            packet_index=packet_index,
            last_time=flow.last_time,
        )

    def describe(self) -> str:
        where = (
            f" at packet {self.packet_index}"
            if self.packet_index is not None
            else ""
        )
        return (
            f"skipped flow {self.key}{where} "
            f"({self.packets} packets): {self.error_type}: {self.error}"
        )


@dataclass
class FaultStats:
    """Fault accounting for one ingestion/analysis pass.

    Complements :class:`~repro.packet.flow.StreamStats` and
    :class:`~repro.experiments.parallel.AnalysisPoolStats`: those count
    work, this counts damage.
    """

    corrupt_records: int = 0   # pcap records skipped or resynced past
    resyncs: int = 0           # times the reader re-found framing
    option_errors: int = 0     # malformed TCP option areas tolerated
    checksum_errors: int = 0   # TCP checksums that failed verification
    checksums_skipped: int = 0  # requested verifications deferred (columnar)
    flows_skipped: int = 0     # flows quarantined as SkippedFlow
    tasks_retried: int = 0     # worker tasks retried after a failure
    tasks_poisoned: int = 0    # tasks quarantined after repeated death
    skipped: list[SkippedFlow] = field(default_factory=list)

    def record_skip(self, skipped_flow: SkippedFlow) -> None:
        self.flows_skipped += 1
        self.skipped.append(skipped_flow)

    def merge(self, other: "FaultStats") -> "FaultStats":
        self.corrupt_records += other.corrupt_records
        self.resyncs += other.resyncs
        self.option_errors += other.option_errors
        self.checksum_errors += other.checksum_errors
        self.checksums_skipped += other.checksums_skipped
        self.flows_skipped += other.flows_skipped
        self.tasks_retried += other.tasks_retried
        self.tasks_poisoned += other.tasks_poisoned
        self.skipped.extend(other.skipped)
        return self

    def to_registry(self, registry, prefix: str = "repro_fault_") -> None:
        """Fold into a :class:`repro.obs.metrics.MetricsRegistry`."""
        registry.counter(
            prefix + "corrupt_records_total",
            "Corrupt pcap records skipped or resynced past",
        ).inc(self.corrupt_records)
        registry.counter(
            prefix + "resyncs_total",
            "Times the pcap reader re-found record framing",
        ).inc(self.resyncs)
        registry.counter(
            prefix + "option_errors_total",
            "Malformed TCP option areas tolerated in lenient mode",
        ).inc(self.option_errors)
        registry.counter(
            prefix + "checksum_errors_total",
            "TCP checksums that failed verification",
        ).inc(self.checksum_errors)
        registry.counter(
            prefix + "checksums_skipped_total",
            "Requested TCP checksum verifications deferred by the "
            "lazy columnar path",
        ).inc(self.checksums_skipped)
        registry.counter(
            prefix + "flows_skipped_total",
            "Flows quarantined after an analyzer fault",
        ).inc(self.flows_skipped)
        registry.counter(
            prefix + "tasks_retried_total",
            "Worker tasks retried after a transient failure",
        ).inc(self.tasks_retried)
        registry.counter(
            prefix + "tasks_poisoned_total",
            "Worker tasks quarantined after repeated worker deaths",
        ).inc(self.tasks_poisoned)
