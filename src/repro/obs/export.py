"""Exporters: kernel-variable time-series, events, inference report.

This is the payoff of the flight recorder: the simulator *is* the
kernel, so for every flow we hold both the true per-ACK kernel
variables (recorded by :mod:`repro.obs.recorder` hooks in the sender)
and the variables TAPO *infers* from the passive packet trace
(:class:`~repro.core.flow_analyzer.FlowAnalysis.kernel_series`).
Aligning the two quantifies the paper's Sec. 3.3 "mimic the TCP stack"
claim directly: how far do the inferred cwnd, SRTT and RTO drift from
ground truth?

The module provides:

* :func:`ground_truth_series` / :func:`align_series` — build and join
  the two per-ACK series on capture timestamps (both sides sample at
  the instant an ACK reaches the server, so the join is exact);
* :class:`FlowInferenceError` / :func:`inference_error` — per-flow
  max/mean divergence of cwnd (segments) and SRTT/RTO (seconds);
* CSV/JSON writers for the aligned series, the raw event stream, and
  the report;
* :func:`trace_main` — the ``repro-paper trace`` subcommand.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from dataclasses import dataclass
from pathlib import Path

from .recorder import TraceEvent

#: Column order of the aligned per-flow time-series exports.
SERIES_COLUMNS = (
    "time",
    "cwnd_true",
    "cwnd_tapo",
    "srtt_true",
    "srtt_tapo",
    "rto_true",
    "rto_tapo",
    "in_flight_true",
)

#: Exact-match tolerance when joining on capture timestamps (both
#: series quote the same simulation clock, so this only absorbs float
#: formatting round trips).
ALIGN_TOLERANCE = 1e-9


def ground_truth_series(
    events: list[TraceEvent] | None,
) -> list[tuple[float, int, int, float | None, float, int]]:
    """Extract ``(time, cwnd, ssthresh, srtt, rto, in_flight)`` rows
    from a flow's per-ACK ``vars`` flight-recorder snapshots."""
    if not events:
        return []
    return [
        (e.time, e.cwnd, e.ssthresh, e.srtt, e.rto, e.in_flight)
        for e in events
        if e.kind == "vars" and e.detail == "ack"
    ]


def align_series(
    truth: list[tuple[float, int, int, float | None, float, int]],
    inferred: list[tuple[float, int, float | None, float]],
    tolerance: float = ALIGN_TOLERANCE,
) -> list[dict]:
    """Join ground-truth and inferred per-ACK rows on timestamps.

    Both series are time-ordered; a two-pointer sweep pairs rows whose
    timestamps agree within ``tolerance`` and skips unmatched rows
    (e.g. stale ACKs the sender short-circuits before snapshotting).
    """
    joined: list[dict] = []
    i = j = 0
    while i < len(truth) and j < len(inferred):
        t_true = truth[i][0]
        t_inf = inferred[j][0]
        if abs(t_true - t_inf) <= tolerance:
            _, cwnd_t, _ssthresh, srtt_t, rto_t, in_flight = truth[i]
            _, cwnd_i, srtt_i, rto_i = inferred[j]
            joined.append(
                {
                    "time": t_true,
                    "cwnd_true": cwnd_t,
                    "cwnd_tapo": cwnd_i,
                    "srtt_true": srtt_t,
                    "srtt_tapo": srtt_i,
                    "rto_true": rto_t,
                    "rto_tapo": rto_i,
                    "in_flight_true": in_flight,
                }
            )
            i += 1
            j += 1
        elif t_true < t_inf:
            i += 1
        else:
            j += 1
    return joined


@dataclass
class FlowInferenceError:
    """Per-flow divergence between TAPO's inference and ground truth."""

    flow_id: int
    service: str
    truth_samples: int
    inferred_samples: int
    aligned_samples: int
    cwnd_mean_err: float = 0.0
    cwnd_max_err: float = 0.0
    srtt_mean_err: float = 0.0
    srtt_max_err: float = 0.0
    rto_mean_err: float = 0.0
    rto_max_err: float = 0.0
    stalls: int = 0

    def to_dict(self) -> dict:
        return {
            "flow_id": self.flow_id,
            "service": self.service,
            "truth_samples": self.truth_samples,
            "inferred_samples": self.inferred_samples,
            "aligned_samples": self.aligned_samples,
            "cwnd_mean_err_segments": self.cwnd_mean_err,
            "cwnd_max_err_segments": self.cwnd_max_err,
            "srtt_mean_err_seconds": self.srtt_mean_err,
            "srtt_max_err_seconds": self.srtt_max_err,
            "rto_mean_err_seconds": self.rto_mean_err,
            "rto_max_err_seconds": self.rto_max_err,
            "stalls": self.stalls,
        }

    def describe(self) -> str:
        return (
            f"flow {self.flow_id} ({self.service}): "
            f"{self.aligned_samples} aligned samples | "
            f"cwnd err mean {self.cwnd_mean_err:.2f} "
            f"max {self.cwnd_max_err:.0f} seg | "
            f"SRTT err mean {self.srtt_mean_err * 1000:.1f} "
            f"max {self.srtt_max_err * 1000:.1f} ms | "
            f"RTO err mean {self.rto_mean_err * 1000:.1f} "
            f"max {self.rto_max_err * 1000:.1f} ms"
        )


def inference_error(
    flow_id: int,
    service: str,
    truth: list[tuple[float, int, int, float | None, float, int]],
    inferred: list[tuple[float, int, float | None, float]],
    stalls: int = 0,
) -> FlowInferenceError:
    """Summarize cwnd/SRTT/RTO divergence over the aligned samples."""
    joined = align_series(truth, inferred)
    report = FlowInferenceError(
        flow_id=flow_id,
        service=service,
        truth_samples=len(truth),
        inferred_samples=len(inferred),
        aligned_samples=len(joined),
        stalls=stalls,
    )
    if not joined:
        return report
    cwnd_errs = [abs(r["cwnd_true"] - r["cwnd_tapo"]) for r in joined]
    srtt_errs = [
        abs(r["srtt_true"] - r["srtt_tapo"])
        for r in joined
        if r["srtt_true"] is not None and r["srtt_tapo"] is not None
    ]
    rto_errs = [abs(r["rto_true"] - r["rto_tapo"]) for r in joined]
    report.cwnd_mean_err = sum(cwnd_errs) / len(cwnd_errs)
    report.cwnd_max_err = max(cwnd_errs)
    if srtt_errs:
        report.srtt_mean_err = sum(srtt_errs) / len(srtt_errs)
        report.srtt_max_err = max(srtt_errs)
    report.rto_mean_err = sum(rto_errs) / len(rto_errs)
    report.rto_max_err = max(rto_errs)
    return report


# ----------------------------------------------------------------------
# Writers
# ----------------------------------------------------------------------
def write_series_csv(path: str | Path, rows: list[dict]) -> Path:
    """Aligned time-series as CSV (empty cells for unknown SRTT)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(SERIES_COLUMNS)
        for row in rows:
            writer.writerow(
                [
                    "" if row[col] is None else row[col]
                    for col in SERIES_COLUMNS
                ]
            )
    return path


def write_series_json(
    path: str | Path, rows: list[dict], flow_id: int, service: str
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "flow_id": flow_id,
        "service": service,
        "columns": list(SERIES_COLUMNS),
        "rows": [[row[col] for col in SERIES_COLUMNS] for row in rows],
    }
    path.write_text(json.dumps(payload, indent=2))
    return path


def write_events_json(
    path: str | Path, events: list[TraceEvent] | None
) -> Path:
    """Raw flight-recorder dump (one object per event)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps([e.as_dict() for e in (events or [])], indent=2)
    )
    return path


def write_inference_report(
    path: str | Path, reports: list[FlowInferenceError]
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    aligned = [r for r in reports if r.aligned_samples]
    summary = {
        "flows": len(reports),
        "flows_aligned": len(aligned),
        "cwnd_mean_err_segments": (
            sum(r.cwnd_mean_err for r in aligned) / len(aligned)
            if aligned
            else 0.0
        ),
        "cwnd_max_err_segments": max(
            (r.cwnd_max_err for r in aligned), default=0.0
        ),
        "rto_mean_err_seconds": (
            sum(r.rto_mean_err for r in aligned) / len(aligned)
            if aligned
            else 0.0
        ),
        "rto_max_err_seconds": max(
            (r.rto_max_err for r in aligned), default=0.0
        ),
    }
    path.write_text(
        json.dumps(
            {
                "summary": summary,
                "flows": [r.to_dict() for r in reports],
            },
            indent=2,
        )
    )
    return path


# ----------------------------------------------------------------------
# ``repro-paper trace`` subcommand
# ----------------------------------------------------------------------
def _trace_one_flow(scenario, capacity: int, max_sim_time: float):
    """Simulate one scenario with tracing and analyze it with TAPO."""
    from ..config import AnalysisConfig
    from ..core.tapo import Tapo
    from ..experiments.runner import run_flow

    result = run_flow(
        scenario,
        max_sim_time=max_sim_time,
        trace=True,
        trace_capacity=capacity,
    )
    # Match the scenario's actual initial window so the report measures
    # inference drift, not a known configuration offset.
    tapo = Tapo(
        config=AnalysisConfig(
            init_cwnd=scenario.server_config.init_cwnd, record_series=True
        )
    )
    analyses = tapo.analyze_packets(result.packets)
    analysis = analyses[0] if analyses else None
    truth = ground_truth_series(result.trace_events)
    inferred = analysis.kernel_series if analysis is not None else []
    report = inference_error(
        scenario.flow_id,
        scenario.service,
        truth,
        inferred,
        stalls=len(analysis.stalls) if analysis is not None else 0,
    )
    return result, truth, inferred, report


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-paper trace",
        description=(
            "Re-simulate one dataset flow with the flight recorder on, "
            "dump its kernel-variable time-series (CSV + JSON) aligned "
            "with TAPO's inferred variables, and report the per-flow "
            "inference error."
        ),
    )
    parser.add_argument(
        "--flow",
        type=int,
        default=0,
        help="flow index within the service's dataset (default 0)",
    )
    parser.add_argument(
        "--service",
        default="web_search",
        help="service profile the flow belongs to (default web_search)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=20141222,
        help="dataset seed (must match the run being debugged)",
    )
    parser.add_argument(
        "--all-flows",
        type=int,
        metavar="N",
        default=0,
        help=(
            "also compute the inference-error report over the first N "
            "flows of the service (series files are still written only "
            "for --flow)"
        ),
    )
    parser.add_argument(
        "--out",
        default="trace-out",
        help="output directory (default ./trace-out)",
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=1 << 16,
        help="flight-recorder ring size in events (default 65536)",
    )
    parser.add_argument(
        "--max-sim-time",
        type=float,
        default=600.0,
        help="per-flow simulated-time cap in seconds (default 600)",
    )
    from .. import cli_options

    cli_options.add_policy(
        parser,
        help=(
            "recovery policy the server runs while re-simulating "
            "(default native); unknown names list the registry"
        ),
    )
    return parser


def trace_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-paper trace``."""
    from ..workload.generator import generate_flows
    from ..workload.services import get_profile

    args = build_trace_parser().parse_args(argv)
    profile = get_profile(args.service)
    count = max(args.flow + 1, args.all_flows)
    scenarios = list(
        generate_flows(profile, count, seed=args.seed, policy=args.policy)
    )
    if args.flow >= len(scenarios):
        print(f"no flow {args.flow} in a {len(scenarios)}-flow dataset",
              file=sys.stderr)
        return 2

    out = Path(args.out)
    reports: list[FlowInferenceError] = []
    written: list[Path] = []
    target_ids = (
        range(args.all_flows) if args.all_flows else [args.flow]
    )
    for flow_id in target_ids:
        scenario = scenarios[flow_id]
        result, truth, inferred, report = _trace_one_flow(
            scenario, args.capacity, args.max_sim_time
        )
        reports.append(report)
        if flow_id == args.flow:
            stem = f"flow_{args.service}_{flow_id}"
            joined = align_series(truth, inferred)
            written.append(
                write_series_csv(out / f"{stem}_series.csv", joined)
            )
            written.append(
                write_series_json(
                    out / f"{stem}_series.json",
                    joined,
                    flow_id,
                    args.service,
                )
            )
            written.append(
                write_events_json(
                    out / f"{stem}_events.json", result.trace_events
                )
            )
            print(
                f"flow {flow_id} ({args.service}): "
                f"{len(result.packets)} packets, "
                f"{len(result.trace_events or [])} trace events "
                f"({result.trace_dropped} dropped), "
                f"{report.stalls} stalls"
            )

    written.append(
        write_inference_report(out / "inference_report.json", reports)
    )
    for report in reports:
        print(report.describe())
    print(
        f"wrote {len(written)} files to {out}/", file=sys.stderr
    )
    return 0
