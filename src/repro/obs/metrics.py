"""Counter/gauge registry and wall-time phase spans.

The registry absorbs and extends the experiment layer's
:class:`~repro.experiments.metrics.RunMetrics`: anything the runner,
dataset builder, cache, or flight recorder counts can be folded into
one :class:`MetricsRegistry`, merged across parallel workers (plain
picklable data), and rendered as JSON or Prometheus-style text
exposition for scraping/CI artifacts.

Merge semantics are per-metric-type: counters add, gauges keep the
maximum (the registry is used for capacity-style gauges — workers,
utilization, ring occupancy — where max is the meaningful fold).

:func:`phase_span` is the profiling primitive: a context manager that
accumulates wall time into a ``phases`` mapping, which
``RunMetrics`` carries and the CLI prints under ``--stats``.
"""

from __future__ import annotations

import json
import re
import time
from collections.abc import Iterator, MutableMapping
from contextlib import contextmanager
from dataclasses import dataclass, field

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    """Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*."""
    cleaned = _NAME_RE.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


@dataclass
class Counter:
    """Monotonically increasing metric (merge: sum)."""

    name: str
    help: str = ""
    value: float = 0.0

    kind = "counter"

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    """Point-in-time metric (merge: max)."""

    name: str
    help: str = ""
    value: float = 0.0

    kind = "gauge"

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


@dataclass
class MetricsRegistry:
    """Named collection of counters and gauges."""

    metrics: dict[str, Counter | Gauge] = field(default_factory=dict)

    # -- registration --------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a counter."""
        metric = self.metrics.get(name)
        if metric is None:
            metric = Counter(name=name, help=help)
            self.metrics[name] = metric
        elif not isinstance(metric, Counter):
            raise TypeError(f"{name!r} is registered as a {metric.kind}")
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create a gauge."""
        metric = self.metrics.get(name)
        if metric is None:
            metric = Gauge(name=name, help=help)
            self.metrics[name] = metric
        elif not isinstance(metric, Gauge):
            raise TypeError(f"{name!r} is registered as a {metric.kind}")
        return metric

    def __contains__(self, name: str) -> bool:
        return name in self.metrics

    def __getitem__(self, name: str) -> Counter | Gauge:
        return self.metrics[name]

    def __iter__(self) -> Iterator[Counter | Gauge]:
        return iter(self.metrics.values())

    def __len__(self) -> int:
        return len(self.metrics)

    # -- combination ---------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (in place).

        Counters add; gauges keep the maximum of the two values.
        """
        for name, metric in other.metrics.items():
            mine = self.metrics.get(name)
            if mine is None:
                cls = type(metric)
                self.metrics[name] = cls(
                    name=metric.name, help=metric.help, value=metric.value
                )
            elif mine.kind != metric.kind:
                raise TypeError(
                    f"cannot merge {metric.kind} {name!r} into {mine.kind}"
                )
            elif isinstance(mine, Counter):
                mine.value += metric.value
            else:
                mine.value = max(mine.value, metric.value)
        return self

    @classmethod
    def merged(
        cls, registries: "Iterator[MetricsRegistry] | list[MetricsRegistry]"
    ) -> "MetricsRegistry":
        """Fold per-worker registries into one fleet-level registry.

        Same semantics as pairwise :meth:`merge` (counters add, gauges
        keep the max), applied left-to-right; the inputs are left
        untouched.  This is how :mod:`repro.cluster` combines the
        registries its shard workers ship back.
        """
        total = cls()
        for registry in registries:
            total.merge(registry)
        return total

    # -- rendering -----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            name: {
                "kind": metric.kind,
                "help": metric.help,
                "value": metric.value,
            }
            for name, metric in sorted(self.metrics.items())
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (one sample per metric)."""
        lines: list[str] = []
        for name, metric in sorted(self.metrics.items()):
            prom = _sanitize(name)
            if metric.help:
                lines.append(f"# HELP {prom} {metric.help}")
            lines.append(f"# TYPE {prom} {metric.kind}")
            value = metric.value
            if isinstance(value, float) and value.is_integer():
                rendered = str(int(value))
            else:
                rendered = repr(value)
            lines.append(f"{prom} {rendered}")
        return "\n".join(lines) + ("\n" if lines else "")


def registry_from_run_metrics(
    run_metrics, prefix: str = "repro_"
) -> MetricsRegistry:
    """Absorb a :class:`~repro.experiments.metrics.RunMetrics` into a
    fresh registry (the ``--metrics-out`` export path).
    """
    reg = MetricsRegistry()
    counters = {
        "flows_total": (run_metrics.flows, "Flows simulated"),
        "events_total": (run_metrics.events, "Simulator events executed"),
        "packets_total": (run_metrics.packets, "Packets captured"),
        "chunks_total": (run_metrics.chunks, "Parallel chunks executed"),
        "chunks_retried_total": (
            run_metrics.chunks_retried,
            "Chunks re-run serially after a worker failure",
        ),
        "chunks_poisoned_total": (
            run_metrics.chunks_poisoned,
            "Chunks that failed every retry, serial parent included",
        ),
        "flows_skipped_total": (
            run_metrics.flows_skipped,
            "Flows quarantined under a tolerant error budget",
        ),
        "cache_hits_total": (run_metrics.cache_hits, "Dataset cache hits"),
        "cache_misses_total": (
            run_metrics.cache_misses,
            "Dataset cache misses",
        ),
        "cache_corruptions_total": (
            run_metrics.cache_corruptions,
            "Corrupted dataset cache entries dropped",
        ),
        "cache_store_failures_total": (
            run_metrics.cache_store_failures,
            "Dataset cache writes that failed (best-effort store)",
        ),
        "trace_events_total": (
            run_metrics.trace_events,
            "Flight-recorder events captured",
        ),
        "trace_events_dropped_total": (
            run_metrics.trace_events_dropped,
            "Flight-recorder events evicted from full rings",
        ),
    }
    for name, (value, help_text) in counters.items():
        reg.counter(prefix + name, help_text).inc(float(value))
    reg.gauge(prefix + "wall_time_seconds", "Run wall time").set(
        run_metrics.wall_time
    )
    reg.gauge(prefix + "workers", "Worker processes used").set(
        float(run_metrics.workers)
    )
    reg.gauge(prefix + "utilization", "Worker pool utilization").set(
        run_metrics.utilization
    )
    reg.gauge(
        prefix + "events_per_second", "Simulator event throughput"
    ).set(run_metrics.events_per_sec)
    for phase, seconds in sorted(run_metrics.phases.items()):
        reg.counter(
            f"{prefix}phase_{_sanitize(phase)}_seconds_total",
            f"Wall time spent in the {phase} phase",
        ).inc(seconds)
    return reg


#: HTTP content types of the two export formats (the ``/metrics``
#: endpoint and any scraper agree on these).
CONTENT_TYPE_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"
CONTENT_TYPE_JSON = "application/json; charset=utf-8"


def render_exports(registry: MetricsRegistry) -> dict[str, str]:
    """Render every supported export format in one place.

    The single source of truth for metric serialization: the
    ``--metrics-out`` files (:func:`write_registry`) and the live
    daemon's ``/metrics`` endpoint both serve exactly these strings,
    so names and formatting can never drift between the two surfaces.
    Returns ``{"json": ..., "prom": ...}``.
    """
    return {
        "json": registry.to_json(indent=2),
        "prom": registry.render_prometheus(),
    }


def write_registry(registry: MetricsRegistry, prefix) -> tuple:
    """Write a registry to ``PREFIX.json`` and ``PREFIX.prom`` (the
    ``--metrics-out`` contract shared by every CLI); returns the two
    paths."""
    from pathlib import Path

    prefix = Path(prefix)
    if prefix.parent != Path("."):
        prefix.parent.mkdir(parents=True, exist_ok=True)
    exports = render_exports(registry)
    json_path = prefix.with_suffix(".json")
    prom_path = prefix.with_suffix(".prom")
    json_path.write_text(exports["json"])
    prom_path.write_text(exports["prom"])
    return json_path, prom_path


@contextmanager
def phase_span(phases: MutableMapping[str, float], name: str):
    """Accumulate the wall time of the enclosed block into
    ``phases[name]`` (seconds, additive across entries)."""
    started = time.perf_counter()
    try:
        yield
    finally:
        phases[name] = phases.get(name, 0.0) + (
            time.perf_counter() - started
        )
