"""Flight recorder: a bounded ring buffer of structured trace events.

One :class:`FlightRecorder` observes one flow's server-side sender.
Hook points in the TCP stack call :meth:`FlightRecorder.record` with
the current simulation time, an event kind, and a snapshot of the
kernel variables the paper cares about (cwnd, ssthresh, SRTT, RTO,
in-flight).  The buffer is a ``deque(maxlen=capacity)``: when full the
oldest events are evicted and counted in :attr:`FlightRecorder.dropped`
— recording never grows without bound and never fails.

Event kinds
-----------

``state``
    Congestion state transition; ``detail`` is the new state
    (Open / Disorder / Recovery / Loss).
``vars``
    Per-ACK kernel-variable snapshot — the ground-truth counterpart of
    TAPO's per-ACK inference (one row of the Fig. 11 series).
``rtt``
    RTO-estimator update; ``detail`` is ``seed``/``sample``/``timeout``
    and ``value`` the RTT sample (seconds) where applicable.
``timer``
    Retransmission-timer activity; ``detail`` is ``arm:rto``,
    ``arm:probe``, ``fire:rto``, ``fire:probe`` or ``cancel``; for arms
    ``value`` is the programmed delay.
``retx``
    A (re)transmission; ``detail`` is ``fast``/``rto``/``probe``/
    ``recovery`` and ``seq`` the segment's sequence number.
``probe``
    A recovery-policy probe fired (``detail`` = policy name: ``tlp`` or
    ``srto``).
``zwnd``
    Zero-receive-window episode activity: ``enter``, ``probe``
    (a persist-timer zero-window probe was sent) or ``exit``.
``engine``
    Raw event-loop activity (``schedule``/``fire``/``cancel``) — only
    produced when an :class:`EngineProbe` is attached; far noisier than
    the transport-level events, intended for debugging the simulator
    itself.

Determinism: events carry a per-recorder monotonic index, so merging
events from parallel workers sorts on ``(flow, time, index)`` and is
reproducible regardless of which worker finished first.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass

#: Default per-flow ring size.  Roughly three events per ACK arrive in
#: the worst case (vars + timer cancel + timer arm), so this holds the
#: full history of any dataset flow while bounding pathological ones.
DEFAULT_RING_CAPACITY = 1 << 16

#: Column order used by every exporter (CSV headers, JSON keys).
EVENT_FIELDS = (
    "flow",
    "index",
    "time",
    "kind",
    "detail",
    "seq",
    "cwnd",
    "ssthresh",
    "srtt",
    "rto",
    "in_flight",
    "value",
)


@dataclass(slots=True)
class TraceEvent:
    """One structured flight-recorder sample."""

    flow: int
    index: int
    time: float
    kind: str
    detail: str
    seq: int
    cwnd: int
    ssthresh: int
    srtt: float | None
    rto: float
    in_flight: int
    value: float

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in EVENT_FIELDS}

    def as_row(self) -> tuple:
        return tuple(getattr(self, name) for name in EVENT_FIELDS)


class FlightRecorder:
    """Bounded, per-flow store of :class:`TraceEvent` objects."""

    __slots__ = ("flow_id", "capacity", "events", "dropped", "_index")

    def __init__(
        self, flow_id: int = -1, capacity: int = DEFAULT_RING_CAPACITY
    ):
        if capacity < 1:
            raise ValueError("recorder capacity must be >= 1")
        self.flow_id = flow_id
        self.capacity = capacity
        self.events: deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0
        self._index = 0

    def record(
        self,
        time: float,
        kind: str,
        detail: str = "",
        seq: int = 0,
        cwnd: int = 0,
        ssthresh: int = 0,
        srtt: float | None = None,
        rto: float = 0.0,
        in_flight: int = 0,
        value: float = 0.0,
    ) -> None:
        """Append one event, evicting the oldest when full."""
        events = self.events
        if len(events) == self.capacity:
            self.dropped += 1
        events.append(
            TraceEvent(
                self.flow_id,
                self._index,
                time,
                kind,
                detail,
                seq,
                cwnd,
                ssthresh,
                srtt,
                rto,
                in_flight,
                value,
            )
        )
        self._index += 1

    def __len__(self) -> int:
        return len(self.events)

    @property
    def recorded(self) -> int:
        """Total events seen, including evicted ones."""
        return self._index

    def dump(self) -> list[TraceEvent]:
        """Snapshot the buffer contents (oldest first)."""
        return list(self.events)


class EngineProbe:
    """Event-loop observer that spills raw engine activity into a
    recorder.

    Attach with ``engine.observer = EngineProbe(recorder)``.  Every
    schedule/fire/cancel becomes one ``engine`` event — useful when the
    transport-level trace is not enough to explain a timing, at the
    cost of recording every packet delivery too.
    """

    __slots__ = ("recorder",)

    def __init__(self, recorder: FlightRecorder):
        self.recorder = recorder

    def on_schedule(self, time: float, callback) -> None:
        self.recorder.record(time, "engine", "schedule")

    def on_fire(self, time: float, callback) -> None:
        self.recorder.record(time, "engine", "fire")

    def on_cancel(self, time: float) -> None:
        self.recorder.record(time, "engine", "cancel")


def merge_events(
    event_lists: Iterable[Iterable[TraceEvent] | None],
) -> list[TraceEvent]:
    """Deterministically merge per-flow event streams.

    Accepts the ``trace_events`` of any number of flow results (``None``
    entries — untraced flows — are skipped) and orders the union by
    ``(flow, time, index)``.  Because the index is assigned at record
    time inside each single-threaded simulation, the merged order is
    identical no matter how flows were sharded across workers.
    """
    merged: list[TraceEvent] = []
    for events in event_lists:
        if events:
            merged.extend(events)
    merged.sort(key=lambda e: (e.flow, e.time, e.index))
    return merged
