"""Observability for the reproduction: flight recorder, metrics, export.

The paper's whole method depends on seeing inside the sender — TAPO
re-derives ``cwnd``, ``in_flight``, SRTT/RTO and the congestion state
machine from a passive trace precisely because production kernels hide
them.  This package keeps the simulator's ground truth instead of
throwing it away:

* :mod:`repro.obs.recorder` — an opt-in, bounded flight recorder of
  structured trace events (state transitions, kernel-variable changes,
  timer arm/fire/cancel, retransmissions, zero-window episodes) fed by
  hook points in :mod:`repro.tcp.sender`, :mod:`repro.tcp.rto`,
  :mod:`repro.tcp.policies` and :mod:`repro.netsim.engine`;
* :mod:`repro.obs.metrics` — a picklable, mergeable counter/gauge
  registry with JSON and Prometheus-style text rendering, plus
  wall-time phase spans for profiling;
* :mod:`repro.obs.export` — per-flow kernel-variable time-series
  (CSV/JSON) aligned with TAPO's inferred variables, the
  TAPO-vs-ground-truth inference-error report, and the
  ``repro-paper trace`` subcommand.

With tracing disabled (the default) every hook is a single
``is None`` check: simulator output stays byte-identical and the
overhead is bounded by the trace-overhead bench.
"""

from .metrics import Counter, Gauge, MetricsRegistry, phase_span
from .recorder import (
    DEFAULT_RING_CAPACITY,
    EngineProbe,
    FlightRecorder,
    TraceEvent,
    merge_events,
)

__all__ = [
    "Counter",
    "DEFAULT_RING_CAPACITY",
    "EngineProbe",
    "FlightRecorder",
    "Gauge",
    "MetricsRegistry",
    "TraceEvent",
    "merge_events",
    "phase_span",
]
