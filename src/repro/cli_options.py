"""Shared argparse flag builders for every ``repro`` CLI.

The offline analyzer (``tapo``), the reproduction runner
(``repro-paper``), the live daemon (``repro-paper watch``), the results
inspector (``repro-paper results``), and the cluster runner
(``repro-paper cluster``) all grew the same operational flags —
``--workers``, ``--errors``, ``--stats``, ``--metrics-out``,
``--results-store``, ``--no-cache`` — with per-command defaults and
help text.  Each flag lives here exactly once; a CLI composes the
builders it needs and passes its own default/help where commands
legitimately differ (the analyzer defaults ``--errors`` to strict, the
monitor to lenient).  That keeps flag names, metavars, and parse
semantics identical across every entry point, so an operator's muscle
memory — and any wrapper script — transfers between commands.

Builders return the :class:`argparse.Action` they add, so callers can
tweak rarely-needed attributes without re-declaring the flag.
"""

from __future__ import annotations

import argparse
import os

from .errors import ErrorBudget


def error_budget(spec: str) -> ErrorBudget:
    """Argparse ``type=`` adapter for :meth:`ErrorBudget.parse`.

    Turns a parse failure into the usage error argparse renders,
    instead of a traceback.  Accepts ``ErrorBudget`` instances
    unchanged, so programmatic defaults work too.
    """
    try:
        return ErrorBudget.parse(spec)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def endpoint(spec: str) -> tuple[str, int]:
    """Argparse ``type=`` adapter for ``[HOST:]PORT`` endpoint specs.

    Shared by every flag that names a TCP endpoint (``--http``,
    ``--listen``, ``--connect``), so the syntax an operator learns
    once works everywhere.  A bare port binds/reaches ``127.0.0.1``.
    """
    host, sep, port = spec.rpartition(":")
    if not sep:
        host, port = "127.0.0.1", spec
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad endpoint {spec!r}; expected [HOST:]PORT"
        ) from None


_ERRORS_HELP = (
    "error budget for damaged input: 'strict' (fail on the first "
    "fault), 'lenient' (skip, count, keep going), 'budget:N' or "
    "'budget:X%%' (lenient until N faults or X%% of units)"
)


def add_errors(
    parser: argparse.ArgumentParser,
    default="strict",
    help: str | None = None,
    raw: bool = False,
):
    """``--errors POLICY``.  ``raw=True`` keeps the spec a string for
    callers that parse it downstream (the results inspector)."""
    return parser.add_argument(
        "--errors",
        type=str if raw else error_budget,
        default=default,
        metavar="POLICY",
        help=help or f"{_ERRORS_HELP}; default {_describe(default)}",
    )


def add_workers(
    parser: argparse.ArgumentParser,
    default: int = 1,
    help: str | None = None,
):
    """``--workers N`` (0 = one per core, 1 = serial)."""
    return parser.add_argument(
        "--workers",
        type=int,
        default=default,
        help=help
        or (
            "worker processes (0 = one per core, 1 = serial; "
            f"default {default})"
        ),
    )


def add_no_cache(parser: argparse.ArgumentParser, help: str | None = None):
    """``--no-cache`` — bypass dataset caches."""
    return parser.add_argument(
        "--no-cache",
        action="store_true",
        help=help
        or (
            "bypass the dataset caches (in-process and on-disk) and "
            "re-simulate from scratch"
        ),
    )


def add_stats(parser: argparse.ArgumentParser, help: str | None = None):
    """``--stats`` — runtime counters on stderr."""
    return parser.add_argument(
        "--stats",
        action="store_true",
        help=help or "print runtime counters to stderr",
    )


def add_metrics_out(
    parser: argparse.ArgumentParser, help: str | None = None
):
    """``--metrics-out PREFIX`` — the PREFIX.json/PREFIX.prom export."""
    return parser.add_argument(
        "--metrics-out",
        metavar="PREFIX",
        help=help
        or (
            "write metrics to PREFIX.json and PREFIX.prom "
            "(Prometheus text exposition)"
        ),
    )


def add_results_store(
    parser: argparse.ArgumentParser, help: str | None = None
):
    """``--results-store PATH`` — the longitudinal JSONL store."""
    return parser.add_argument(
        "--results-store",
        metavar="PATH",
        help=help
        or (
            "append result records to the longitudinal results store "
            "at PATH"
        ),
    )


def policy_list(spec: str) -> tuple[str, ...]:
    """Argparse ``type=`` adapter for comma-separated policy names.

    Validates through the policy registry
    (:func:`repro.config.validate_policies`), so an unknown name fails
    with a usage error that lists every registered policy.
    """
    from .config import validate_policies

    names = tuple(name.strip() for name in spec.split(",") if name.strip())
    if not names:
        raise argparse.ArgumentTypeError("empty policy list")
    try:
        return validate_policies(names)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def policy_name(name: str) -> str:
    """Argparse ``type=`` adapter for a single policy name."""
    return policy_list(name)[0]


def add_policy(
    parser: argparse.ArgumentParser,
    default: str = "native",
    help: str | None = None,
):
    """``--policy NAME`` — one registry-validated recovery policy."""
    return parser.add_argument(
        "--policy",
        type=policy_name,
        default=default,
        metavar="NAME",
        help=help
        or (
            f"recovery policy to simulate under (default {default}); "
            "unknown names list the registry"
        ),
    )


def add_policies(
    parser: argparse.ArgumentParser,
    default: "tuple[str, ...] | None" = None,
    help: str | None = None,
):
    """``--policies NAME[,NAME...]`` — registry-validated selection."""
    return parser.add_argument(
        "--policies",
        type=policy_list,
        default=default,
        metavar="NAME[,NAME...]",
        help=help
        or (
            "comma-separated recovery policies to run (default: every "
            "registered policy); unknown names list the registry"
        ),
    )


def add_server_endpoint(parser: argparse.ArgumentParser) -> None:
    """``--server-ip`` / ``--server-port`` endpoint pin pair."""
    parser.add_argument(
        "--server-ip",
        help="IP address of the server endpoint (otherwise inferred)",
    )
    parser.add_argument(
        "--server-port",
        type=int,
        help="TCP port of the server endpoint (otherwise inferred)",
    )


def add_cluster_options(
    parser: argparse.ArgumentParser, default_shards: int = 4
) -> None:
    """``--shards`` / ``--transport`` — the sharded-cluster pair."""
    parser.add_argument(
        "--shards",
        type=int,
        default=default_shards,
        metavar="N",
        help=(
            "flow-hash shards, one worker process each (1 = run "
            f"in-process; merged output is byte-identical for every "
            f"value; default {default_shards})"
        ),
    )
    parser.add_argument(
        "--transport",
        choices=("pipe", "socket"),
        default="pipe",
        help=(
            "coordinator<->worker channel: inherited pipes or a "
            "socketpair speaking the identical framing (default pipe)"
        ),
    )


#: Environment fallback for ``--cluster-secret`` — keeps the secret out
#: of process listings and shell history.
CLUSTER_SECRET_ENV = "REPRO_CLUSTER_SECRET"


def add_cluster_secret(
    parser: argparse.ArgumentParser, help: str | None = None
):
    """``--cluster-secret SECRET`` with ``$REPRO_CLUSTER_SECRET``
    fallback (both the listener and dial-in worker CLIs use it, so the
    two ends of the handshake parse the secret identically)."""
    return parser.add_argument(
        "--cluster-secret",
        metavar="SECRET",
        default=os.environ.get(CLUSTER_SECRET_ENV),
        help=help
        or (
            "shared HMAC secret for the cluster handshake (default: "
            f"${CLUSTER_SECRET_ENV}); required for cross-host mode"
        ),
    )


def add_heartbeat(
    parser: argparse.ArgumentParser,
    interval: float = 5.0,
    deadline: float = 30.0,
) -> None:
    """``--heartbeat-interval`` / ``--heartbeat-deadline`` pair."""
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=interval,
        metavar="SECONDS",
        help=(
            "how often workers beacon a HEARTBEAT frame "
            f"(0 disables; default {interval:g})"
        ),
    )
    parser.add_argument(
        "--heartbeat-deadline",
        type=float,
        default=deadline,
        metavar="SECONDS",
        help=(
            "declare a worker lost after this long without any frame "
            "— catches silent and half-open peers "
            f"(0 disables; default {deadline:g})"
        ),
    )


def _describe(default) -> str:
    if isinstance(default, ErrorBudget):
        return default.mode
    return str(default)
