"""The supported public surface of :mod:`repro`, in one place.

Five verbs cover the pipeline, all configured through the two frozen
dataclasses in :mod:`repro.config` (``AnalysisConfig``, ``RunConfig``):

======================  =================================================
:func:`analyze`         pcap/packets -> list of classified flow analyses
:func:`analyze_stream`  unbounded source -> analyses as flows complete,
                        memory bounded by open-flow state
:func:`analyze_cluster` capture(s) -> merged report from an N-shard
                        worker fleet, byte-identical to a single
                        process (:class:`repro.cluster.Coordinator`
                        for full fleet control)
:func:`simulate`        service workloads -> simulated, analyzed dataset
:func:`report`          analyses / packet traces -> one ServiceReport
======================  =================================================

Everything listed in ``__all__`` is the stable API — re-exported both
here and lazily at the top level (``from repro import Tapo``); other
modules are implementation detail and may move.  The full surface:

* analyzer: ``Tapo``, ``FlowAnalysis``, ``ServiceReport``, ``Stall``,
  ``StallCause``, ``RetxCause``, ``DoubleKind``, ``CaState``;
* packets and flows: ``PacketRecord``, ``StreamStats``,
  ``server_by_ip``, ``server_by_port``;
* cluster: ``analyze_cluster``, ``Coordinator``, ``NetConfig``
  (cross-host listener mode), ``run_worker`` (dial-in worker loop);
* live monitoring: ``LiveDaemon``, ``WindowStore``, ``AlertRule``,
  ``watch_directory``;
* policy tournament: ``PolicyRegistry`` (the recovery-policy registry
  behind ``--policies``), the ``TRACKsPolicy`` / ``MobileLRPolicy``
  contenders, and the scenario x policy matrix — ``MatrixConfig``,
  ``run_matrix``, ``MatrixResult``;
* longitudinal results: ``ResultsStore``, ``TrendConfig``,
  ``trend_report``, ``merge_records``, ``render_dashboard``;
* configuration: ``AnalysisConfig``, ``RunConfig``;
* errors and budgets: ``ReproError``, ``ParseError``,
  ``FlowAnalysisError``, ``CacheError``, ``WorkerError``,
  ``PoisonTaskError``, ``AuthError`` (cluster handshake),
  ``ErrorBudget``, ``ErrorBudgetExceeded``, ``FaultStats``,
  ``SkippedFlow``.

Quickstart::

    from repro import api

    # Batch: small trace, everything in memory.
    for flow in api.analyze("trace.pcap"):
        print(flow.stall_ratio, [s.cause for s in flow.stalls])

    # Streaming: arbitrarily large trace, flat memory, 8 workers.
    from repro.config import RunConfig
    for flow in api.analyze_stream("huge.pcap",
                                   run=RunConfig(workers=8)):
        ...

    # Sharded: 4 worker processes, byte-identical merged report.
    merged = api.analyze_cluster("huge.pcap", shards=4)

Deprecation policy: renamed or superseded surface keeps working for at
least one minor release behind a shim that emits a single
``DeprecationWarning`` naming the replacement and the removal version;
see the "API stability & deprecation policy" section of the README.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from pathlib import Path

from .cluster import AuthError, Coordinator, NetConfig, analyze_cluster, run_worker
from .config import AnalysisConfig, RunConfig
from .core.flow_analyzer import FlowAnalysis
from .core.report import ServiceReport
from .core.stalls import CaState, DoubleKind, RetxCause, Stall, StallCause
from .core.tapo import Tapo
from .errors import (
    CacheError,
    ErrorBudget,
    ErrorBudgetExceeded,
    FaultStats,
    FlowAnalysisError,
    ParseError,
    PoisonTaskError,
    ReproError,
    SkippedFlow,
    WorkerError,
)
from .live import AlertRule, LiveDaemon, WindowStore, watch_directory
from .matrix import MatrixConfig, MatrixResult, run_matrix
from .packet.flow import (
    ServerPredicate,
    StreamStats,
    server_by_ip,
    server_by_port,
)
from .packet.packet import PacketRecord
from .results import (
    ResultsStore,
    TrendConfig,
    merge_records,
    render_dashboard,
    trend_report,
)
from .tcp import MobileLRPolicy, PolicyRegistry, TRACKsPolicy

__all__ = [
    "AlertRule",
    "AnalysisConfig",
    "AuthError",
    "CaState",
    "CacheError",
    "Coordinator",
    "DoubleKind",
    "ErrorBudget",
    "ErrorBudgetExceeded",
    "FaultStats",
    "FlowAnalysis",
    "FlowAnalysisError",
    "LiveDaemon",
    "MatrixConfig",
    "MatrixResult",
    "MobileLRPolicy",
    "NetConfig",
    "PacketRecord",
    "ParseError",
    "PoisonTaskError",
    "PolicyRegistry",
    "ReproError",
    "ResultsStore",
    "RetxCause",
    "RunConfig",
    "ServiceReport",
    "SkippedFlow",
    "Stall",
    "StallCause",
    "StreamStats",
    "TRACKsPolicy",
    "Tapo",
    "TrendConfig",
    "WindowStore",
    "WorkerError",
    "analyze",
    "analyze_cluster",
    "analyze_stream",
    "merge_records",
    "render_dashboard",
    "report",
    "run_matrix",
    "run_worker",
    "server_by_ip",
    "server_by_port",
    "simulate",
    "trend_report",
    "watch_directory",
]


def analyze(
    source: str | Path | Iterable[PacketRecord],
    server_side: ServerPredicate | None = None,
    config: AnalysisConfig | None = None,
) -> list[FlowAnalysis]:
    """Analyze every flow of a pcap file or packet iterable (batch).

    Results are sorted by first packet time.  For traces that do not
    fit in memory, use :func:`analyze_stream`.
    """
    tapo = Tapo(config=config)
    if isinstance(source, (str, Path)):
        return tapo.analyze_pcap(source, server_side)
    return tapo.analyze_packets(source, server_side)


def analyze_stream(
    source,
    server_side: ServerPredicate | None = None,
    config: AnalysisConfig | None = None,
    *,
    run: RunConfig | None = None,
    stats: StreamStats | None = None,
    registry=None,
) -> Iterator[FlowAnalysis]:
    """Analyze an unbounded packet source with bounded memory.

    Yields each flow's analysis as the flow *completes* (FIN/RST close
    or idle timeout).  ``run`` controls eviction bounds, worker
    processes, and backpressure; classifications are identical to
    :func:`analyze` on the same trace.  See
    :meth:`repro.core.tapo.Tapo.analyze_stream`.
    """
    return Tapo(config=config).analyze_stream(
        source, server_side, run=run, stats=stats, registry=registry
    )


def simulate(
    flows_per_service: int = 150,
    seed: int = 20141222,
    services: tuple[str, ...] | None = None,
    *,
    run: RunConfig | None = None,
):
    """Simulate the paper's service workloads and analyze them.

    Returns a :class:`repro.experiments.dataset.Dataset` with one
    simulated+analyzed :class:`ServiceReport` per service.  ``run``
    controls worker processes and cache usage.
    """
    from .experiments.dataset import SERVICES, build_dataset

    return build_dataset(
        flows_per_service=flows_per_service,
        seed=seed,
        services=services if services is not None else SERVICES,
        run=run,
    )


def report(
    source,
    service: str = "trace",
    server_side: ServerPredicate | None = None,
    config: AnalysisConfig | None = None,
    *,
    run: RunConfig | None = None,
) -> ServiceReport:
    """Aggregate a packet source or analyses into one ServiceReport.

    ``source`` may be anything :func:`analyze_stream` accepts, or an
    iterable of already-computed :class:`FlowAnalysis` objects.  Packet
    sources stream through the bounded-memory pipeline; partial
    reports merge associatively, so the result equals a batch pass.
    """
    if not isinstance(source, (str, Path)):
        source = iter(source)
        first = next(source, None)
        if first is None:
            return ServiceReport(service=service)
        if isinstance(first, FlowAnalysis):
            result = ServiceReport(service=service)
            result.add(first)
            for analysis in source:
                result.add(analysis)
            return result
        source = _chain_one(first, source)
    return Tapo(config=config).report_stream(
        source, service=service, server_side=server_side, run=run
    )


def _chain_one(first, rest):
    yield first
    yield from rest
