"""Retransmission-timeout estimation, Linux ``tcp_rtt_estimator`` style.

The paper's stall definition — a gap exceeding ``min(2 * SRTT, RTO)`` —
uses "SRTT and RTO calculated according to RFC 6298 as implemented in
the Linux kernel", so this class reproduces the *kernel's* estimator
rather than the plain RFC text.  The differences matter enormously for
the observed RTO distribution (Fig. 1):

* ``RTO = SRTT + rttvar4`` where ``rttvar4`` (the kernel's ``rttvar``,
  approximately four mean deviations) is a **windowed maximum**: it
  rises immediately with any deviation but decays by only 25% per
  round trip (``tcp_rtt_estimator``'s ``mdev_max`` logic);
* the per-window deviation floor is ``TCP_RTO_MIN`` (200 ms), so the
  RTO never falls below ``SRTT + 200 ms`` — this, not a flat 200 ms
  clamp, is why kernel RTOs sit an order of magnitude above the RTT on
  low-latency paths;
* exponential backoff doubles the RTO on every expiry (bounded by
  ``TCP_RTO_MAX`` = 120 s);
* Karn's rule — retransmitted segments never produce samples — is
  enforced by the callers (timestamps lift it where present).

The same class is shared between the TCP sender
(:mod:`repro.tcp.sender`) and the passive analyzer (:mod:`repro.core`):
both must compute identical SRTT/RTO values from the same samples.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from .constants import INITIAL_RTO, MAX_RTO, MIN_RTO

#: Estimator-update observer: ``(kind, value)`` where ``kind`` is
#: ``"seed"``, ``"sample"`` or ``"timeout"`` and ``value`` the RTT
#: sample (or seeded SRTT) in seconds; 0.0 for timeouts.
RTOObserver = Callable[[str, float], None]


@dataclass
class RTOEstimator:
    """SRTT / RTTVAR / RTO state for one connection."""

    min_rto: float = MIN_RTO
    max_rto: float = MAX_RTO
    initial_rto: float = INITIAL_RTO

    #: Flight-recorder hook, called after every estimator update.
    #: ``None`` (the default) keeps the estimator observer-free.
    on_update: RTOObserver | None = field(
        default=None, repr=False, compare=False
    )

    srtt: float | None = None
    #: Mean deviation (true units, the kernel's ``mdev / 4``).
    mdev: float = 0.0
    #: Windowed maximum of ``4 * mdev`` within the current RTT window.
    mdev_max: float = field(default=MIN_RTO)
    #: The kernel's ``rttvar``: the value actually added to SRTT.
    rttvar4: float = 0.0
    backoff: int = 0
    samples: int = 0
    _window_end: float | None = None

    ALPHA = 1 / 8
    BETA = 1 / 4

    def seed(self, srtt: float, rttvar4: float) -> None:
        """Initialize from cached destination metrics (Linux inherits
        ``srtt``/``rttvar`` from previous connections to the same peer
        unless ``tcp_no_metrics_save`` is set)."""
        self.srtt = max(srtt, 0.001)
        self.rttvar4 = max(rttvar4, self.min_rto)
        self.mdev = self.rttvar4 / 4
        self.mdev_max = self.min_rto
        if self.on_update is not None:
            self.on_update("seed", self.srtt)

    def observe(self, rtt: float, now: float | None = None) -> None:
        """Fold one RTT sample (seconds) into the estimator.

        ``now`` drives the once-per-RTT rttvar decay window; without it
        the window advances every 8 samples (a fair proxy for one
        window of ACKs).
        """
        if rtt <= 0:
            return
        self.samples += 1
        if self.srtt is None:
            self.srtt = rtt
            self.mdev = rtt / 2
            self.rttvar4 = max(2 * rtt, self.min_rto)
            self.mdev_max = self.rttvar4
            self._advance_window(now)
            if self.on_update is not None:
                self.on_update("sample", rtt)
            return
        err = rtt - self.srtt
        self.srtt += self.ALPHA * err
        aerr = abs(err)
        if err < 0 and aerr > self.mdev:
            # The kernel damps sudden *downward* RTT jumps so that one
            # fast sample does not collapse the deviation estimate.
            self.mdev += (aerr - self.mdev) * self.BETA / 8
        else:
            self.mdev += (aerr - self.mdev) * self.BETA
        if 4 * self.mdev > self.mdev_max:
            self.mdev_max = 4 * self.mdev
            if self.mdev_max > self.rttvar4:
                self.rttvar4 = self.mdev_max
        self._maybe_close_window(now)
        if self.on_update is not None:
            self.on_update("sample", rtt)

    def _advance_window(self, now: float | None) -> None:
        if now is not None and self.srtt is not None:
            self._window_end = now + self.srtt
        else:
            self._window_end = None

    def _maybe_close_window(self, now: float | None) -> None:
        """Once per RTT: decay rttvar toward the window max and reset
        the window floor to TCP_RTO_MIN."""
        if now is not None:
            if self._window_end is not None and now < self._window_end:
                return
        elif self.samples % 8:
            return
        if self.mdev_max < self.rttvar4:
            self.rttvar4 -= (self.rttvar4 - self.mdev_max) * self.BETA
        self.mdev_max = self.min_rto
        self._advance_window(now)

    @property
    def rttvar(self) -> float:
        """Mean-deviation view (compatibility helper): rttvar4 / 4."""
        return self.rttvar4 / 4

    @property
    def base_rto(self) -> float:
        """RTO without backoff applied: ``SRTT + rttvar4``."""
        if self.srtt is None:
            return self.initial_rto
        rto = self.srtt + max(self.rttvar4, self.min_rto)
        return min(max(rto, self.min_rto), self.max_rto)

    @property
    def rto(self) -> float:
        """Current RTO including exponential backoff."""
        return min(self.base_rto * (1 << self.backoff), self.max_rto)

    def on_timeout(self) -> None:
        """Record an expiry: double the RTO (bounded)."""
        if self.base_rto * (1 << self.backoff) < self.max_rto:
            self.backoff += 1
        if self.on_update is not None:
            self.on_update("timeout", 0.0)

    def on_ack(self) -> None:
        """An ACK of new data clears the backoff."""
        self.backoff = 0

    def stall_threshold(self, tau: float = 2.0) -> float:
        """The paper's stall threshold ``min(tau * SRTT, RTO)``.

        Before any sample exists the RTO alone is used.
        """
        if self.srtt is None:
            return self.rto
        return min(tau * self.srtt, self.rto)
