"""TCP endpoints and connections.

A :class:`TcpEndpoint` glues a :class:`~repro.tcp.sender.SenderHalf`
and a :class:`~repro.tcp.receiver.ReceiverHalf` behind one (ip, port),
handles the three-way handshake (the client's SYN advertises the
*initial receive window* the paper's Fig. 6 / Table 4 study), and turns
transport events into wire packets.

A :class:`TcpConnection` wires a client and a server endpoint across a
:class:`~repro.netsim.link.DuplexPath`, with a capture tap at the
server NIC — the same vantage point as the paper's dataset.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass, field

from ..netsim.engine import EventLoop, Timer
from ..netsim.link import Link, PathConfig
from ..netsim.trace import CaptureTap
from ..packet.headers import FLAG_ACK, FLAG_PSH, FLAG_SYN
from ..packet.options import TCPOptions
from ..packet.packet import PacketRecord
from ..packet.seqnum import seq_add
from .congestion import CongestionControl, make_congestion_control
from .constants import (
    DEFAULT_INIT_CWND,
    DEFAULT_MSS,
    DEFAULT_RCV_BUF,
    DEFAULT_WSCALE,
    DELACK_MAX,
    SYN_RTO,
    ts_now,
)
from .policies import RecoveryPolicy, make_policy
from .receiver import AppReader, ImmediateReader, ReceiverHalf
from .sender import SenderHalf


@dataclass
class EndpointConfig:
    """Transport parameters of one endpoint."""

    ip: int
    port: int
    mss: int = DEFAULT_MSS
    wscale: int = DEFAULT_WSCALE
    rcv_buf: int = DEFAULT_RCV_BUF
    max_rcv_buf: int | None = None
    rcv_buf_auto_grow: bool = True
    delack_timeout: float = DELACK_MAX
    init_cwnd: int = DEFAULT_INIT_CWND
    congestion: str = "cubic"
    policy: str = "native"
    policy_kwargs: dict = field(default_factory=dict)
    early_retransmit: bool = False
    #: Pace new data across the RTT instead of bursting per ACK.
    pacing: bool = False
    #: F-RTO spurious-timeout detection (RFC 5682).
    frto: bool = False
    #: Destination-cache seeding of the RTT estimator (None = fresh).
    init_srtt: float | None = None
    init_rttvar: float | None = None
    reader: AppReader = field(default_factory=ImmediateReader)

    def build_congestion(self) -> CongestionControl:
        return make_congestion_control(self.congestion)

    def build_policy(self) -> RecoveryPolicy:
        return make_policy(self.policy, **self.policy_kwargs)


class TcpEndpoint:
    """One side of a TCP connection."""

    def __init__(
        self,
        engine: EventLoop,
        config: EndpointConfig,
        rng: random.Random,
        tap: CaptureTap | None = None,
        recorder=None,
    ):
        self.engine = engine
        self.config = config
        self.rng = rng
        self.tap = tap
        #: Optional :class:`~repro.obs.recorder.FlightRecorder` handed
        #: to the sender half when it is created.
        self.recorder = recorder
        self.link: Link | None = None  # outgoing link, set by wiring
        self.peer: tuple[int, int] | None = None
        self.established = False
        self.closed = False
        self.sender: SenderHalf | None = None
        self.receiver: ReceiverHalf | None = None
        self.on_established: Callable[[], None] | None = None
        self._iss = rng.randrange(1, 1 << 32)
        self._syn_timer: Timer | None = None
        self._syn_tries = 0
        self._syn_sent_at: float | None = None
        self._is_server = False
        self._handshake_done_cb: Callable[[], None] | None = None

    # -- wiring -----------------------------------------------------------
    def attach_link(self, link: Link) -> None:
        self.link = link

    def _make_halves(self) -> None:
        self.sender = SenderHalf(
            self.engine,
            transmit=self._transmit_data,
            iss=self._iss,
            mss=self.config.mss,
            init_cwnd=self.config.init_cwnd,
            congestion=self.config.build_congestion(),
            policy=self.config.build_policy(),
            early_retransmit=self.config.early_retransmit,
            init_srtt=self.config.init_srtt,
            init_rttvar=self.config.init_rttvar,
            pacing=self.config.pacing,
            frto=self.config.frto,
        )
        if self.recorder is not None:
            self.sender.attach_recorder(self.recorder)
        self.receiver = ReceiverHalf(
            self.engine,
            send_ack=self._send_pure_ack,
            rcv_buf=self.config.rcv_buf,
            max_rcv_buf=self.config.max_rcv_buf,
            delack_timeout=self.config.delack_timeout,
            auto_grow=self.config.rcv_buf_auto_grow,
            mss=self.config.mss,
        )

    # -- handshake ----------------------------------------------------------
    def connect(self, peer: tuple[int, int]) -> None:
        """Client side: start the three-way handshake."""
        self.peer = peer
        self._is_server = False
        self._make_halves()
        self._send_syn()

    def listen(self) -> None:
        """Server side: wait for a SYN."""
        self._is_server = True

    def _send_syn(self) -> None:
        options = TCPOptions(
            mss=self.config.mss,
            wscale=self.config.wscale,
            sack_permitted=True,
            ts_val=ts_now(self.engine.now),
        )
        # The SYN advertises the *initial* receive window.  Deviation
        # from RFC 7323 (documented in DESIGN.md): the field is stored
        # pre-scaled (buf >> wscale) so that the analyzer can recover
        # ``init_rwnd = window << wscale`` for any buffer size; clients
        # with small windows use wscale 0, so the paper's 2-MSS case is
        # represented exactly.
        window = min(self.config.rcv_buf >> self.config.wscale, 65535)
        pkt = self._base_packet(
            seq=self._iss, ack=0, flags=FLAG_SYN, window=window, options=options
        )
        self._syn_sent_at = self.engine.now if self._syn_tries == 0 else None
        self._emit(pkt)
        self._syn_tries += 1
        if self._syn_tries <= 6:
            self._syn_timer = self.engine.schedule(
                SYN_RTO * (1 << (self._syn_tries - 1)), self._resend_syn
            )

    def _resend_syn(self) -> None:
        if not self.established:
            self._send_syn()

    def _send_syn_ack(self) -> None:
        assert self.receiver is not None
        options = TCPOptions(
            mss=self.config.mss,
            wscale=self.config.wscale,
            sack_permitted=True,
            ts_val=ts_now(self.engine.now),
            ts_ecr=self.receiver.ts_recent or None,
        )
        window = min(self.config.rcv_buf >> self.config.wscale, 65535)
        pkt = self._base_packet(
            seq=self._iss,
            ack=self.receiver.rcv_nxt,
            flags=FLAG_SYN | FLAG_ACK,
            window=window,
            options=options,
        )
        self._syn_sent_at = self.engine.now if self._syn_tries == 0 else None
        self._emit(pkt)
        self._syn_tries += 1
        if self._syn_tries <= 6:
            self._syn_timer = self.engine.schedule(
                SYN_RTO * (1 << (self._syn_tries - 1)), self._resend_syn_ack
            )

    def _resend_syn_ack(self) -> None:
        if not self.established:
            self._send_syn_ack()

    def _become_established(self) -> None:
        if self.established:
            return
        self.established = True
        # Seed the RTT estimator from the handshake exchange, as the
        # kernel does (a SYN/SYN+ACK that was never retransmitted gives
        # a clean sample).
        if self._syn_sent_at is not None and self.sender is not None:
            self.sender.rto_estimator.observe(
                self.engine.now - self._syn_sent_at, now=self.engine.now
            )
        if self._syn_timer is not None:
            self._syn_timer.cancel()
            self._syn_timer = None
        self.config.reader.start(self.receiver, self.engine)
        if self.on_established is not None:
            self.on_established()

    # -- packet reception --------------------------------------------------
    def receive(self, pkt: PacketRecord) -> None:
        """Entry point for packets delivered by the network."""
        if self.tap is not None:
            pkt = self.tap.capture(pkt)
        if self.closed:
            return
        if pkt.syn and not pkt.has_ack:
            self._on_syn(pkt)
            return
        if pkt.syn and pkt.has_ack:
            self._on_syn_ack(pkt)
            return
        if self.sender is None or self.receiver is None:
            return  # packet for a connection we never opened
        if not self.established and self._is_server:
            # Final handshake ACK.
            if pkt.ack == seq_add(self._iss, 1):
                self._become_established()
        if pkt.has_ack:
            self.sender.on_ack(pkt)
        if pkt.payload_len > 0 or pkt.fin:
            self.receiver.on_data(pkt)

    def _on_syn(self, pkt: PacketRecord) -> None:
        if not self._is_server:
            return
        if self.sender is None:
            self.peer = (pkt.src_ip, pkt.src_port)
            self._make_halves()
            self.receiver.on_syn(pkt.seq)
            if pkt.options.ts_val is not None:
                self.receiver.ts_recent = pkt.options.ts_val
            # The client's SYN window is its initial receive window
            # (pre-scaled, see _send_syn).
            self.sender.rwnd = pkt.window << (pkt.options.wscale or 0)
            if pkt.options.wscale is not None:
                self.sender.peer_wscale = pkt.options.wscale
            if pkt.options.mss is not None:
                self.sender.mss = min(self.sender.mss, pkt.options.mss)
        self._syn_tries = 0
        self._send_syn_ack()

    def _on_syn_ack(self, pkt: PacketRecord) -> None:
        if self._is_server or self.sender is None or self.established:
            if self.established and self.receiver is not None:
                self._send_pure_ack()  # duplicate SYN+ACK: re-ACK
            return
        self.receiver.on_syn(pkt.seq)
        if pkt.options.ts_val is not None:
            self.receiver.ts_recent = pkt.options.ts_val
        if pkt.options.wscale is not None:
            self.sender.peer_wscale = pkt.options.wscale
        if pkt.options.mss is not None:
            self.sender.mss = min(self.sender.mss, pkt.options.mss)
        self.sender.on_ack(pkt)
        self._become_established()
        self._send_pure_ack()

    # -- packet construction -------------------------------------------------
    def _base_packet(
        self,
        seq: int,
        ack: int,
        flags: int,
        window: int,
        options: TCPOptions | None = None,
        payload_len: int = 0,
    ) -> PacketRecord:
        assert self.peer is not None or self._is_server
        dst_ip, dst_port = self.peer if self.peer else (0, 0)
        return PacketRecord(
            timestamp=self.engine.now,
            src_ip=self.config.ip,
            dst_ip=dst_ip,
            src_port=self.config.port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
            payload_len=payload_len,
            options=options or TCPOptions(),
        )

    def _window_field(self) -> int:
        assert self.receiver is not None
        advertised = self.receiver.advertised_window()
        return min(advertised >> self.config.wscale, 65535)

    def _ack_options(self) -> TCPOptions:
        assert self.receiver is not None
        return TCPOptions(
            sack_blocks=self.receiver.sack_blocks(),
            ts_val=ts_now(self.engine.now),
            ts_ecr=self.receiver.ts_recent or None,
        )

    def _transmit_data(
        self, seq: int, length: int, fin: bool, is_retrans: bool
    ) -> None:
        """Sender-half transmit callback."""
        assert self.receiver is not None
        flags = FLAG_ACK | (FLAG_PSH if length else 0)
        if fin:
            from ..packet.headers import FLAG_FIN

            flags |= FLAG_FIN
        pkt = self._base_packet(
            seq=seq,
            ack=self.receiver.rcv_nxt,
            flags=flags,
            window=self._window_field(),
            options=self._ack_options(),
            payload_len=length,
        )
        self._emit(pkt)

    def _send_pure_ack(self) -> None:
        if self.receiver is None:
            return
        pkt = self._base_packet(
            seq=self.sender.snd_nxt if self.sender else 0,
            ack=self.receiver.rcv_nxt,
            flags=FLAG_ACK,
            window=self._window_field(),
            options=self._ack_options(),
        )
        self._emit(pkt)

    def _emit(self, pkt: PacketRecord) -> None:
        if self.closed:
            return
        if self.tap is not None:
            pkt = self.tap.capture(pkt)
        if self.link is None:
            raise RuntimeError("endpoint has no outgoing link attached")
        self.link.send(pkt)

    # -- application interface -----------------------------------------------
    def write(self, nbytes: int) -> None:
        if self.sender is None:
            raise RuntimeError("write before connect/accept")
        self.sender.write(nbytes)

    def close(self) -> None:
        if self.sender is not None:
            self.sender.close()

    def abort(self) -> None:
        """Tear down without FIN (used when a simulation scenario ends)."""
        self.closed = True
        if self._syn_timer is not None:
            self._syn_timer.cancel()
        if self.sender is not None:
            # Stop all timers so no further traffic is generated.
            self.sender.failed = True
            self.sender._cancel_retx_timer()
            if self.sender._persist_timer is not None:
                self.sender._persist_timer.cancel()


class TcpConnection:
    """A client and a server endpoint joined by a duplex path.

    The capture tap records all packets at the *server* NIC: outgoing
    data at transmission time, incoming ACKs at arrival time.
    """

    def __init__(
        self,
        engine: EventLoop,
        client_config: EndpointConfig,
        server_config: EndpointConfig,
        path_config: PathConfig,
        rng: random.Random,
        tap: CaptureTap | None = None,
        recorder=None,
    ):
        self.engine = engine
        self.tap = tap if tap is not None else CaptureTap(engine)
        self.client = TcpEndpoint(engine, client_config, rng)
        # The flight recorder, like the tap, observes the *server* side
        # — the vantage point the paper's analysis takes.
        self.server = TcpEndpoint(
            engine, server_config, rng, tap=self.tap, recorder=recorder
        )
        self.path = path_config.build(
            engine,
            to_client=self.client.receive,
            to_server=self.server.receive,
            rng=rng,
        )
        self.server.attach_link(self.path.forward)
        self.client.attach_link(self.path.reverse)
        self.server.listen()

    def open(self) -> None:
        """Start the handshake (client -> server)."""
        self.client.connect((self.server.config.ip, self.server.config.port))

    def teardown(self) -> None:
        self.client.abort()
        self.server.abort()
