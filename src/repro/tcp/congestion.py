"""Congestion-control algorithms: NewReno and CUBIC.

Both operate on a congestion window measured in segments, the way the
Linux kernel does.  The sender drives them through a small interface:

* :meth:`CongestionControl.on_ack` — one ACK advancing ``snd_una``,
  with the number of newly acknowledged segments;
* :meth:`CongestionControl.ssthresh` — the reduced target after a loss
  event (Reno halves; CUBIC multiplies by beta = 717/1024);
* :meth:`CongestionControl.on_loss_event` / :meth:`on_rto` — bookkeeping
  when entering Recovery / Loss.

CUBIC follows Ha, Rhee & Xu (2008) and the 2.6.32 implementation:
window growth is a cubic function of the time since the last reduction,
with the TCP-friendly region taken as a lower bound and fast convergence
shrinking ``w_max`` on consecutive losses.
"""

from __future__ import annotations

from .constants import MIN_CWND


class CongestionControl:
    """Interface implemented by every congestion-control algorithm."""

    name = "base"

    def on_ack(self, cwnd: int, ssthresh: int, acked: int, now: float) -> int:
        """Return the new cwnd after an ACK of ``acked`` segments."""
        raise NotImplementedError

    def ssthresh(self, cwnd: int) -> int:
        """Return the reduced ssthresh after a loss event."""
        raise NotImplementedError

    def on_loss_event(self, cwnd: int, now: float) -> None:
        """Called when the sender enters Recovery."""

    def on_rto(self, cwnd: int, now: float) -> None:
        """Called when the retransmission timer expires."""

    def reset(self) -> None:
        """Forget all history (new connection)."""


class NewReno(CongestionControl):
    """Classic AIMD: slow start, then +1 segment per RTT."""

    name = "reno"

    def __init__(self) -> None:
        self._cwnd_cnt = 0

    def on_ack(self, cwnd: int, ssthresh: int, acked: int, now: float) -> int:
        if cwnd < ssthresh:
            # Slow start: one segment per ACKed segment.
            grow = min(acked, ssthresh - cwnd)
            cwnd += grow
            acked -= grow
            if acked <= 0:
                return cwnd
        # Congestion avoidance: one segment per window of ACKs.
        self._cwnd_cnt += acked
        if self._cwnd_cnt >= cwnd:
            self._cwnd_cnt -= cwnd
            cwnd += 1
        return cwnd

    def ssthresh(self, cwnd: int) -> int:
        return max(cwnd // 2, MIN_CWND)

    def on_loss_event(self, cwnd: int, now: float) -> None:
        self._cwnd_cnt = 0

    def on_rto(self, cwnd: int, now: float) -> None:
        self._cwnd_cnt = 0

    def reset(self) -> None:
        self._cwnd_cnt = 0


class Cubic(CongestionControl):
    """CUBIC congestion avoidance (the 2.6.32 default).

    ``w(t) = C * (t - K)^3 + w_max`` with ``K = cbrt(w_max * beta' / C)``
    where ``beta' = 1 - beta`` is the multiplicative decrease.  The
    TCP-friendly estimate bounds growth from below so CUBIC never does
    worse than Reno on short-RTT paths.
    """

    name = "cubic"

    C = 0.4
    BETA = 717 / 1024  # multiplicative decrease factor (~0.7)

    def __init__(self, fast_convergence: bool = True):
        self.fast_convergence = fast_convergence
        self.reset()

    def reset(self) -> None:
        self._w_max = 0.0
        self._epoch_start: float | None = None
        self._k = 0.0
        self._origin_point = 0.0
        self._w_tcp = 0.0
        self._cnt = 0
        self._ack_cnt = 0

    def _cubic_update(self, cwnd: int, now: float) -> int:
        """Return the per-ACK increment denominator (Linux ``cnt``)."""
        if self._epoch_start is None:
            self._epoch_start = now
            self._ack_cnt = 0
            if cwnd < self._w_max:
                self._k = ((self._w_max - cwnd) / self.C) ** (1 / 3)
                self._origin_point = self._w_max
            else:
                self._k = 0.0
                self._origin_point = float(cwnd)
            self._w_tcp = float(cwnd)
        t = now - self._epoch_start
        target = self._origin_point + self.C * (t - self._k) ** 3
        if target > cwnd:
            cnt = cwnd / max(target - cwnd, 1e-9)
        else:
            cnt = 100.0 * cwnd  # effectively flat
        # TCP-friendly region.
        self._w_tcp += 3 * (1 - self.BETA) / (1 + self.BETA) * (
            self._ack_cnt / max(cwnd, 1)
        )
        self._ack_cnt = 0
        if self._w_tcp > cwnd:
            friendly_cnt = cwnd / max(self._w_tcp - cwnd, 1e-9)
            cnt = min(cnt, friendly_cnt)
        return max(int(cnt), 2)

    def on_ack(self, cwnd: int, ssthresh: int, acked: int, now: float) -> int:
        if cwnd < ssthresh:
            grow = min(acked, ssthresh - cwnd)
            cwnd += grow
            acked -= grow
            if acked <= 0:
                return cwnd
        self._ack_cnt += acked
        cnt = self._cubic_update(cwnd, now)
        self._cnt += acked
        if self._cnt >= cnt:
            self._cnt = 0
            cwnd += 1
        return cwnd

    def ssthresh(self, cwnd: int) -> int:
        if self.fast_convergence and cwnd < self._w_max:
            self._w_max = cwnd * (1 + self.BETA) / 2
        else:
            self._w_max = float(cwnd)
        self._epoch_start = None
        return max(int(cwnd * self.BETA), MIN_CWND)

    def on_loss_event(self, cwnd: int, now: float) -> None:
        self._epoch_start = None

    def on_rto(self, cwnd: int, now: float) -> None:
        self._epoch_start = None


def make_congestion_control(name: str) -> CongestionControl:
    """Factory keyed by algorithm name ('reno' or 'cubic')."""
    algorithms = {"reno": NewReno, "cubic": Cubic}
    try:
        return algorithms[name]()
    except KeyError:
        raise ValueError(
            f"unknown congestion control {name!r}; choose from {sorted(algorithms)}"
        ) from None
