"""The receiving half of a TCP endpoint.

Models the client-side behaviours the paper traces back to stall causes:

* **delayed ACKs** — one ACK per two in-order segments, otherwise a
  timer whose duration is a client property (old stacks push toward the
  RFC 1122 bound of 500 ms, which is how ACK-delay stalls beat the
  200 ms minimum RTO);
* **SACK and DSACK generation** — out-of-order arrivals trigger
  immediate duplicate ACKs carrying SACK blocks; duplicate segments are
  reported with a leading DSACK block (RFC 2883), which the sender and
  TAPO use to recognize spurious retransmissions;
* **the receive window** — a finite buffer drained by an application
  reader; slow readers fill the buffer and advertise zero windows.
  The advertised right edge never shrinks, so a zero window appears as
  the ACK number catching up with a frozen edge, exactly as on the wire.
"""

from __future__ import annotations

from collections.abc import Callable

from ..packet.options import SackBlock
from ..packet.packet import PacketRecord
from ..packet.seqnum import seq_add, seq_after, seq_before, seq_geq, seq_leq, seq_max
from ..netsim.engine import EventLoop, Timer
from .constants import DELACK_MAX, MAX_SACK_BLOCKS


class AppReader:
    """How the receiving application drains the TCP buffer.

    ``start`` is called once the connection is established; the reader
    then calls :meth:`ReceiverHalf.read` on its own schedule.
    """

    def start(self, receiver: "ReceiverHalf", engine: EventLoop) -> None:
        raise NotImplementedError


class ImmediateReader(AppReader):
    """Reads everything as soon as it arrives (buffer never fills)."""

    def start(self, receiver: "ReceiverHalf", engine: EventLoop) -> None:
        receiver.on_buffered = lambda: receiver.read(receiver.buffered)


class IntervalReader(AppReader):
    """Drains ``chunk`` bytes every ``interval`` seconds.

    A read rate below the arrival rate fills the buffer and produces
    zero-window stalls.
    """

    def __init__(self, chunk: int, interval: float):
        if chunk <= 0 or interval <= 0:
            raise ValueError("chunk and interval must be positive")
        self.chunk = chunk
        self.interval = interval

    def start(self, receiver: "ReceiverHalf", engine: EventLoop) -> None:
        def tick() -> None:
            if receiver.buffered:
                receiver.read(min(self.chunk, receiver.buffered))
            engine.schedule(self.interval, tick)

        engine.schedule(self.interval, tick)


class BurstyReader(AppReader):
    """Reads immediately while active, but alternates with pauses.

    Models client applications that stop draining the socket for a
    while (busy disk, blocked UI thread): with a small receive buffer
    the advertised window collapses to zero during each pause — the
    paper's zero-window stall pattern.  Active/pause durations are
    sampled from the injected ``rng``.
    """

    def __init__(
        self,
        rng,
        active_mean: float = 1.5,
        pause_low: float = 0.3,
        pause_high: float = 1.5,
    ):
        self.rng = rng
        self.active_mean = active_mean
        self.pause_low = pause_low
        self.pause_high = pause_high

    def start(self, receiver: "ReceiverHalf", engine: EventLoop) -> None:
        state = {"paused": False}

        def drain() -> None:
            if not state["paused"] and receiver.buffered:
                receiver.read(receiver.buffered)

        def begin_pause() -> None:
            state["paused"] = True
            engine.schedule(
                self.rng.uniform(self.pause_low, self.pause_high), end_pause
            )

        def end_pause() -> None:
            state["paused"] = False
            drain()
            engine.schedule(
                self.rng.expovariate(1 / self.active_mean), begin_pause
            )

        receiver.on_buffered = drain
        engine.schedule(
            self.rng.expovariate(1 / self.active_mean), begin_pause
        )


class PausingReader(AppReader):
    """Immediate reads, except for scheduled pauses.

    ``pauses`` is a list of ``(start_offset, duration)`` tuples relative
    to connection start; during a pause nothing is read.
    """

    def __init__(self, pauses: list[tuple[float, float]]):
        self.pauses = sorted(pauses)

    def start(self, receiver: "ReceiverHalf", engine: EventLoop) -> None:
        state = {"paused": False}
        start_time = engine.now

        def drain() -> None:
            if not state["paused"] and receiver.buffered:
                receiver.read(receiver.buffered)

        receiver.on_buffered = drain
        for offset, duration in self.pauses:
            def pause(d=duration) -> None:
                state["paused"] = True

                def resume() -> None:
                    state["paused"] = False
                    drain()

                engine.schedule(d, resume)

            engine.schedule_at(start_time + offset, pause)


class ReceiverHalf:
    """Receive-side TCP state for one endpoint."""

    def __init__(
        self,
        engine: EventLoop,
        send_ack: Callable[[], None],
        rcv_buf: int,
        max_rcv_buf: int | None = None,
        delack_timeout: float = DELACK_MAX,
        auto_grow: bool = True,
        mss: int = 1448,
    ):
        self.engine = engine
        self._send_ack = send_ack
        self.rcv_buf = rcv_buf
        self.max_rcv_buf = max_rcv_buf if max_rcv_buf is not None else rcv_buf
        self.delack_timeout = delack_timeout
        self.auto_grow = auto_grow
        self.mss = mss

        self.rcv_nxt = 0
        self.irs: int | None = None
        self.fin_received = False
        self._fin_seq: int | None = None
        #: RFC 7323 ts_recent: the TSval to echo in outgoing ACKs.
        self.ts_recent = 0
        #: rcv_nxt at the time the last ACK was sent (Last.ACK.sent).
        self._last_ack_sent = 0
        self.buffered = 0  # bytes delivered in order but not yet read
        self.total_received = 0
        self._right_edge = 0  # highest advertised window edge
        self._ooo: list[tuple[int, int]] = []  # disjoint, sorted intervals
        self._recent_blocks: list[SackBlock] = []
        self._dsack: SackBlock | None = None
        self._delack_pending = 0
        self._delack_timer: Timer | None = None
        # Linux quickack: the first segments of a connection are ACKed
        # immediately while the sender probes for bandwidth.
        self._quickack = 16
        self.on_delivered: Callable[[int], None] | None = None
        self.on_buffered: Callable[[], None] | None = None
        self.on_fin: Callable[[], None] | None = None
        self.duplicate_segments = 0

    # -- connection setup ----------------------------------------------
    def on_syn(self, seq: int) -> None:
        """Record the peer's initial sequence number."""
        self.irs = seq
        self.rcv_nxt = seq_add(seq, 1)
        self._last_ack_sent = self.rcv_nxt
        self._right_edge = seq_add(self.rcv_nxt, self.window_free())

    def window_free(self) -> int:
        """Bytes of free buffer space."""
        return max(0, self.rcv_buf - self.buffered)

    def advertised_window(self) -> int:
        """Window to put on the wire, relative to rcv_nxt.

        The right edge is monotonic: once advertised, never retracted.
        """
        edge = seq_add(self.rcv_nxt, self.window_free())
        self._right_edge = seq_max(self._right_edge, edge)
        diff = (self._right_edge - self.rcv_nxt) % (1 << 32)
        return diff

    def sack_blocks(self) -> list[SackBlock]:
        """SACK blocks for the next outgoing ACK (DSACK first)."""
        blocks: list[SackBlock] = []
        if self._dsack is not None:
            blocks.append(self._dsack)
            self._dsack = None
        for block in self._recent_blocks:
            if block not in blocks:
                blocks.append(block)
            if len(blocks) >= MAX_SACK_BLOCKS:
                break
        return blocks

    # -- segment arrival -------------------------------------------------
    def on_data(self, pkt: PacketRecord) -> None:
        """Process an incoming data (or FIN) segment."""
        seq = pkt.seq
        data_end = seq_add(seq, pkt.payload_len)
        immediate = False

        # RFC 7323 ts_recent update: only a segment spanning
        # Last.ACK.sent refreshes the echoed timestamp.  A burst of
        # in-order segments held by the delayed-ACK timer therefore
        # echoes the *first* segment's TSval, so the sender's RTT
        # sample includes the delack wait — the mechanism that keeps
        # real-world RTTVAR (and with it the RTO) high.
        ts_val = pkt.options.ts_val
        if ts_val is not None and seq_leq(seq, self._last_ack_sent):
            if ts_val > self.ts_recent:
                self.ts_recent = ts_val

        if pkt.fin:
            # Remember where the FIN sits; it is consumed only once all
            # data before it has been delivered.
            self._fin_seq = data_end

        if pkt.payload_len == 0:
            if pkt.fin:
                immediate = not self._consume_fin_if_ready()
            if immediate or pkt.fin:
                self._ack_now()
            return

        if seq_leq(data_end, self.rcv_nxt):
            # Entirely duplicate: answer at once with a DSACK.
            self.duplicate_segments += 1
            self._dsack = (seq, data_end)
            self._ack_now()
            return

        if seq_before(seq, self.rcv_nxt):
            # Partial overlap: trim the duplicate prefix.
            self._dsack = (seq, self.rcv_nxt)
            seq = self.rcv_nxt

        if seq == self.rcv_nxt:
            delivered = self._deliver(seq, data_end)
            filled_hole = self._merge_ooo()
            self._delack_pending += 1
            if self._quickack > 0:
                self._quickack -= 1
                immediate = True
            if filled_hole or self._delack_pending >= 2 or self._ooo:
                immediate = True
            if delivered and self.on_delivered is not None:
                self.on_delivered(delivered)
            if self.on_buffered is not None:
                self.on_buffered()
        else:
            # Out of order: store, SACK, and duplicate-ACK immediately.
            if self._insert_ooo(seq, data_end):
                self._recent_blocks.insert(
                    0, self._covering_block(seq, data_end)
                )
                self._recent_blocks = self._recent_blocks[: MAX_SACK_BLOCKS + 1]
            else:
                self.duplicate_segments += 1
                self._dsack = (seq, data_end)
            immediate = True

        if self._consume_fin_if_ready():
            immediate = True

        if immediate:
            self._ack_now()
        elif self._delack_timer is None or not self._delack_timer.pending:
            self._delack_timer = self.engine.schedule(
                self.delack_timeout, self._ack_now
            )

    def _consume_fin_if_ready(self) -> bool:
        """Consume the FIN once rcv_nxt has reached it."""
        if self.fin_received or self._fin_seq is None:
            return self.fin_received
        if self.rcv_nxt == self._fin_seq:
            self.fin_received = True
            self.rcv_nxt = seq_add(self.rcv_nxt, 1)
            if self.on_fin is not None:
                self.on_fin()
            return True
        return False

    def _deliver(self, seq: int, end: int) -> int:
        """Advance rcv_nxt over in-order bytes; return bytes delivered."""
        length = (end - seq) % (1 << 32)
        self.rcv_nxt = end
        self.buffered += length
        self.total_received += length
        self._maybe_grow_buffer()
        return length

    def _maybe_grow_buffer(self) -> None:
        """Crude receive-buffer auto-tuning: double as traffic arrives."""
        if not self.auto_grow:
            return
        while (
            self.rcv_buf < self.max_rcv_buf
            and self.total_received > self.rcv_buf
        ):
            self.rcv_buf = min(self.rcv_buf * 2, self.max_rcv_buf)

    def _insert_ooo(self, seq: int, end: int) -> bool:
        """Store an out-of-order range; False when fully duplicate."""
        for left, right in self._ooo:
            if seq_geq(seq, left) and seq_leq(end, right):
                return False
        self._ooo.append((seq, end))
        self._ooo.sort(key=lambda block: (block[0] - self.rcv_nxt) % (1 << 32))
        merged: list[tuple[int, int]] = []
        for left, right in self._ooo:
            if merged and seq_leq(left, merged[-1][1]):
                merged[-1] = (merged[-1][0], seq_max(merged[-1][1], right))
            else:
                merged.append((left, right))
        self._ooo = merged
        return True

    def _covering_block(self, seq: int, end: int) -> SackBlock:
        """The merged OOO interval containing [seq, end)."""
        for left, right in self._ooo:
            if seq_geq(seq, left) and seq_leq(end, right):
                return (left, right)
        return (seq, end)

    def _merge_ooo(self) -> bool:
        """Pull now-in-order data out of the OOO store.

        Returns True when a hole was filled (triggers immediate ACK).
        """
        filled = False
        while self._ooo and seq_leq(self._ooo[0][0], self.rcv_nxt):
            left, right = self._ooo.pop(0)
            if seq_after(right, self.rcv_nxt):
                delivered = self._deliver(self.rcv_nxt, right)
                if delivered and self.on_delivered is not None:
                    self.on_delivered(delivered)
            filled = True
        if not self._ooo:
            self._recent_blocks.clear()
        else:
            live = set(self._ooo)
            self._recent_blocks = [b for b in self._recent_blocks if b in live]
        return filled

    # -- application interface ------------------------------------------
    def read(self, nbytes: int) -> int:
        """Application reads ``nbytes`` from the buffer.

        Opening the window from (near) zero sends a window update.
        """
        nbytes = min(nbytes, self.buffered)
        if nbytes <= 0:
            return 0
        was_zero = self.advertised_window() < self.mss
        self.buffered -= nbytes
        if was_zero and self.advertised_window() >= self.mss:
            self._ack_now()
        return nbytes

    # -- ACK emission ------------------------------------------------------
    def _ack_now(self) -> None:
        if self._delack_timer is not None:
            self._delack_timer.cancel()
            self._delack_timer = None
        self._delack_pending = 0
        self._last_ack_sent = self.rcv_nxt
        self._send_ack()

    def ack_is_pending(self) -> bool:
        return self._delack_pending > 0
