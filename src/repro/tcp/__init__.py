"""Server-side TCP stack simulator (Linux 2.6.32 flavoured)."""

from .congestion import CongestionControl, Cubic, NewReno, make_congestion_control
from .constants import (
    DEFAULT_INIT_CWND,
    DEFAULT_MSS,
    DEFAULT_RCV_BUF,
    DUP_THRESH,
    MAX_RTO,
    MIN_RTO,
)
from .endpoint import EndpointConfig, TcpConnection, TcpEndpoint
from .policies import (
    REGISTRY,
    MobileLRPolicy,
    NativePolicy,
    PolicyRegistry,
    RecoveryPolicy,
    SRTOPolicy,
    TLPPolicy,
    TRACKsPolicy,
    make_policy,
)
from .receiver import (
    AppReader,
    ImmediateReader,
    IntervalReader,
    PausingReader,
    ReceiverHalf,
)
from .rto import RTOEstimator
from .scoreboard import Scoreboard, Segment
from .sender import SenderHalf, SenderStats

__all__ = [
    "AppReader",
    "CongestionControl",
    "Cubic",
    "DEFAULT_INIT_CWND",
    "DEFAULT_MSS",
    "DEFAULT_RCV_BUF",
    "DUP_THRESH",
    "EndpointConfig",
    "ImmediateReader",
    "IntervalReader",
    "MAX_RTO",
    "MIN_RTO",
    "MobileLRPolicy",
    "NativePolicy",
    "NewReno",
    "PausingReader",
    "PolicyRegistry",
    "REGISTRY",
    "RTOEstimator",
    "ReceiverHalf",
    "RecoveryPolicy",
    "SRTOPolicy",
    "Scoreboard",
    "Segment",
    "SenderHalf",
    "SenderStats",
    "TLPPolicy",
    "TRACKsPolicy",
    "TcpConnection",
    "TcpEndpoint",
    "make_congestion_control",
    "make_policy",
]
