"""The sending half of a TCP endpoint: a 2.6.32-style data sender.

Implements the machinery whose failure modes the paper classifies:

* the four-state congestion machine (Open / Disorder / Recovery / Loss,
  Fig. 4), with rate-halving cwnd reduction in Recovery;
* SACK-driven loss marking with ``dupthres`` (initially 3, raised when
  DSACKs reveal reordering);
* the 2.6.32 rule that a fast-retransmitted segment is never fast-
  retransmitted again — the mechanism behind *f-double* stalls;
* RFC 6298 RTO with exponential backoff; Loss state marks everything
  lost, restarts cwnd from 1 MSS and go-back-N retransmits;
* zero-window persist probes;
* a pluggable :mod:`recovery policy <repro.tcp.policies>` slot hosting
  TLP or the paper's S-RTO.

The sender is transport-only: the application supplies a byte count via
:meth:`SenderHalf.write` and the endpoint provides a ``transmit``
callback that turns (seq, length, flags) into a wire packet.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from ..netsim.engine import EventLoop, Timer
from ..packet.packet import PacketRecord
from ..packet.seqnum import seq_add, seq_before, seq_geq, seq_leq, seq_sub
from .congestion import CongestionControl, NewReno
from .constants import (
    DEFAULT_INIT_CWND,
    DEFAULT_MSS,
    DUP_THRESH,
    INITIAL_SSTHRESH,
    MAX_RETRIES,
    MIN_CWND,
    PERSIST_MAX,
    PERSIST_MIN,
    ts_to_time,
)
from .policies import PROBE, RTO, NativePolicy, RecoveryPolicy
from .rto import RTOEstimator
from .scoreboard import Scoreboard, Segment

#: ``transmit(seq, length, fin, is_retrans)`` — provided by the endpoint.
TransmitFn = Callable[[int, int, bool, bool], None]


@dataclass
class SenderStats:
    """Counters mirroring the kernel's per-connection MIB entries."""

    data_segments_sent: int = 0
    bytes_sent: int = 0
    retransmissions: int = 0
    fast_retransmits: int = 0
    rto_timeouts: int = 0
    probe_retransmissions: int = 0
    zero_window_probes: int = 0
    enter_recovery: int = 0
    enter_loss: int = 0
    dsacks_received: int = 0
    undo_events: int = 0
    frto_spurious_detected: int = 0
    rtt_samples: int = 0
    state_log: list[tuple[float, str]] = field(default_factory=list)

    @property
    def retransmission_ratio(self) -> float:
        total = self.data_segments_sent
        if not total:
            return 0.0
        return self.retransmissions / total


class SenderHalf:
    """Send-side TCP state for one endpoint."""

    OPEN = "Open"
    DISORDER = "Disorder"
    RECOVERY = "Recovery"
    LOSS = "Loss"

    def __init__(
        self,
        engine: EventLoop,
        transmit: TransmitFn,
        iss: int = 0,
        mss: int = DEFAULT_MSS,
        init_cwnd: int = DEFAULT_INIT_CWND,
        congestion: CongestionControl | None = None,
        policy: RecoveryPolicy | None = None,
        early_retransmit: bool = False,
        init_srtt: float | None = None,
        init_rttvar: float | None = None,
        pacing: bool = False,
        frto: bool = False,
    ):
        self.engine = engine
        self.transmit = transmit
        self.mss = mss
        self.iss = iss
        self.snd_una = seq_add(iss, 1)  # SYN consumes one
        self.snd_nxt = seq_add(iss, 1)
        self.cwnd = init_cwnd
        self.ssthresh = INITIAL_SSTHRESH
        self.ca_state = self.OPEN
        self.dup_thresh = DUP_THRESH
        self.dup_acks = 0
        self.rwnd = mss * 10  # refreshed by the first real ACK
        self.peer_wscale = 0
        self.congestion = congestion or NewReno()
        self.policy = policy or NativePolicy()
        self.early_retransmit = early_retransmit
        # Destination-cached metrics (Linux inherits SRTT/RTTVAR from
        # earlier connections to the same client unless
        # tcp_no_metrics_save is set); this is what gives short flows
        # the conservative RTOs of Fig. 1 from their very first loss.
        self.rto_estimator = RTOEstimator()
        if init_srtt is not None:
            rttvar4 = (
                4 * init_rttvar if init_rttvar is not None else 2 * init_srtt
            )
            self.rto_estimator.seed(init_srtt, rttvar4)
        self.scoreboard = Scoreboard()
        self.stats = SenderStats()

        self._app_bytes = 0  # bytes written but not yet segmented
        self._fin_pending = False
        self._fin_sent = False
        self._high_seq: int | None = None  # recovery point
        self._rh_acks = 0  # rate-halving ACK counter
        self._retx_timer: Timer | None = None
        self._retx_kind = RTO
        self._persist_timer: Timer | None = None
        self._persist_backoff = 0
        self._consecutive_timeouts = 0
        # Pacing (Sec. 4.3's suggested continuous-loss mitigation):
        # spread the window across one RTT instead of bursting.
        self.pacing = pacing
        self._pacing_timer: Timer | None = None
        # F-RTO (RFC 5682): after an RTO, probe with *new* data before
        # committing to go-back-N; two advancing ACKs prove the timeout
        # spurious.  Phase 0 = inactive, 1 = head retransmitted,
        # 2 = new data sent, awaiting the deciding ACK.
        self.frto = frto
        self._frto_phase = 0
        # DSACK undo (the kernel's Eifel response): restore cwnd when
        # every retransmission of an episode proves spurious.
        self._undo_marker: int | None = None
        self._undo_retrans = 0
        self._undo_cwnd = 0
        self._undo_ssthresh = 0
        self.failed = False
        self.on_all_acked: Callable[[], None] | None = None
        # Flight recorder (repro.obs): None means tracing is off and
        # every hook below is a single attribute test.
        self._recorder = None

    # ------------------------------------------------------------------
    # Flight-recorder hooks
    # ------------------------------------------------------------------
    @property
    def recorder(self):
        """The attached :class:`~repro.obs.recorder.FlightRecorder`."""
        return self._recorder

    @recorder.setter
    def recorder(self, recorder) -> None:
        self._recorder = recorder
        # Mirror estimator updates into the trace (tcp/rto.py hook).
        self.rto_estimator.on_update = (
            self._trace_rtt_update if recorder is not None else None
        )

    def trace_event(
        self, kind: str, detail: str = "", seq: int = 0, value: float = 0.0
    ) -> None:
        """Record one event with a kernel-variable snapshot attached.

        Callers guard with ``if sender.recorder is not None`` so the
        tracing-off path never pays for the snapshot.
        """
        est = self.rto_estimator
        self._recorder.record(
            self.engine.now,
            kind,
            detail,
            seq=seq,
            cwnd=self.cwnd,
            ssthresh=self.ssthresh,
            srtt=est.srtt,
            rto=est.rto,
            in_flight=self.scoreboard.in_flight,
            value=value,
        )

    def _trace_rtt_update(self, kind: str, value: float) -> None:
        self.trace_event("rtt", kind, value=value)

    def attach_recorder(self, recorder) -> None:
        """Attach and record the initial kernel-variable snapshot."""
        self.recorder = recorder
        if recorder is not None:
            self.trace_event("state", self.ca_state)
            self.trace_event("vars", "init")

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------
    def write(self, nbytes: int) -> None:
        """Application hands ``nbytes`` of data to TCP."""
        if nbytes < 0:
            raise ValueError("cannot write a negative byte count")
        if self._fin_pending or self._fin_sent:
            raise RuntimeError("write after close")
        self._app_bytes += nbytes
        self.try_send()

    def close(self) -> None:
        """Application is done: send FIN once the buffer drains."""
        if not self._fin_pending and not self._fin_sent:
            self._fin_pending = True
            self.try_send()

    @property
    def unsent_bytes(self) -> int:
        return self._app_bytes

    @property
    def outstanding_bytes(self) -> int:
        return seq_sub(self.snd_nxt, self.snd_una)

    @property
    def all_acked(self) -> bool:
        return self.scoreboard.empty and self._app_bytes == 0

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------
    def on_ack(self, pkt: PacketRecord, is_syn_ack: bool = False) -> None:
        """Process the acknowledgment fields of an incoming packet."""
        if self.failed:
            return
        ack = pkt.ack
        # Window update (scaled except on SYN).
        wscale = 0 if pkt.syn else self.peer_wscale
        self.rwnd = pkt.window << wscale
        self._update_persist_state()

        if seq_before(ack, self.snd_una):
            return  # stale ACK
        if seq_before(self.snd_nxt, ack):
            return  # acks data never sent; ignore

        # RFC 2883: a block at or below the packet's own cumulative
        # ACK is a DSACK, so the comparison uses pkt.ack, not the
        # not-yet-advanced snd_una.
        sack_result = self.scoreboard.apply_sack(
            pkt.sack_blocks, ack, now=self.engine.now
        )
        if sack_result.dsack_seen:
            self.stats.dsacks_received += 1
            self._on_dsack(sack_result)
            self._maybe_undo(sack_result)

        new_data_acked = seq_before(self.snd_una, ack)
        acked_segments: list[Segment] = []
        if new_data_acked:
            acked_segments = self.scoreboard.ack_through(ack)
            self.snd_una = ack
            self.dup_acks = 0
            self._consecutive_timeouts = 0
            self.rto_estimator.on_ack()
        if new_data_acked or sack_result.newly_sacked:
            self._sample_rtt(pkt, acked_segments, sack_result)
        elif self._is_duplicate_ack(pkt):
            self.dup_acks += 1

        if self._frto_phase:
            self._frto_on_ack(new_data_acked)
        self._advance_state_machine(
            new_data_acked, len(acked_segments), sack_result.newly_sacked
        )
        self.policy.on_ack(self, new_data_acked)
        self.try_send()
        self._rearm_after_ack(new_data_acked)
        if self._recorder is not None:
            # Per-ACK ground-truth snapshot: the exact counterpart of
            # the per-ACK series TAPO infers from the passive trace.
            self.trace_event("vars", "ack", seq=ack)

        if self.all_acked and self.on_all_acked is not None:
            self.on_all_acked()

    def _is_duplicate_ack(self, pkt: PacketRecord) -> bool:
        return (
            pkt.is_pure_ack
            and pkt.ack == self.snd_una
            and not self.scoreboard.empty
        )

    def _sample_rtt(self, pkt, acked: list[Segment], sack_result) -> None:
        """RTT sampling for an ACK carrying new information.

        With TCP timestamps (the default), the sample is
        ``now - TSecr`` — accurate even across retransmissions and
        holes.  Without timestamps, fall back to sequence-based samples
        under Karn's rule, skipping segments SACKed earlier (their
        cumulative ACK can be arbitrarily stale).
        """
        now = self.engine.now
        ts_ecr = pkt.options.ts_ecr
        if ts_ecr:
            rtt = now - ts_to_time(ts_ecr)
            if rtt > 0:
                self.rto_estimator.observe(rtt, now=now)
                self.stats.rtt_samples += 1
            return
        # FLAG_RETRANS_DATA_ACKED: when the cumulative ACK covers any
        # retransmitted segment, the never-retransmitted segments in
        # the same batch were held back by that hole and their samples
        # are stale — skip them all, as the kernel does.
        if not any(seg.retrans_count > 0 for seg in acked):
            for seg in acked:
                if seg.retrans_count == 0 and not seg.sacked:
                    self.rto_estimator.observe(
                        now - seg.first_tx_time, now=now
                    )
                    self.stats.rtt_samples += 1
        for seg in sack_result.newly_sacked_segments:
            if seg.retrans_count == 0:
                self.rto_estimator.observe(now - seg.first_tx_time, now=now)
                self.stats.rtt_samples += 1

    def _on_dsack(self, sack_result) -> None:
        """A DSACK implies a spurious retransmission: the network
        reordered or delayed rather than dropped, so raise dupthres
        (the kernel's ``tcp_update_reordering``).

        DSACKs answering deliberate probe retransmissions (TLP/S-RTO)
        carry no reordering information and are ignored, as TLP-aware
        stacks do."""
        for left, _right in sack_result.dsack_ranges:
            seg = self.scoreboard.find(left)
            if seg is not None and seg.probe_retrans:
                return
        if self.dup_thresh < 10:
            self.dup_thresh += 1

    # -- DSACK undo (tcp_try_undo_recovery / tcp_try_undo_loss) ---------
    def _set_undo_marker(self) -> None:
        """Start a fresh undo episode when entering recovery from a
        clean state; a timeout *during* recovery continues the episode.

        The marker survives the episode's normal exit: the DSACKs that
        prove spuriousness usually arrive after the cumulative ACK, and
        the window restoration is still owed then (as in the kernel).
        """
        if self.ca_state in (self.OPEN, self.DISORDER):
            self._undo_marker = self.snd_una
            self._undo_retrans = 0
            self._undo_cwnd = self.cwnd
            self._undo_ssthresh = self.ssthresh
        elif self._undo_marker is None:
            self._undo_marker = self.snd_una
            self._undo_retrans = 0
            self._undo_cwnd = self.cwnd
            self._undo_ssthresh = self.ssthresh

    def _clear_undo(self) -> None:
        self._undo_marker = None
        self._undo_retrans = 0

    def _maybe_undo(self, sack_result) -> None:
        """Every retransmission of this episode was answered by a
        DSACK: the loss detection was spurious, so restore the window
        the reduction took away (the kernel's DSACK/Eifel undo)."""
        if self._undo_marker is None:
            return
        self._undo_retrans -= len(sack_result.dsack_ranges)
        if self._undo_retrans > 0:
            return
        self.stats.undo_events += 1
        self.cwnd = max(self.cwnd, self._undo_cwnd)
        self.ssthresh = max(self.ssthresh, self._undo_ssthresh)
        self._clear_undo()
        for seg in self.scoreboard:
            if not seg.sacked:
                seg.lost = False
        if self.ca_state in (self.RECOVERY, self.LOSS):
            self._high_seq = None
            self._set_state(self.OPEN)

    # -- F-RTO (RFC 5682, basic variant) ---------------------------------
    def _frto_on_ack(self, new_data_acked: bool) -> None:
        if self._frto_phase == 1:
            if new_data_acked:
                # First ACK advances: transmit up to two *new* segments
                # and let the next ACK decide.
                self._frto_phase = 2
                self.cwnd = max(self.cwnd, 2)
            else:
                # Duplicate ACK: conventional loss recovery after all.
                self._frto_conventional()
        elif self._frto_phase == 2:
            if new_data_acked:
                # Second advancing ACK: the timeout was spurious.
                self._frto_phase = 0
                self.stats.frto_spurious_detected += 1
                self.cwnd = max(self.cwnd, self._undo_cwnd)
                self.ssthresh = max(self.ssthresh, self._undo_ssthresh)
                self._clear_undo()
                for seg in self.scoreboard:
                    if not seg.sacked:
                        seg.lost = False
                self._high_seq = None
                self._set_state(self.OPEN)
            else:
                self._frto_conventional()

    def _frto_conventional(self) -> None:
        """Fall back to standard Loss-state go-back-N recovery."""
        self._frto_phase = 0
        self.scoreboard.mark_all_lost()
        self.cwnd = max(self.cwnd, 1)
        if self.ca_state != self.LOSS:
            self._high_seq = self.snd_nxt
            self._set_state(self.LOSS)

    # ------------------------------------------------------------------
    # State machine (Fig. 4 of the paper)
    # ------------------------------------------------------------------
    def _effective_dup_thresh(self) -> int:
        """Early Retransmit (RFC 5827) lowers the threshold for tiny
        windows when enabled; stock 2.6.32 keeps it at dupthres."""
        if (
            self.early_retransmit
            and self._app_bytes == 0
            and 0 < self.scoreboard.packets_out < 4
        ):
            return max(1, self.scoreboard.packets_out - 1)
        return self.dup_thresh

    def _advance_state_machine(
        self, new_data_acked: bool, acked_count: int, newly_sacked: int
    ) -> None:
        now = self.engine.now
        dup_signal = max(self.dup_acks, self.scoreboard.sacked_out)

        if self.ca_state in (self.OPEN, self.DISORDER):
            if dup_signal >= self._effective_dup_thresh():
                self._enter_recovery()
            elif dup_signal > 0:
                self._set_state(self.DISORDER)
            else:
                self._set_state(self.OPEN)
                if new_data_acked:
                    self.cwnd = self.congestion.on_ack(
                        self.cwnd, self.ssthresh, acked_count, now
                    )
        elif self.ca_state == self.RECOVERY:
            self._rate_halve()
            self.scoreboard.mark_lost_by_sack(self.dup_thresh)
            if new_data_acked and self._high_seq is not None:
                if seq_geq(self.snd_una, self._high_seq):
                    self._exit_recovery()
                elif not newly_sacked:
                    # NewReno partial ACK: the next hole is lost too.
                    self.scoreboard.mark_head_lost()
        elif self.ca_state == self.LOSS:
            if new_data_acked:
                self.cwnd = self.congestion.on_ack(
                    self.cwnd, self.ssthresh, acked_count, now
                )
                if self._high_seq is not None and seq_geq(
                    self.snd_una, self._high_seq
                ):
                    self._set_state(self.OPEN)
                    self._high_seq = None

    def _set_state(self, state: str) -> None:
        if state != self.ca_state:
            self.stats.state_log.append((self.engine.now, state))
            self.ca_state = state
            if self._recorder is not None:
                self.trace_event("state", state)

    def _enter_recovery(self) -> None:
        self.stats.enter_recovery += 1
        self._set_undo_marker()
        self.ssthresh = self.congestion.ssthresh(self.cwnd)
        self.congestion.on_loss_event(self.cwnd, self.engine.now)
        self._high_seq = self.snd_nxt
        self._rh_acks = 0
        self._set_state(self.RECOVERY)
        if not self.scoreboard.mark_lost_by_sack(self._effective_dup_thresh()):
            self.scoreboard.mark_head_lost()
        seg = self.scoreboard.next_retransmittable()
        if seg is not None:
            self.retransmit_segment(seg, fast=True)
            self.stats.fast_retransmits += 1

    def enter_recovery_from_probe(self) -> None:
        """S-RTO's trigger: switch to Recovery without a fast
        retransmit (the probe itself was just sent)."""
        if self.ca_state != self.RECOVERY:
            self.stats.enter_recovery += 1
            self.ssthresh = min(self.ssthresh, max(self.cwnd, MIN_CWND))
            self._high_seq = self.snd_nxt
            self._rh_acks = 0
            self._set_state(self.RECOVERY)

    def spoof_dup_acks(self) -> None:
        """T-RACKs' trigger: behave as if ``dupthres`` duplicate ACKs
        for ``snd_una`` just arrived (the vswitch replayed the last
        ACK), entering fast-retransmit Recovery without waiting for
        the real (lost) dup-ACK train.  A no-op unless the connection
        is in Open/Disorder with unacknowledged data — a sender
        already in Recovery/Loss ignores further dup-ACKs anyway."""
        if self.ca_state not in (self.OPEN, self.DISORDER):
            return
        if self.scoreboard.empty:
            return
        self.dup_acks = max(self.dup_acks, self._effective_dup_thresh())
        self._enter_recovery()

    def _rate_halve(self) -> None:
        """2.6.32 Recovery: shed one segment every second ACK until the
        window reaches ssthresh."""
        self._rh_acks += 1
        if self._rh_acks >= 2:
            self._rh_acks = 0
            if self.cwnd > self.ssthresh:
                self.cwnd -= 1

    def _exit_recovery(self) -> None:
        self.cwnd = max(min(self.cwnd, self.ssthresh), MIN_CWND)
        self._high_seq = None
        self._set_state(self.OPEN)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _rearm_after_ack(self, new_data_acked: bool) -> None:
        if self.scoreboard.empty:
            self._cancel_retx_timer()
            return
        if new_data_acked or self._retx_timer is None:
            self._arm_retx_timer()

    def _arm_retx_timer(self) -> None:
        self._cancel_retx_timer()
        if self.scoreboard.empty:
            return
        delay, kind = self.policy.timer_duration(self)
        self._retx_kind = kind
        self._retx_timer = self.engine.schedule(delay, self._on_retx_timer)
        if self._recorder is not None:
            self.trace_event("timer", f"arm:{kind}", value=delay)

    def _cancel_retx_timer(self) -> None:
        if self._retx_timer is not None:
            if self._recorder is not None and self._retx_timer.pending:
                self.trace_event("timer", "cancel")
            self._retx_timer.cancel()
            self._retx_timer = None

    def _on_retx_timer(self) -> None:
        self._retx_timer = None
        if self.scoreboard.empty or self.failed:
            return
        if self._retx_kind == PROBE:
            if self._recorder is not None:
                self.trace_event("timer", "fire:probe")
            self.policy.on_probe_fire(self)
            self.stats.probe_retransmissions += 1
            self._arm_retx_timer()
            return
        self._on_rto()

    def _on_rto(self) -> None:
        """Native retransmission timeout: enter the Loss state."""
        if self._recorder is not None:
            self.trace_event("timer", "fire:rto")
        self.stats.rto_timeouts += 1
        self._consecutive_timeouts += 1
        if self._consecutive_timeouts > MAX_RETRIES:
            self.failed = True
            self.scoreboard.clear()
            return
        self.rto_estimator.on_timeout()
        self.stats.enter_loss += 1
        if self.ca_state != self.LOSS:
            self._set_undo_marker()
            self.ssthresh = self.congestion.ssthresh(self.cwnd)
        self.congestion.on_rto(self.cwnd, self.engine.now)
        if (
            self.frto
            and self.ca_state not in (self.LOSS, self.RECOVERY)
            and self.scoreboard.packets_out > 1
            and self._app_bytes > 0
        ):
            # F-RTO: retransmit only the head and wait for evidence
            # before declaring the whole window lost.
            self._frto_phase = 1
            head = self.scoreboard.mark_head_lost()
            self.cwnd = 1
            self.dup_acks = 0
            self._high_seq = self.snd_nxt
            self._set_state(self.LOSS)
            if head is not None:
                self.retransmit_segment(head, rto=True)
            self._arm_retx_timer()
            return
        self._frto_phase = 0
        self.scoreboard.mark_all_lost()
        self.cwnd = 1
        self.dup_acks = 0
        self._high_seq = self.snd_nxt
        self._set_state(self.LOSS)
        seg = self.scoreboard.next_rto_retransmittable()
        if seg is not None:
            self.retransmit_segment(seg, rto=True)
        self._arm_retx_timer()

    # -- zero-window persist probing -------------------------------------
    def _update_persist_state(self) -> None:
        window_blocked = (
            self.rwnd == 0
            and self.scoreboard.empty
            and (self._app_bytes > 0 or self._fin_pending)
        )
        if window_blocked:
            if self._persist_timer is None or not self._persist_timer.pending:
                if self._recorder is not None and self._persist_backoff == 0:
                    self.trace_event("zwnd", "enter")
                self._arm_persist_timer()
        else:
            self._persist_backoff = 0
            if self._persist_timer is not None:
                if self._recorder is not None:
                    self.trace_event("zwnd", "exit")
                self._persist_timer.cancel()
                self._persist_timer = None

    def _arm_persist_timer(self) -> None:
        delay = min(
            max(self.rto_estimator.rto, PERSIST_MIN)
            * (1 << self._persist_backoff),
            PERSIST_MAX,
        )
        self._persist_timer = self.engine.schedule(delay, self._on_persist)

    def _on_persist(self) -> None:
        self._persist_timer = None
        if self.rwnd > 0 or self.failed:
            return
        if self._app_bytes <= 0 and not self._fin_pending:
            return
        # Probe with one already-acked byte: elicits an immediate ACK
        # (carrying the current window) without consuming new sequence
        # space.
        self.stats.zero_window_probes += 1
        probe_seq = seq_add(self.snd_una, -1 % (1 << 32))
        if self._recorder is not None:
            self.trace_event("zwnd", "probe", seq=probe_seq)
        self.transmit(probe_seq, 1, False, True)
        if self._persist_backoff < 8:
            self._persist_backoff += 1
        self._arm_persist_timer()

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def _send_window_bytes(self) -> int:
        """How many more bytes the send window currently allows."""
        window = min(self.cwnd * self.mss, self.rwnd)
        return max(0, window - self.outstanding_bytes)

    def try_send(self) -> None:
        """Transmit retransmissions then new data as windows allow."""
        if self.failed:
            return
        if self.ca_state in (self.RECOVERY, self.LOSS):
            self._send_retransmissions()
        self._send_new_data()
        if self._retx_timer is None and not self.scoreboard.empty:
            self._arm_retx_timer()
        self._update_persist_state()

    def _send_retransmissions(self) -> None:
        while self.scoreboard.in_flight < self.cwnd:
            if self.ca_state == self.LOSS:
                seg = self.scoreboard.next_rto_retransmittable()
            else:
                seg = self.scoreboard.next_retransmittable()
            if seg is None or seg.retrans_outstanding:
                return
            self.retransmit_segment(
                seg,
                fast=self.ca_state == self.RECOVERY,
                rto=self.ca_state == self.LOSS,
            )

    def _send_new_data(self) -> None:
        if not self.pacing:
            while self._send_one_new():
                pass
            return
        # Pacing: one segment now, the next after srtt/cwnd.
        if self._pacing_timer is not None and self._pacing_timer.pending:
            return
        self._pace_one()

    def _pace_one(self) -> None:
        self._pacing_timer = None
        if self.failed:
            return
        if self._send_one_new() and (
            self._app_bytes > 0
            or (self._fin_pending and not self._fin_sent)
        ):
            self._pacing_timer = self.engine.schedule(
                self._pacing_interval(), self._pace_one
            )

    def _pacing_interval(self) -> float:
        srtt = self.rto_estimator.srtt or 0.05
        return srtt / max(self.cwnd, 1)

    def _send_one_new(self) -> bool:
        """Transmit at most one new segment; True when one was sent."""
        budget = self._send_window_bytes()
        if self.scoreboard.in_flight >= self.cwnd:
            return False
        if self._app_bytes > 0:
            if budget < min(self.mss, self._app_bytes):
                return False
            length = min(self.mss, self._app_bytes)
            fin = self._fin_pending and self._app_bytes == length
            self._transmit_new(length, fin)
            return True
        if self._fin_pending and not self._fin_sent:
            self._transmit_new(0, True)
            return True
        return False

    def _transmit_new(self, length: int, fin: bool) -> None:
        seq = self.snd_nxt
        now = self.engine.now
        end_seq = seq_add(seq, length + (1 if fin else 0))
        self.scoreboard.add(
            Segment(
                seq=seq,
                end_seq=end_seq,
                first_tx_time=now,
                last_tx_time=now,
                is_fin=fin,
            )
        )
        self.snd_nxt = end_seq
        self._app_bytes -= length
        if fin:
            self._fin_sent = True
            self._fin_pending = False
        self.stats.data_segments_sent += 1
        self.stats.bytes_sent += length
        self.transmit(seq, length, fin, False)
        # Linux rearms the retransmission timer on every new-data
        # transmission (tcp_event_new_data_sent -> tcp_rearm_rto);
        # probe timers (TLP/S-RTO) are likewise rescheduled, so a PTO
        # is measured from the *end* of a burst, not its start.
        self._arm_retx_timer()

    def retransmit_segment(
        self,
        seg: Segment,
        fast: bool = False,
        rto: bool = False,
        probe: bool = False,
    ) -> None:
        """(Re)transmit one scoreboard segment."""
        now = self.engine.now
        seg.retrans_count += 1
        seg.last_tx_time = now
        seg.retrans_outstanding = True
        if self._undo_marker is not None:
            self._undo_retrans += 1
        if fast:
            seg.fast_retrans = True
        if rto:
            seg.rto_retrans = True
        if probe:
            seg.probe_retrans = True
        self.stats.retransmissions += 1
        self.stats.data_segments_sent += 1
        length = seg.length - (1 if seg.is_fin else 0)
        self.stats.bytes_sent += length
        if self._recorder is not None:
            detail = (
                "fast"
                if fast
                else "rto" if rto else "probe" if probe else "recovery"
            )
            self.trace_event("retx", detail, seq=seg.seq)
        self.transmit(seg.seq, length, seg.is_fin, True)
