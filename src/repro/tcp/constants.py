"""Protocol constants mirroring the Linux 2.6.32 stack the paper studies."""

from __future__ import annotations

#: Default maximum segment size (Ethernet MTU minus IP/TCP headers,
#: leaving room for timestamps).
DEFAULT_MSS = 1448

#: Initial congestion window in segments (RFC 3390 era; 2.6.32 default).
DEFAULT_INIT_CWND = 3

#: Initial slow-start threshold: effectively unbounded.
INITIAL_SSTHRESH = 1 << 30

#: Minimum retransmission timeout — TCP_RTO_MIN in Linux (200 ms).
MIN_RTO = 0.2

#: Maximum retransmission timeout — TCP_RTO_MAX in Linux (120 s).
MAX_RTO = 120.0

#: Initial RTO before any RTT sample (RFC 6298 says 1 s; Linux uses 1 s
#: for data, 3 s for SYN).
INITIAL_RTO = 1.0
SYN_RTO = 3.0

#: Fast-retransmit duplicate-ACK threshold (initial value of dupthres).
DUP_THRESH = 3

#: Minimum congestion window after a reduction, in segments.
MIN_CWND = 2

#: Delayed-ACK timer bounds (Linux: HZ/25 .. HZ/5).
DELACK_MIN = 0.04
DELACK_MAX = 0.2

#: Upper bound RFC 1122 places on ACK delay; old client stacks approach it.
DELACK_RFC_MAX = 0.5

#: Maximum number of SACK blocks carried in one ACK (with timestamps).
MAX_SACK_BLOCKS = 3

#: Zero-window persist probe interval bounds.
PERSIST_MIN = 0.2
PERSIST_MAX = 60.0

#: Default receive buffer (bytes) for well-behaved clients.
DEFAULT_RCV_BUF = 1 << 20

#: Default advertised window scale factor.
DEFAULT_WSCALE = 7

#: Maximum retransmission attempts before a flow is aborted.
MAX_RETRIES = 15

#: Offset added to the millisecond timestamp clock so that a TSval of
#: zero unambiguously means "no timestamp".
TS_OFFSET = 10_000


def ts_now(now: float) -> int:
    """Simulation time -> TCP timestamp clock (milliseconds)."""
    return TS_OFFSET + int(round(now * 1000))


def ts_to_time(ts: int) -> float:
    """TCP timestamp clock -> simulation time (seconds)."""
    return (ts - TS_OFFSET) / 1000.0
