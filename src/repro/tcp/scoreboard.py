"""The sender's retransmission queue and SACK scoreboard.

Tracks every transmitted-but-unacknowledged segment with the per-segment
flags the Linux stack keeps in ``TCP_SKB_CB``: SACKed, lost, number of
(re)transmissions, and whether any retransmission was timeout-driven.
From these it derives the kernel variables that both the sender and the
paper's Table 2 use::

    packets_out = snd_nxt - snd_una                 (in segments)
    in_flight   = packets_out + retrans_out - (sacked_out + lost_out)

The scoreboard also implements the loss-marking rule that creates the
paper's *f-double* stalls: a segment that has already been fast-
retransmitted is never eligible for another fast retransmit — if the
retransmission is lost too, only the RTO can recover it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..packet.options import SackBlock
from ..packet.seqnum import seq_after, seq_before, seq_geq, seq_leq


@dataclass
class Segment:
    """One transmitted segment awaiting acknowledgment."""

    seq: int
    end_seq: int
    first_tx_time: float
    last_tx_time: float
    sacked: bool = False
    sacked_time: float | None = None
    lost: bool = False
    retrans_count: int = 0
    rto_retrans: bool = False
    fast_retrans: bool = False
    probe_retrans: bool = False
    retrans_outstanding: bool = False
    is_fin: bool = False

    @property
    def length(self) -> int:
        return self.end_seq - self.seq

    @property
    def retransmitted(self) -> bool:
        return self.retrans_count > 0


@dataclass
class SackResult:
    """Outcome of applying one ACK's SACK blocks."""

    newly_sacked: int = 0
    dsack_seen: bool = False
    dsack_ranges: list[SackBlock] = field(default_factory=list)
    newly_sacked_segments: list["Segment"] = field(default_factory=list)


class Scoreboard:
    """Ordered collection of outstanding segments."""

    def __init__(self) -> None:
        self._segments: list[Segment] = []
        self.highest_sacked: int | None = None

    # -- queue management ---------------------------------------------
    def add(self, segment: Segment) -> None:
        """Append a newly transmitted segment (must be in seq order)."""
        if self._segments and seq_before(
            segment.seq, self._segments[-1].end_seq
        ):
            raise ValueError(
                f"segment {segment.seq} not after queue tail "
                f"{self._segments[-1].end_seq}"
            )
        self._segments.append(segment)

    def ack_through(self, ack: int) -> list[Segment]:
        """Remove and return all segments fully covered by ``ack``."""
        acked: list[Segment] = []
        while self._segments and seq_leq(self._segments[0].end_seq, ack):
            acked.append(self._segments.pop(0))
        return acked

    def clear(self) -> None:
        self._segments.clear()
        self.highest_sacked = None

    # -- SACK processing -----------------------------------------------
    def apply_sack(
        self,
        blocks: list[SackBlock],
        snd_una: int,
        now: float | None = None,
    ) -> SackResult:
        """Mark segments covered by SACK blocks; detect DSACK.

        A block is a DSACK when it lies at or below ``snd_una`` or is
        contained in a later block of the same ACK (RFC 2883).
        """
        result = SackResult()
        for index, (left, right) in enumerate(blocks):
            if seq_leq(right, snd_una):
                result.dsack_seen = True
                result.dsack_ranges.append((left, right))
                continue
            if index == 0 and len(blocks) > 1:
                outer_left, outer_right = blocks[1]
                if seq_geq(left, outer_left) and seq_leq(right, outer_right):
                    result.dsack_seen = True
                    result.dsack_ranges.append((left, right))
                    continue
            for seg in self._segments:
                if seg.sacked:
                    continue
                if seq_geq(seg.seq, left) and seq_leq(seg.end_seq, right):
                    seg.sacked = True
                    seg.sacked_time = now
                    seg.lost = False
                    result.newly_sacked += 1
                    result.newly_sacked_segments.append(seg)
                    if self.highest_sacked is None or seq_after(
                        seg.end_seq, self.highest_sacked
                    ):
                        self.highest_sacked = seg.end_seq
        return result

    def mark_lost_by_sack(self, dup_thresh: int) -> int:
        """Apply the "dupthres SACKed segments above" loss rule.

        A not-yet-SACKed segment is marked lost when at least
        ``dup_thresh`` SACKed segments lie above it.  Returns the number
        of segments newly marked lost.
        """
        sacked_above = sum(1 for seg in self._segments if seg.sacked)
        newly_lost = 0
        for seg in self._segments:
            if seg.sacked:
                sacked_above -= 1
                continue
            if sacked_above >= dup_thresh and not seg.lost:
                seg.lost = True
                newly_lost += 1
        return newly_lost

    def mark_head_lost(self) -> Segment | None:
        """Mark the first unSACKed segment lost (NewReno partial ACK)."""
        for seg in self._segments:
            if not seg.sacked:
                if not seg.lost:
                    seg.lost = True
                return seg
        return None

    def mark_all_lost(self) -> int:
        """RTO expiry: every outstanding unSACKed segment is lost and
        becomes retransmittable again (the kernel clears the fast-
        retransmit mark in ``tcp_enter_loss``)."""
        count = 0
        for seg in self._segments:
            if not seg.sacked:
                seg.lost = True
                seg.fast_retrans = False
                seg.retrans_outstanding = False
                count += 1
        return count

    # -- queries --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._segments)

    def __iter__(self):
        return iter(self._segments)

    @property
    def empty(self) -> bool:
        return not self._segments

    def head(self) -> Segment | None:
        return self._segments[0] if self._segments else None

    def tail(self) -> Segment | None:
        return self._segments[-1] if self._segments else None

    @property
    def packets_out(self) -> int:
        return len(self._segments)

    @property
    def sacked_out(self) -> int:
        return sum(1 for seg in self._segments if seg.sacked)

    @property
    def lost_out(self) -> int:
        return sum(1 for seg in self._segments if seg.lost)

    @property
    def retrans_out(self) -> int:
        """Segments whose latest retransmission is still in the network.

        The flag is cleared when the RTO marks everything lost (the
        kernel zeroes ``retrans_out`` in ``tcp_enter_loss``), so a
        lost-then-retransmitted segment contributes ``+1`` here and
        ``-1`` through ``lost_out``, keeping Equation (1) correct.
        """
        return sum(
            1
            for seg in self._segments
            if seg.retrans_outstanding and not seg.sacked
        )

    @property
    def in_flight(self) -> int:
        """Equation (1) of the paper."""
        return (
            self.packets_out
            + self.retrans_out
            - (self.sacked_out + self.lost_out)
        )

    def next_retransmittable(self) -> Segment | None:
        """First segment eligible for (re)transmission during recovery.

        Eligible = marked lost, not SACKed, and — the crucial 2.6.32
        behaviour — not already fast-retransmitted.
        """
        for seg in self._segments:
            if seg.lost and not seg.sacked and not seg.fast_retrans:
                return seg
        return None

    def next_rto_retransmittable(self) -> Segment | None:
        """First lost segment for timeout-driven go-back-N retransmit."""
        for seg in self._segments:
            if seg.lost and not seg.sacked:
                return seg
        return None

    def find(self, seq: int) -> Segment | None:
        for seg in self._segments:
            if seg.seq == seq:
                return seg
        return None

    def holes(self) -> int:
        """Unacked, unSACKed segments below the highest SACK (Table 2)."""
        if self.highest_sacked is None:
            return 0
        return sum(
            1
            for seg in self._segments
            if not seg.sacked and seq_before(seg.seq, self.highest_sacked)
        )
