"""Loss-recovery policies: native RTO, TLP, S-RTO, T-RACKs, mobile-LR.

The sender owns a single retransmission-timer slot.  Whenever it
(re)arms that timer it asks its policy for a duration and a kind:

* kind ``"rto"`` — the native retransmission timeout; on expiry the
  sender enters the Loss state (Sec. 3.1 of the paper).
* kind ``"probe"`` — a policy-specific probe timer that fires *before*
  the RTO and tries to recover the loss cheaply; the policy's
  :meth:`RecoveryPolicy.on_probe_fire` decides what to transmit and how
  to adjust the congestion state, after which the sender falls back to
  the native RTO.

``NativePolicy`` reproduces the stock 2.6.32 kernel, ``TLPPolicy``
implements Tail Loss Probe (Flach et al., SIGCOMM'13) as the paper's
baseline mitigation, and ``SRTOPolicy`` is Algorithm 1 verbatim.
``TRACKsPolicy`` and ``MobileLRPolicy`` extend the tournament beyond
the paper: data-center recovery via replayed dup-ACKs at a virtual
vswitch layer, and the cellular RTO/dupthresh adaptations of Liu et
al. — each only pays off under path conditions the matrix runner
(:mod:`repro.matrix`) sweeps explicitly.

Every concrete policy registers itself in the module-level
:data:`REGISTRY` (:class:`PolicyRegistry`); :func:`make_policy` and
every CLI ``--policy``/``--policies`` flag resolve through it, so a
new policy is available everywhere the moment it is registered.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .sender import SenderHalf

PROBE = "probe"
RTO = "rto"


class RecoveryPolicy:
    """Base policy: pure native-RTO behaviour."""

    name = "native"

    def timer_duration(self, sender: "SenderHalf") -> tuple[float, str]:
        """Duration and kind of the next retransmission timer."""
        return sender.rto_estimator.rto, RTO

    def on_probe_fire(self, sender: "SenderHalf") -> None:
        """Handle a ``probe`` timer expiry (never called for native)."""
        raise NotImplementedError(f"{self.name} policy armed no probe")

    def on_ack(self, sender: "SenderHalf", new_data_acked: bool) -> None:
        """Hook called after the sender processes each ACK."""

    def reset(self) -> None:
        """Forget per-flight state (new connection)."""


class PolicyRegistry:
    """Name -> policy-class registry backing every policy lookup.

    One instance (:data:`REGISTRY`) is the single source of truth for
    which recovery policies exist: the ``make_policy`` factory, the
    CLI ``--policy``/``--policies`` flags, and the matrix runner's
    default policy set all resolve through it.  Registering a class
    (``@REGISTRY.register`` or an explicit call) is the *only* step
    needed to enter the tournament.
    """

    def __init__(self) -> None:
        self._classes: dict[str, type[RecoveryPolicy]] = {}

    def register(
        self, cls: "type[RecoveryPolicy]"
    ) -> "type[RecoveryPolicy]":
        """Register ``cls`` under its ``name`` attribute (decorator-
        friendly: returns the class).  Duplicate names are a bug."""
        name = cls.name
        if not isinstance(name, str) or not name:
            raise ValueError(f"policy class {cls!r} has no usable name")
        if name in self._classes:
            raise ValueError(
                f"recovery policy {name!r} already registered by "
                f"{self._classes[name].__name__}"
            )
        self._classes[name] = cls
        return cls

    def names(self) -> list[str]:
        """Registered policy names, sorted."""
        return sorted(self._classes)

    def get(self, name: str) -> "type[RecoveryPolicy]":
        """The class registered under ``name``.

        Raises ``ValueError`` naming every registered policy — the
        message every CLI surfaces verbatim for unknown ``--policy``
        values.
        """
        try:
            return self._classes[name]
        except KeyError:
            raise ValueError(
                f"unknown recovery policy {name!r}; "
                f"choose from {self.names()}"
            ) from None

    def create(self, name: str, **kwargs) -> "RecoveryPolicy":
        """Instantiate the policy registered under ``name``."""
        return self.get(name)(**kwargs)

    def __contains__(self, name: object) -> bool:
        return name in self._classes

    def __iter__(self):
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._classes)


#: The process-wide policy registry every lookup resolves through.
REGISTRY = PolicyRegistry()


@REGISTRY.register
class NativePolicy(RecoveryPolicy):
    """Stock Linux 2.6.32: no probe timer at all."""


@REGISTRY.register
class TLPPolicy(RecoveryPolicy):
    """Tail Loss Probe.

    Arms a probe timeout of ``2 * SRTT`` (plus a worst-case delayed-ACK
    allowance when only one segment is outstanding) **only in the Open
    state**.  On expiry the highest-sequence unacknowledged segment is
    retransmitted once; congestion state is untouched and the native
    RTO takes over.  The Open-state restriction is why TLP cannot fix
    f-double stalls (Sec. 4.1).
    """

    name = "tlp"

    #: Worst-case extra delay a delayed-ACK receiver can add.
    WCDELACK = 0.2
    #: Probe floor: keeps the PTO off the ACK-clock jitter of very
    #: low-latency paths.
    MIN_PTO = 0.1

    def __init__(self) -> None:
        self._probe_outstanding = False

    def reset(self) -> None:
        self._probe_outstanding = False

    def timer_duration(self, sender: "SenderHalf") -> tuple[float, str]:
        rto = sender.rto_estimator.rto
        srtt = sender.rto_estimator.srtt
        if (
            self._probe_outstanding
            or srtt is None
            or sender.ca_state != sender.OPEN
            or sender.scoreboard.empty
        ):
            return rto, RTO
        pto = max(2 * srtt, self.MIN_PTO)
        if sender.scoreboard.packets_out == 1:
            pto += self.WCDELACK
        if pto >= rto:
            return rto, RTO
        return pto, PROBE

    def on_probe_fire(self, sender: "SenderHalf") -> None:
        self._probe_outstanding = True
        tail = sender.scoreboard.tail()
        if tail is not None:
            if sender.recorder is not None:
                sender.trace_event("probe", self.name, seq=tail.seq)
            sender.retransmit_segment(tail, probe=True)

    def on_ack(self, sender: "SenderHalf", new_data_acked: bool) -> None:
        if new_data_acked:
            self._probe_outstanding = False


@REGISTRY.register
class SRTOPolicy(RecoveryPolicy):
    """Smart-RTO (Algorithm 1 of the paper).

    ``set_srto``: the probe timer is armed at ``2 * RTT`` whenever the
    current packet has not already been retransmitted by a native RTO
    and ``packets_out < T1``; otherwise the native RTO is used.

    ``trigger_srto``: retransmit the first unacknowledged packet; if
    ``cwnd > T2`` and the sender is not already in Recovery, halve cwnd;
    enter Recovery; fall back to the native RTO.

    Unlike TLP, the probe is armed in *any* congestion state, which is
    what lets it catch f-double stalls (the retransmission itself being
    lost while the sender sits in Recovery).
    """

    name = "srto"

    #: Worst-case delayed-ACK allowance added when a single segment is
    #: outstanding (same guard as TLP).  Deviation from the paper's
    #: bare ``2 * RTT``: without it the probe races the receiver's
    #: delayed ACK on sub-50 ms paths and fires spuriously.
    WCDELACK = 0.2

    def __init__(self, t1: int = 10, t2: int = 5):
        self.t1 = t1
        self.t2 = t2
        self._probe_outstanding = False

    def reset(self) -> None:
        self._probe_outstanding = False

    def timer_duration(self, sender: "SenderHalf") -> tuple[float, str]:
        rto = sender.rto_estimator.rto
        srtt = sender.rto_estimator.srtt
        head = sender.scoreboard.head()
        if (
            self._probe_outstanding
            or srtt is None
            or head is None
            or head.rto_retrans
            or sender.scoreboard.packets_out >= self.t1
        ):
            return rto, RTO
        probe = max(2 * srtt, TLPPolicy.MIN_PTO)
        if sender.scoreboard.packets_out == 1:
            probe += self.WCDELACK
        if probe >= rto:
            return rto, RTO
        return probe, PROBE

    def on_probe_fire(self, sender: "SenderHalf") -> None:
        self._probe_outstanding = True
        head = sender.scoreboard.head()
        if head is None:
            return
        if sender.recorder is not None:
            # trigger_srto (Algorithm 1): the event that lets a trace
            # distinguish an S-RTO recovery from a native timeout.
            sender.trace_event("probe", self.name, seq=head.seq)
        sender.retransmit_segment(head, probe=True)
        if sender.cwnd > self.t2 and sender.ca_state != sender.RECOVERY:
            sender.cwnd = max(sender.cwnd // 2, 1)
        sender.enter_recovery_from_probe()

    def on_ack(self, sender: "SenderHalf", new_data_acked: bool) -> None:
        if new_data_acked:
            self._probe_outstanding = False


@REGISTRY.register
class TRACKsPolicy(RecoveryPolicy):
    """T-RACKs: timely ACK retransmission for data-center recovery.

    T-RACKs (Ahmed & Boutaba) runs a per-flow last-ACK timer at the
    *vswitch* below the sender: when a flow's highest ACK stays
    unchanged for a few RTTs, the vswitch replays that ACK ``dupthres``
    times, spoofing the duplicate ACKs a shallow-buffered incast drop
    never generated and triggering fast retransmit long before the
    kernel's 200 ms-floored RTO.  This sender-side emulation keeps the
    timer at the policy layer and delivers the spoofed dup-ACK burst
    through :meth:`~repro.tcp.sender.SenderHalf.spoof_dup_acks`, so the
    sender runs its ordinary dup-ACK fast-retransmit path (ssthresh
    cut, Recovery entry) exactly as if the replayed ACKs had arrived
    on the wire.

    Deviations from the hardware deployment, both documented in
    EXPERIMENTS.md: the timer is armed only in Open/Disorder (a 2.6.32
    sender already in Recovery ignores further dup-ACKs, so replaying
    them would be a no-op), and a delayed-ACK allowance is added for
    single-segment flights (the vswitch cannot tell a delayed ACK from
    a drop; without the allowance every delayed ACK would spoof a
    spurious recovery).  On WAN paths ``2 * SRTT`` is no earlier than
    TLP's probe and the forced window cut costs throughput — which is
    why T-RACKs only wins where it was designed to: µs-RTT paths whose
    RTO is two orders of magnitude above the RTT.
    """

    name = "tracks"

    #: Worst-case delayed-ACK allowance (same guard as TLP/S-RTO).
    WCDELACK = 0.2
    #: Timer floor: the vswitch tick granularity.  Far below TLP's
    #: 100 ms MIN_PTO — the entire point of the scheme.
    MIN_TIMER = 0.004

    def __init__(self, timer_scale: float = 2.0):
        if timer_scale <= 0:
            raise ValueError("timer_scale must be positive")
        self.timer_scale = timer_scale
        self._probe_outstanding = False

    def reset(self) -> None:
        self._probe_outstanding = False

    def timer_duration(self, sender: "SenderHalf") -> tuple[float, str]:
        rto = sender.rto_estimator.rto
        srtt = sender.rto_estimator.srtt
        if (
            self._probe_outstanding
            or srtt is None
            or sender.ca_state not in (sender.OPEN, sender.DISORDER)
            or sender.scoreboard.empty
        ):
            return rto, RTO
        timer = max(self.timer_scale * srtt, self.MIN_TIMER)
        if sender.scoreboard.packets_out == 1:
            timer += self.WCDELACK
        if timer >= rto:
            return rto, RTO
        return timer, PROBE

    def on_probe_fire(self, sender: "SenderHalf") -> None:
        self._probe_outstanding = True
        if sender.recorder is not None:
            head = sender.scoreboard.head()
            sender.trace_event(
                "probe", self.name, seq=head.seq if head is not None else 0
            )
        sender.spoof_dup_acks()

    def on_ack(self, sender: "SenderHalf", new_data_acked: bool) -> None:
        if new_data_acked:
            self._probe_outstanding = False


@REGISTRY.register
class MobileLRPolicy(RecoveryPolicy):
    """Mobile-network loss-recovery adaptations (Liu et al.).

    Cellular paths combine high-variance RTT (bufferbloat plus radio
    state promotions) with mostly non-congestive loss, which breaks
    both kernel knobs the 2.6.32 recovery machine relies on: RTTVAR
    inflation pushes the RTO seconds past the actual RTT, and
    DSACK-driven ``dupthres`` growth (reordering looks like spurious
    retransmission) delays fast retransmit further.  Two adaptations,
    mirroring the measurement study's proposals:

    * **Adaptive probe RTO** — arm a probe at
      ``SRTT + max(rttvar4 / 2, MIN_VAR)``: the deviation term tracks
      the path (unlike TLP's flat ``2 * SRTT``) but drops the kernel's
      200 ms variance floor and full 4-deviation margin.  The fire
      retransmits the head and enters Recovery via the S-RTO trigger
      *without* halving cwnd — radio losses are not congestion, so the
      window is left for the rate-halving of Recovery itself.
    * **Dupthresh cap** — reordering-driven ``dupthres`` growth is
      capped at :attr:`max_dupthresh`, keeping fast retransmit
      reachable for the short flows that otherwise stall into RTOs.

    The probe is armed in any congestion state (like S-RTO, unlike
    TLP) but never after the head was already RTO-retransmitted —
    the same safety rule as Algorithm 1.
    """

    name = "mobile"

    #: Worst-case delayed-ACK allowance for single-segment flights.
    WCDELACK = 0.2
    #: Replacement for the kernel's 200 ms variance floor.
    MIN_VAR = 0.05
    #: Ceiling on DSACK-driven dupthres growth (kernel caps at 10).
    DEFAULT_MAX_DUPTHRESH = 5

    def __init__(self, max_dupthresh: int = DEFAULT_MAX_DUPTHRESH):
        if max_dupthresh < 1:
            raise ValueError("max_dupthresh must be >= 1")
        self.max_dupthresh = max_dupthresh
        self._probe_outstanding = False

    def reset(self) -> None:
        self._probe_outstanding = False

    def timer_duration(self, sender: "SenderHalf") -> tuple[float, str]:
        est = sender.rto_estimator
        rto = est.rto
        head = sender.scoreboard.head()
        if (
            self._probe_outstanding
            or est.srtt is None
            or head is None
            or head.rto_retrans
        ):
            return rto, RTO
        probe = est.srtt + max(est.rttvar4 / 2, self.MIN_VAR)
        if sender.scoreboard.packets_out == 1:
            probe += self.WCDELACK
        if probe >= rto:
            return rto, RTO
        return probe, PROBE

    def on_probe_fire(self, sender: "SenderHalf") -> None:
        self._probe_outstanding = True
        head = sender.scoreboard.head()
        if head is None:
            return
        if sender.recorder is not None:
            sender.trace_event("probe", self.name, seq=head.seq)
        sender.retransmit_segment(head, probe=True)
        sender.enter_recovery_from_probe()

    def on_ack(self, sender: "SenderHalf", new_data_acked: bool) -> None:
        if new_data_acked:
            self._probe_outstanding = False
        if sender.dup_thresh > self.max_dupthresh:
            sender.dup_thresh = self.max_dupthresh


def make_policy(name: str, **kwargs) -> RecoveryPolicy:
    """Factory over :data:`REGISTRY`: 'native', 'tlp', 'srto',
    'tracks', 'mobile', plus anything registered since."""
    return REGISTRY.create(name, **kwargs)
