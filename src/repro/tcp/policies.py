"""Loss-recovery policies: native RTO, TLP, and the paper's S-RTO.

The sender owns a single retransmission-timer slot.  Whenever it
(re)arms that timer it asks its policy for a duration and a kind:

* kind ``"rto"`` — the native retransmission timeout; on expiry the
  sender enters the Loss state (Sec. 3.1 of the paper).
* kind ``"probe"`` — a policy-specific probe timer that fires *before*
  the RTO and tries to recover the loss cheaply; the policy's
  :meth:`RecoveryPolicy.on_probe_fire` decides what to transmit and how
  to adjust the congestion state, after which the sender falls back to
  the native RTO.

``NativePolicy`` reproduces the stock 2.6.32 kernel, ``TLPPolicy``
implements Tail Loss Probe (Flach et al., SIGCOMM'13) as the paper's
baseline mitigation, and ``SRTOPolicy`` is Algorithm 1 verbatim.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .sender import SenderHalf

PROBE = "probe"
RTO = "rto"


class RecoveryPolicy:
    """Base policy: pure native-RTO behaviour."""

    name = "native"

    def timer_duration(self, sender: "SenderHalf") -> tuple[float, str]:
        """Duration and kind of the next retransmission timer."""
        return sender.rto_estimator.rto, RTO

    def on_probe_fire(self, sender: "SenderHalf") -> None:
        """Handle a ``probe`` timer expiry (never called for native)."""
        raise NotImplementedError(f"{self.name} policy armed no probe")

    def on_ack(self, sender: "SenderHalf", new_data_acked: bool) -> None:
        """Hook called after the sender processes each ACK."""

    def reset(self) -> None:
        """Forget per-flight state (new connection)."""


class NativePolicy(RecoveryPolicy):
    """Stock Linux 2.6.32: no probe timer at all."""


class TLPPolicy(RecoveryPolicy):
    """Tail Loss Probe.

    Arms a probe timeout of ``2 * SRTT`` (plus a worst-case delayed-ACK
    allowance when only one segment is outstanding) **only in the Open
    state**.  On expiry the highest-sequence unacknowledged segment is
    retransmitted once; congestion state is untouched and the native
    RTO takes over.  The Open-state restriction is why TLP cannot fix
    f-double stalls (Sec. 4.1).
    """

    name = "tlp"

    #: Worst-case extra delay a delayed-ACK receiver can add.
    WCDELACK = 0.2
    #: Probe floor: keeps the PTO off the ACK-clock jitter of very
    #: low-latency paths.
    MIN_PTO = 0.1

    def __init__(self) -> None:
        self._probe_outstanding = False

    def reset(self) -> None:
        self._probe_outstanding = False

    def timer_duration(self, sender: "SenderHalf") -> tuple[float, str]:
        rto = sender.rto_estimator.rto
        srtt = sender.rto_estimator.srtt
        if (
            self._probe_outstanding
            or srtt is None
            or sender.ca_state != sender.OPEN
            or sender.scoreboard.empty
        ):
            return rto, RTO
        pto = max(2 * srtt, self.MIN_PTO)
        if sender.scoreboard.packets_out == 1:
            pto += self.WCDELACK
        if pto >= rto:
            return rto, RTO
        return pto, PROBE

    def on_probe_fire(self, sender: "SenderHalf") -> None:
        self._probe_outstanding = True
        tail = sender.scoreboard.tail()
        if tail is not None:
            if sender.recorder is not None:
                sender.trace_event("probe", self.name, seq=tail.seq)
            sender.retransmit_segment(tail, probe=True)

    def on_ack(self, sender: "SenderHalf", new_data_acked: bool) -> None:
        if new_data_acked:
            self._probe_outstanding = False


class SRTOPolicy(RecoveryPolicy):
    """Smart-RTO (Algorithm 1 of the paper).

    ``set_srto``: the probe timer is armed at ``2 * RTT`` whenever the
    current packet has not already been retransmitted by a native RTO
    and ``packets_out < T1``; otherwise the native RTO is used.

    ``trigger_srto``: retransmit the first unacknowledged packet; if
    ``cwnd > T2`` and the sender is not already in Recovery, halve cwnd;
    enter Recovery; fall back to the native RTO.

    Unlike TLP, the probe is armed in *any* congestion state, which is
    what lets it catch f-double stalls (the retransmission itself being
    lost while the sender sits in Recovery).
    """

    name = "srto"

    #: Worst-case delayed-ACK allowance added when a single segment is
    #: outstanding (same guard as TLP).  Deviation from the paper's
    #: bare ``2 * RTT``: without it the probe races the receiver's
    #: delayed ACK on sub-50 ms paths and fires spuriously.
    WCDELACK = 0.2

    def __init__(self, t1: int = 10, t2: int = 5):
        self.t1 = t1
        self.t2 = t2
        self._probe_outstanding = False

    def reset(self) -> None:
        self._probe_outstanding = False

    def timer_duration(self, sender: "SenderHalf") -> tuple[float, str]:
        rto = sender.rto_estimator.rto
        srtt = sender.rto_estimator.srtt
        head = sender.scoreboard.head()
        if (
            self._probe_outstanding
            or srtt is None
            or head is None
            or head.rto_retrans
            or sender.scoreboard.packets_out >= self.t1
        ):
            return rto, RTO
        probe = max(2 * srtt, TLPPolicy.MIN_PTO)
        if sender.scoreboard.packets_out == 1:
            probe += self.WCDELACK
        if probe >= rto:
            return rto, RTO
        return probe, PROBE

    def on_probe_fire(self, sender: "SenderHalf") -> None:
        self._probe_outstanding = True
        head = sender.scoreboard.head()
        if head is None:
            return
        if sender.recorder is not None:
            # trigger_srto (Algorithm 1): the event that lets a trace
            # distinguish an S-RTO recovery from a native timeout.
            sender.trace_event("probe", self.name, seq=head.seq)
        sender.retransmit_segment(head, probe=True)
        if sender.cwnd > self.t2 and sender.ca_state != sender.RECOVERY:
            sender.cwnd = max(sender.cwnd // 2, 1)
        sender.enter_recovery_from_probe()

    def on_ack(self, sender: "SenderHalf", new_data_acked: bool) -> None:
        if new_data_acked:
            self._probe_outstanding = False


def make_policy(name: str, **kwargs) -> RecoveryPolicy:
    """Factory keyed by policy name: 'native', 'tlp' or 'srto'."""
    policies = {
        "native": NativePolicy,
        "tlp": TLPPolicy,
        "srto": SRTOPolicy,
    }
    try:
        return policies[name](**kwargs)
    except KeyError:
        raise ValueError(
            f"unknown recovery policy {name!r}; choose from {sorted(policies)}"
        ) from None
