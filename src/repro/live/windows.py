"""Rolling time-window aggregation of flow analyses.

A :class:`WindowStore` buckets completed flows into fixed-length
*trace-time* windows (keyed by each flow's last packet timestamp) and
keeps a bounded number of recent windows; older windows are folded
into one cumulative "expired" summary, so memory is O(retention), not
O(run length).

Determinism is a design requirement, not an accident: the daemon's
final flushed report must be byte-identical to a one-shot batch run
over the same packets, and the two feed flows in different orders
(stream-completion order vs. batch order).  Every aggregate here is
therefore order-independent:

* all durations accumulate as **integer nanoseconds** (exact,
  commutative, associative — no float-summation order sensitivity);
* counts are plain integers;
* the top-K stalled flows are selected by a total order
  ``(-stalled_ns, flow, first_ns)``, so any feeding order picks the
  same K;
* window membership depends only on packet timestamps, and expiry
  depends only on the highest bucket seen — which is the same for any
  permutation of the same flows.

Shares and ratios are computed from the integers at render time, so
:meth:`WindowStore.report` is a pure function of the multiset of
flows fed in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.flow_analyzer import FlowAnalysis
from ..core.stalls import RetxCause, StallCause
from ..errors import SkippedFlow
from ..packet.headers import ip_to_str

#: Checkpoint schema version (bump on incompatible state changes).
STATE_VERSION = 1


def _ns(seconds: float) -> int:
    """Exact-summation representation: seconds -> integer nanoseconds."""
    return round(seconds * 1_000_000_000)


def _seconds(ns: int) -> float:
    return ns / 1_000_000_000


def flow_label(key) -> str:
    """Human-readable flow identity: ``ip:port<->ip:port``."""
    try:
        return (
            f"{ip_to_str(key.ip_a)}:{key.port_a}"
            f"<->{ip_to_str(key.ip_b)}:{key.port_b}"
        )
    except AttributeError:
        return str(key)


@dataclass
class WindowSummary:
    """Order-independent aggregate of the flows of one time window.

    ``bucket`` is the window index (``floor(last_time / window)``);
    a ``bucket`` of ``None`` marks a cumulative summary (expired
    windows, totals).  All ``*_ns`` fields are integer nanoseconds.
    """

    bucket: int | None = None
    window_seconds: float = 60.0
    top_k: int = 10

    flows: int = 0
    flows_with_stalls: int = 0
    stalls: int = 0
    stalled_ns: int = 0
    duration_ns: int = 0
    bytes_out: int = 0
    data_packets: int = 0
    retransmissions: int = 0
    timeouts: int = 0
    skipped: int = 0
    #: StallCause.value -> [count, total_ns]
    causes: dict[str, list[int]] = field(default_factory=dict)
    #: RetxCause.value -> [count, total_ns]
    retx_causes: dict[str, list[int]] = field(default_factory=dict)
    #: Top-K most-stalled flows: [stalled_ns, label, first_ns, nstalls]
    top: list[list] = field(default_factory=list)

    # -- time span -----------------------------------------------------
    @property
    def start(self) -> float | None:
        if self.bucket is None:
            return None
        return self.bucket * self.window_seconds

    @property
    def end(self) -> float | None:
        if self.bucket is None:
            return None
        return (self.bucket + 1) * self.window_seconds

    # -- accumulation --------------------------------------------------
    def add(self, analysis: FlowAnalysis) -> None:
        """Fold one completed flow into this window."""
        self.flows += 1
        if analysis.stalls:
            self.flows_with_stalls += 1
        self.stalls += len(analysis.stalls)
        self.duration_ns += _ns(analysis.duration)
        self.bytes_out += analysis.bytes_out
        self.data_packets += analysis.data_packets
        self.retransmissions += analysis.retransmissions
        self.timeouts += analysis.timeouts
        stalled_ns = 0
        for stall in analysis.stalls:
            dur = _ns(stall.duration)
            stalled_ns += dur
            cell = self.causes.setdefault(stall.cause.value, [0, 0])
            cell[0] += 1
            cell[1] += dur
            if stall.cause is StallCause.RETRANSMISSION:
                name = (
                    stall.retx_cause.value
                    if stall.retx_cause is not None
                    else RetxCause.UNDETERMINED.value
                )
                cell = self.retx_causes.setdefault(name, [0, 0])
                cell[0] += 1
                cell[1] += dur
        self.stalled_ns += stalled_ns
        if stalled_ns > 0 and self.top_k > 0:
            self._push_top(
                [
                    stalled_ns,
                    flow_label(analysis.flow.key),
                    _ns(analysis.flow.first_time),
                    len(analysis.stalls),
                ]
            )

    def add_skip(self, skipped: SkippedFlow) -> None:
        """Account one quarantined flow (coverage denominator)."""
        self.skipped += 1

    def _push_top(self, entry: list) -> None:
        self.top.append(entry)
        # Total order: most stalled first, then label, then start time.
        self.top.sort(key=lambda e: (-e[0], e[1], e[2]))
        del self.top[self.top_k :]

    # -- combination ---------------------------------------------------
    def merge(self, other: "WindowSummary") -> "WindowSummary":
        """Fold ``other`` in (in place).  Exact: integer sums only."""
        self.flows += other.flows
        self.flows_with_stalls += other.flows_with_stalls
        self.stalls += other.stalls
        self.stalled_ns += other.stalled_ns
        self.duration_ns += other.duration_ns
        self.bytes_out += other.bytes_out
        self.data_packets += other.data_packets
        self.retransmissions += other.retransmissions
        self.timeouts += other.timeouts
        self.skipped += other.skipped
        for name, (count, ns) in other.causes.items():
            cell = self.causes.setdefault(name, [0, 0])
            cell[0] += count
            cell[1] += ns
        for name, (count, ns) in other.retx_causes.items():
            cell = self.retx_causes.setdefault(name, [0, 0])
            cell[0] += count
            cell[1] += ns
        for entry in other.top:
            self._push_top(list(entry))
        return self

    # -- derived metrics -----------------------------------------------
    def coverage(self) -> float:
        total = self.flows + self.skipped
        return self.flows / total if total else 1.0

    def stall_ratio(self) -> float:
        if self.duration_ns <= 0:
            return 0.0
        return min(1.0, self.stalled_ns / self.duration_ns)

    def metric(self, name: str) -> float:
        """Resolve an alert-rule metric selector against this summary.

        Plain selectors: ``flows``, ``stalls``, ``skipped``,
        ``flows_with_stalls``, ``coverage``, ``stall_ratio``,
        ``stall_time`` (seconds), ``loss``.  Qualified selectors take a
        cause name after a colon: ``cause_share:<stall-cause>``,
        ``cause_time_share:<stall-cause>``, ``retx_share:<retx-cause>``,
        ``retx_time_share:<retx-cause>``.
        """
        if ":" in name:
            kind, _, cause = name.partition(":")
            table = (
                self.causes
                if kind in ("cause_share", "cause_time_share")
                else self.retx_causes
                if kind in ("retx_share", "retx_time_share")
                else None
            )
            if table is None:
                raise KeyError(f"unknown metric {name!r}")
            count, ns = table.get(cause, (0, 0))
            if kind.endswith("time_share"):
                total = sum(cell[1] for cell in table.values())
                return ns / total if total else 0.0
            total = sum(cell[0] for cell in table.values())
            return count / total if total else 0.0
        plain = {
            "flows": float(self.flows),
            "stalls": float(self.stalls),
            "skipped": float(self.skipped),
            "flows_with_stalls": float(self.flows_with_stalls),
            "coverage": self.coverage(),
            "stall_ratio": self.stall_ratio(),
            "stall_time": _seconds(self.stalled_ns),
            "loss": (
                self.retransmissions / self.data_packets
                if self.data_packets
                else 0.0
            ),
        }
        try:
            return plain[name]
        except KeyError:
            raise KeyError(f"unknown metric {name!r}") from None

    # -- rendering / state ---------------------------------------------
    def _share_table(self, table: dict[str, list[int]]) -> dict:
        total_count = sum(cell[0] for cell in table.values())
        total_ns = sum(cell[1] for cell in table.values())
        return {
            name: {
                "count": count,
                "time": _seconds(ns),
                "volume_share": count / total_count if total_count else 0.0,
                "time_share": ns / total_ns if total_ns else 0.0,
            }
            for name, (count, ns) in sorted(table.items())
        }

    def to_dict(self) -> dict:
        """JSON-ready rendering (the /report.json window shape)."""
        return {
            "bucket": self.bucket,
            "start": self.start,
            "end": self.end,
            "flows": self.flows,
            "flows_with_stalls": self.flows_with_stalls,
            "skipped": self.skipped,
            "coverage": self.coverage(),
            "stalls": self.stalls,
            "stall_time": _seconds(self.stalled_ns),
            "stall_ratio": self.stall_ratio(),
            "transmission_time": _seconds(self.duration_ns),
            "bytes_out": self.bytes_out,
            "data_packets": self.data_packets,
            "retransmissions": self.retransmissions,
            "timeouts": self.timeouts,
            "causes": self._share_table(self.causes),
            "retransmission_causes": self._share_table(self.retx_causes),
            "top_stalled_flows": [
                {
                    "flow": label,
                    "stalled_time": _seconds(ns),
                    "first_time": _seconds(first_ns),
                    "stalls": nstalls,
                }
                for ns, label, first_ns, nstalls in self.top
            ],
        }

    def to_state(self) -> dict:
        """Exact checkpoint state (integer fields preserved)."""
        return {
            "bucket": self.bucket,
            "window_seconds": self.window_seconds,
            "top_k": self.top_k,
            "flows": self.flows,
            "flows_with_stalls": self.flows_with_stalls,
            "stalls": self.stalls,
            "stalled_ns": self.stalled_ns,
            "duration_ns": self.duration_ns,
            "bytes_out": self.bytes_out,
            "data_packets": self.data_packets,
            "retransmissions": self.retransmissions,
            "timeouts": self.timeouts,
            "skipped": self.skipped,
            "causes": {k: list(v) for k, v in sorted(self.causes.items())},
            "retx_causes": {
                k: list(v) for k, v in sorted(self.retx_causes.items())
            },
            "top": [list(e) for e in self.top],
        }

    @classmethod
    def from_state(cls, state: dict) -> "WindowSummary":
        summary = cls(
            bucket=state["bucket"],
            window_seconds=state["window_seconds"],
            top_k=state["top_k"],
        )
        for name in (
            "flows", "flows_with_stalls", "stalls", "stalled_ns",
            "duration_ns", "bytes_out", "data_packets",
            "retransmissions", "timeouts", "skipped",
        ):
            setattr(summary, name, state[name])
        summary.causes = {k: list(v) for k, v in state["causes"].items()}
        summary.retx_causes = {
            k: list(v) for k, v in state["retx_causes"].items()
        }
        summary.top = [list(e) for e in state["top"]]
        return summary


class WindowStore:
    """Bounded collection of rolling windows plus a cumulative tail.

    Flows land in the window of their *last packet's trace time*.  The
    newest ``retention`` windows are kept individually; anything older
    (relative to the highest bucket seen) is folded into one
    ``expired`` summary, so the all-time total —
    ``expired + live windows`` — is always available and exact.
    """

    def __init__(
        self,
        window_seconds: float = 60.0,
        retention: int = 120,
        top_k: int = 10,
        service: str = "live",
    ):
        if window_seconds <= 0:
            raise ValueError("window_seconds must be > 0")
        if retention < 1:
            raise ValueError("retention must be >= 1")
        self.window_seconds = float(window_seconds)
        self.retention = int(retention)
        self.top_k = int(top_k)
        self.service = service
        self._windows: dict[int, WindowSummary] = {}
        #: Optional callback invoked with each :class:`WindowSummary`
        #: as it expires (i.e. when the window is final — no flow can
        #: land in it anymore).  Deliberately a plain attribute, not
        #: constructor or checkpoint state: the daemon attaches it
        #: after construction *and* after :meth:`restore`, and the
        #: callback never affects the deterministic report.
        self.on_expire = None
        self._expired = self._cumulative()
        #: Buckets whose data has been folded into the expired summary.
        #: A *set* so the count is order-independent: a straggler folded
        #: directly into the tail marks its bucket exactly as if its
        #: window had existed and expired.
        self._expired_buckets: set[int] = set()
        self._max_bucket: int | None = None

    @property
    def expired_windows(self) -> int:
        """Distinct window buckets folded into the cumulative tail."""
        return len(self._expired_buckets)

    def _cumulative(self) -> WindowSummary:
        return WindowSummary(
            bucket=None,
            window_seconds=self.window_seconds,
            top_k=self.top_k,
        )

    # -- feeding -------------------------------------------------------
    def bucket_of(self, trace_time: float) -> int:
        return math.floor(trace_time / self.window_seconds)

    def _target(self, bucket: int) -> WindowSummary:
        """The summary a flow of ``bucket`` folds into, creating or
        expiring windows as needed."""
        if self._max_bucket is None or bucket > self._max_bucket:
            self._max_bucket = bucket
            self._expire()
        if self._max_bucket - bucket >= self.retention:
            # Straggler beyond the horizon: same place its window would
            # have been folded into had it existed.
            self._expired_buckets.add(bucket)
            return self._expired
        window = self._windows.get(bucket)
        if window is None:
            window = WindowSummary(
                bucket=bucket,
                window_seconds=self.window_seconds,
                top_k=self.top_k,
            )
            self._windows[bucket] = window
        return window

    def add(self, analysis: FlowAnalysis) -> None:
        """Fold one completed flow analysis into its window."""
        self._target(self.bucket_of(analysis.flow.last_time)).add(analysis)

    def add_skip(self, skipped: SkippedFlow) -> None:
        """Fold one quarantined flow into its window (by last packet
        time when known, else the newest window seen)."""
        if skipped.last_time is not None:
            bucket = self.bucket_of(skipped.last_time)
        else:
            bucket = self._max_bucket if self._max_bucket is not None else 0
        self._target(bucket).add_skip(skipped)

    def _expire(self) -> None:
        horizon = self._max_bucket - self.retention
        for bucket in sorted(self._windows):
            if bucket <= horizon:
                window = self._windows.pop(bucket)
                if self.on_expire is not None:
                    self.on_expire(window)
                self._expired.merge(window)
                self._expired_buckets.add(bucket)

    # -- queries -------------------------------------------------------
    @property
    def max_bucket(self) -> int | None:
        return self._max_bucket

    def windows(self) -> list[WindowSummary]:
        """Live (retained) windows, oldest first."""
        return [self._windows[b] for b in sorted(self._windows)]

    def last(self, count: int = 1) -> WindowSummary:
        """Merged summary of the newest ``count`` live windows."""
        merged = self._cumulative()
        for window in self.windows()[-count:]:
            merged.merge(window)
        return merged

    def total(self) -> WindowSummary:
        """All-time summary: expired tail plus every live window."""
        merged = self._cumulative()
        merged.merge(self._expired)
        for window in self.windows():
            merged.merge(window)
        return merged

    def report(self) -> dict:
        """The pure trace-state report (deterministic for a given
        multiset of flows; no wall-clock fields)."""
        return {
            "service": self.service,
            "window_seconds": self.window_seconds,
            "retention": self.retention,
            "top_k": self.top_k,
            "expired_windows": self.expired_windows,
            "windows": [w.to_dict() for w in self.windows()],
            "expired": self._expired.to_dict(),
            "totals": self.total().to_dict(),
        }

    def to_registry(self, registry, prefix: str = "repro_live_") -> None:
        """Fold live gauges/counters into a
        :class:`repro.obs.metrics.MetricsRegistry` (the /metrics and
        ``--metrics-out`` surface share these names)."""
        total = self.total()
        registry.counter(
            prefix + "flows_total", "Flows aggregated into windows"
        ).inc(total.flows)
        registry.counter(
            prefix + "flows_skipped_total",
            "Quarantined flows aggregated into windows",
        ).inc(total.skipped)
        registry.counter(
            prefix + "stalls_total", "Stalls aggregated into windows"
        ).inc(total.stalls)
        registry.counter(
            prefix + "stalled_seconds_total", "Total stalled time"
        ).inc(_seconds(total.stalled_ns))
        registry.counter(
            prefix + "windows_expired_total",
            "Windows folded into the cumulative tail",
        ).inc(self.expired_windows)
        registry.gauge(
            prefix + "windows_active", "Windows currently retained"
        ).set(float(len(self._windows)))
        registry.gauge(
            prefix + "coverage", "All-time analyzed/total flow fraction"
        ).set(total.coverage())
        last = self.last(1)
        registry.gauge(
            prefix + "last_window_stall_ratio",
            "Stall ratio of the newest window",
        ).set(last.stall_ratio())
        registry.gauge(
            prefix + "last_window_flows", "Flows in the newest window"
        ).set(float(last.flows))

    # -- checkpoint ----------------------------------------------------
    def checkpoint(self) -> dict:
        """Exact, JSON-serializable state; round-trips through
        :meth:`restore` byte-identically."""
        return {
            "version": STATE_VERSION,
            "window_seconds": self.window_seconds,
            "retention": self.retention,
            "top_k": self.top_k,
            "service": self.service,
            "max_bucket": self._max_bucket,
            "expired_buckets": sorted(self._expired_buckets),
            "expired": self._expired.to_state(),
            "windows": [
                self._windows[b].to_state() for b in sorted(self._windows)
            ],
        }

    @classmethod
    def restore(cls, state: dict) -> "WindowStore":
        if state.get("version") != STATE_VERSION:
            raise ValueError(
                f"unsupported window-state version {state.get('version')!r}"
            )
        store = cls(
            window_seconds=state["window_seconds"],
            retention=state["retention"],
            top_k=state["top_k"],
            service=state["service"],
        )
        store._max_bucket = state["max_bucket"]
        store._expired_buckets = set(state["expired_buckets"])
        store._expired = WindowSummary.from_state(state["expired"])
        for window_state in state["windows"]:
            summary = WindowSummary.from_state(window_state)
            store._windows[summary.bucket] = summary
        return store
