"""Command-line interface: ``repro-paper watch <source>``.

Runs the continuous stall-monitoring daemon over a growing pcap file,
a rotating-capture directory, or stdin (``-``), with rolling windows,
alert rules, an optional HTTP endpoint, and checkpoint/resume.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys

from .. import cli_options
from ..config import AnalysisConfig, RunConfig
from ..errors import ErrorBudget, ReproError
from ..packet.flow import server_by_ip, server_by_port
from ..packet.headers import ip_from_str
from .alerts import AlertRule, JsonlSink
from .daemon import LiveDaemon, open_source


def _alert_rule(spec: str) -> AlertRule:
    try:
        return AlertRule.parse(spec)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


# The [HOST:]PORT parser moved to cli_options.endpoint so every CLI
# (--http here, --listen/--connect on the cluster commands) shares it;
# this alias keeps the old import path working.
_endpoint = cli_options.endpoint


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-paper watch",
        description=(
            "Continuously monitor TCP stalls in a live capture: a "
            "growing pcap file, a rotating-capture directory, or "
            "stdin ('-')."
        ),
    )
    from ..cli import version_string

    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {version_string()}",
    )
    parser.add_argument(
        "source",
        help="pcap file to tail, directory of rotating pcaps, or '-'",
    )
    parser.add_argument(
        "--pattern",
        default="*.pcap",
        help="glob for rotating-directory sources (default '*.pcap')",
    )
    parser.add_argument(
        "--window",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="rolling window length in trace seconds (default 60)",
    )
    parser.add_argument(
        "--retention",
        type=int,
        default=120,
        metavar="N",
        help=(
            "windows kept individually; older ones fold into one "
            "cumulative summary (default 120)"
        ),
    )
    parser.add_argument(
        "--top-k",
        type=int,
        default=10,
        metavar="K",
        help="most-stalled flows tracked per window (default 10)",
    )
    parser.add_argument(
        "--service",
        default="live",
        help="service label on reports (default 'live')",
    )
    cli_options.add_server_endpoint(parser)
    parser.add_argument(
        "--tau",
        type=float,
        default=2.0,
        help="stall threshold multiplier on SRTT (default 2)",
    )
    cli_options.add_errors(
        parser,
        default=ErrorBudget.lenient(),
        help=(
            "error budget for damaged input: 'strict', 'lenient', "
            "'budget:N', 'budget:X%%' (default lenient — a monitor "
            "should survive dirty captures)"
        ),
    )
    cli_options.add_workers(
        parser,
        default=1,
        help="analysis worker processes (0 = one per core; default 1)",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=60.0,
        help=(
            "evict flows idle for this many trace-seconds (default 60)"
        ),
    )
    parser.add_argument(
        "--alert",
        dest="alerts",
        type=_alert_rule,
        action="append",
        default=[],
        metavar="RULE",
        help=(
            "alert rule '[name:] METRIC OP VALUE [over N] [clear V] "
            "[cooldown S]', e.g. 'surge: stall_ratio > 0.25 over 5 "
            "clear 0.15 cooldown 300'; repeatable"
        ),
    )
    parser.add_argument(
        "--alert-log",
        metavar="PATH",
        help="append alert events to this JSONL file",
    )
    parser.add_argument(
        "--alert-log-max-bytes",
        type=int,
        default=16 * 1024 * 1024,
        metavar="BYTES",
        help=(
            "rotate the alert log past this size, keeping "
            "--alert-log-backups generations (0 = unbounded; "
            "default 16 MiB)"
        ),
    )
    parser.add_argument(
        "--alert-log-backups",
        type=int,
        default=3,
        metavar="N",
        help="rotated alert-log generations to keep (default 3)",
    )
    cli_options.add_results_store(
        parser,
        help=(
            "append longitudinal result records (one per completed "
            "window, plus totals at exit) to this JSONL store; also "
            "enables /dashboard, /runs.json, /trends.json content"
        ),
    )
    parser.add_argument(
        "--http",
        type=_endpoint,
        metavar="[HOST:]PORT",
        help=(
            "serve /healthz, /metrics, /report.json, /dashboard, "
            "/runs.json, /trends.json here (port 0 = ephemeral; the "
            "bound address is logged)"
        ),
    )
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="persist source offsets + window state to this file",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="seconds between periodic checkpoints (default 30)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint if it exists",
    )
    parser.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="sleep between polls when the source is idle (default 0.5)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help=(
            "drain everything currently available, flush the report, "
            "and exit (no waiting for growth)"
        ),
    )
    parser.add_argument(
        "--report-out",
        metavar="PATH",
        help="write the final flushed report (JSON) here on exit",
    )
    cli_options.add_metrics_out(
        parser,
        help=(
            "write final metrics to PREFIX.json and PREFIX.prom (the "
            "same serialization /metrics serves)"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the final flushed report to stdout as JSON",
    )
    parser.add_argument(
        "--log-level",
        default="info",
        choices=("debug", "info", "warning", "error"),
        help="daemon log verbosity on stderr (default info)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    logging.basicConfig(
        stream=sys.stderr,
        level=getattr(logging, args.log_level.upper()),
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    server_side = None
    if args.server_ip:
        server_side = server_by_ip(ip_from_str(args.server_ip))
    elif args.server_port:
        server_side = server_by_port(args.server_port)

    sink = (
        JsonlSink(
            args.alert_log,
            max_bytes=args.alert_log_max_bytes,
            backups=args.alert_log_backups,
        )
        if args.alert_log
        else None
    )
    results_store = None
    host, port = args.http if args.http else (None, None)
    try:
        if args.results_store:
            from ..results.store import ResultsStore

            results_store = ResultsStore(args.results_store)
        source = open_source(
            args.source, pattern=args.pattern, errors=args.errors
        )
        daemon = LiveDaemon(
            source,
            window_seconds=args.window,
            retention=args.retention,
            top_k=args.top_k,
            service=args.service,
            analysis=AnalysisConfig(tau=args.tau, errors=args.errors),
            run=RunConfig(
                workers=args.workers, idle_timeout=args.idle_timeout
            ),
            server_side=server_side,
            rules=args.alerts,
            alert_sink=sink,
            http_host=host,
            http_port=port,
            checkpoint_path=args.checkpoint,
            checkpoint_interval=args.checkpoint_interval,
            poll_interval=args.poll_interval,
            once=args.once,
            resume=args.resume,
            results_store=results_store,
        )
    except (OSError, ValueError) as exc:
        print(f"watch: {exc}", file=sys.stderr)
        return 2

    daemon.install_signal_handlers()
    try:
        report = daemon.run()
    except ReproError as exc:
        print(
            f"watch: {type(exc).__name__}: {exc} "
            f"(budget: {args.errors.describe()})",
            file=sys.stderr,
        )
        return 2
    finally:
        if sink is not None:
            sink.close()
        if results_store is not None:
            results_store.close()

    if args.report_out:
        from pathlib import Path

        out = Path(args.report_out)
        if out.parent != Path("."):
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, sort_keys=True, indent=2))
        print(f"wrote final report to {out}", file=sys.stderr)
    if args.metrics_out:
        from ..obs.metrics import write_registry

        json_path, prom_path = write_registry(
            daemon.metrics_registry(), args.metrics_out
        )
        print(
            f"wrote metrics to {json_path} and {prom_path}",
            file=sys.stderr,
        )
    if args.json:
        json.dump(report, sys.stdout, sort_keys=True, indent=2)
        print()
    else:
        totals = report["windows"]["totals"]
        runtime = report["runtime"]
        print(
            f"watch: {runtime['records_in']} records, "
            f"{totals['flows']} flows "
            f"({totals['skipped']} quarantined), "
            f"{totals['stalls']} stalls over "
            f"{len(report['windows']['windows'])} live windows "
            f"(+{report['windows']['expired_windows']} expired)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
