"""Declarative threshold alerting over rolling windows.

An :class:`AlertRule` is a comparison against a window metric (the
selectors of :meth:`repro.live.windows.WindowSummary.metric`),
evaluated over the newest ``over`` windows merged.  The engine adds
the two stabilizers every production alert needs:

* **hysteresis** — once firing, a rule resolves only when the metric
  crosses back past its ``clear`` threshold (default: the firing
  threshold), so values oscillating around the line don't flap;
* **cooldown** — after resolving, a rule may not re-fire within
  ``cooldown`` seconds of *trace time* (wall clocks would make alert
  streams non-reproducible across replays of the same capture).

Rules parse from a one-line spec (CLI ``--alert``, one per flag)::

    [name:] METRIC OP VALUE [over N] [clear V] [cooldown S]

    stall_surge: stall_ratio > 0.25 over 5 clear 0.15 cooldown 300
    coverage < 0.9
    tail_share: retx_time_share:tail_retrans > 0.3

``METRIC`` may itself contain a colon (``cause_share:client_idle``);
the optional leading name is recognized by its trailing colon *token*
(``name:`` followed by whitespace), so the two never collide.

Events are plain dicts, emitted to an optional sink (any callable;
:class:`JsonlSink` appends one JSON object per line) and returned from
:meth:`AlertEngine.evaluate` for the daemon to log.  Engine state
(active flags, last-fired times) checkpoints alongside the window
store, so resume does not re-fire alerts that were already active.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .windows import WindowStore, WindowSummary

_OPS = {
    ">": lambda value, threshold: value > threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    "<=": lambda value, threshold: value <= threshold,
}


@dataclass(frozen=True)
class AlertRule:
    """One threshold rule: ``metric OP threshold`` over recent windows."""

    name: str
    metric: str
    op: str
    threshold: float
    #: Evaluate over the newest N windows merged into one summary.
    over: int = 1
    #: Hysteresis: resolve only once the metric crosses back past this
    #: (defaults to the firing threshold — no hysteresis band).
    clear: float | None = None
    #: Minimum trace-time seconds between a resolve and the next fire.
    cooldown: float = 0.0

    def __post_init__(self):
        if self.op not in _OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")
        if self.over < 1:
            raise ValueError("'over' must be >= 1 window")
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        # Validates the selector shape: unknown selectors raise KeyError
        # on an empty summary just as they would on a live one.
        WindowSummary().metric(self.metric)

    @property
    def clear_threshold(self) -> float:
        return self.threshold if self.clear is None else self.clear

    def breaches(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)

    def cleared(self, value: float) -> bool:
        """Whether ``value`` is back past the clear threshold (on the
        non-firing side, strictly outside the hysteresis band)."""
        return not _OPS[self.op](value, self.clear_threshold)

    def describe(self) -> str:
        parts = [f"{self.name}: {self.metric} {self.op} {self.threshold:g}"]
        if self.over != 1:
            parts.append(f"over {self.over}")
        if self.clear is not None:
            parts.append(f"clear {self.clear:g}")
        if self.cooldown:
            parts.append(f"cooldown {self.cooldown:g}")
        return " ".join(parts)

    @classmethod
    def parse(cls, spec: str) -> "AlertRule":
        """Parse the one-line rule grammar (see module docstring)."""
        tokens = spec.split()
        if not tokens:
            raise ValueError("empty alert rule")
        name = None
        if tokens[0].endswith(":") and len(tokens[0]) > 1:
            name = tokens[0][:-1]
            tokens = tokens[1:]
        if len(tokens) < 3:
            raise ValueError(
                f"bad alert rule {spec!r}: expected "
                "'[name:] METRIC OP VALUE [over N] [clear V] [cooldown S]'"
            )
        metric, op = tokens[0], tokens[1]
        try:
            threshold = float(tokens[2])
        except ValueError:
            raise ValueError(
                f"bad alert threshold {tokens[2]!r} in {spec!r}"
            ) from None
        options: dict[str, float] = {}
        rest = tokens[3:]
        if len(rest) % 2:
            raise ValueError(f"dangling option token in alert rule {spec!r}")
        for key, raw in zip(rest[::2], rest[1::2]):
            if key not in ("over", "clear", "cooldown"):
                raise ValueError(
                    f"unknown alert option {key!r} in {spec!r}"
                )
            if key in options:
                raise ValueError(f"duplicate option {key!r} in {spec!r}")
            try:
                options[key] = float(raw)
            except ValueError:
                raise ValueError(
                    f"bad value {raw!r} for {key!r} in {spec!r}"
                ) from None
        try:
            return cls(
                name=name if name is not None else metric,
                metric=metric,
                op=op,
                threshold=threshold,
                over=int(options.get("over", 1)),
                clear=options.get("clear"),
                cooldown=options.get("cooldown", 0.0),
            )
        except (KeyError, ValueError) as exc:
            raise ValueError(f"bad alert rule {spec!r}: {exc}") from None


class JsonlSink:
    """Append alert events to a file, one JSON object per line.

    Size-bounded: once the file would exceed ``max_bytes`` the sink
    rotates it (``alerts.jsonl`` -> ``alerts.jsonl.1`` -> ``.2`` ...,
    keeping ``backups`` generations), so a long-lived daemon's alert
    log cannot grow without bound.  ``max_bytes=0`` disables rotation.
    Rotation happens *between* events — every line is always whole.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        max_bytes: int = 16 * 1024 * 1024,
        backups: int = 3,
    ):
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        if backups < 1:
            raise ValueError("backups must be >= 1")
        self.path = Path(path)
        self.max_bytes = int(max_bytes)
        self.backups = int(backups)
        self.events_written = 0
        self.rotations = 0
        self._file = self.path.open("a", encoding="utf-8")
        # Track size ourselves: tell() on append handles is unreliable
        # before the first write on some platforms.
        self._size = (
            self.path.stat().st_size if self.path.exists() else 0
        )

    def __call__(self, event: dict) -> None:
        line = json.dumps(event, sort_keys=True) + "\n"
        nbytes = len(line.encode("utf-8"))
        if (
            self.max_bytes
            and self._size > 0
            and self._size + nbytes > self.max_bytes
        ):
            self._rotate()
        self._file.write(line)
        self._file.flush()
        self._size += nbytes
        self.events_written += 1

    def _rotate(self) -> None:
        self._file.close()
        oldest = self.path.with_name(
            f"{self.path.name}.{self.backups}"
        )
        oldest.unlink(missing_ok=True)
        for index in range(self.backups - 1, 0, -1):
            src = self.path.with_name(f"{self.path.name}.{index}")
            if src.exists():
                src.rename(
                    self.path.with_name(f"{self.path.name}.{index + 1}")
                )
        self.path.rename(self.path.with_name(f"{self.path.name}.1"))
        self._file = self.path.open("a", encoding="utf-8")
        self._size = 0
        self.rotations += 1

    def close(self) -> None:
        self._file.close()


class AlertEngine:
    """Evaluate rules against a window store, tracking firing state."""

    def __init__(self, rules, sink=None):
        self.rules = list(rules)
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate alert rule names in {names}")
        self.sink = sink
        self._state = {
            rule.name: {"active": False, "last_fired": None}
            for rule in self.rules
        }
        self.events_emitted = 0

    def evaluate(self, store: WindowStore) -> list[dict]:
        """Run every rule against the store's newest windows; emit and
        return state-change events (firing/resolved), in rule order."""
        if store.max_bucket is None:
            return []
        # Trace clock: the end of the newest window seen so far.
        now = (store.max_bucket + 1) * store.window_seconds
        events: list[dict] = []
        for rule in self.rules:
            value = store.last(rule.over).metric(rule.metric)
            state = self._state[rule.name]
            if state["active"]:
                if rule.cleared(value):
                    state["active"] = False
                    events.append(self._event(rule, "resolved", value, now))
            elif rule.breaches(value):
                cooled = (
                    state["last_fired"] is None
                    or now - state["last_fired"] >= rule.cooldown
                )
                if cooled:
                    state["active"] = True
                    state["last_fired"] = now
                    events.append(self._event(rule, "firing", value, now))
        for event in events:
            self.events_emitted += 1
            if self.sink is not None:
                self.sink(event)
        return events

    def _event(
        self, rule: AlertRule, state: str, value: float, now: float
    ) -> dict:
        return {
            "alert": rule.name,
            "state": state,
            "metric": rule.metric,
            "value": value,
            "threshold": rule.threshold,
            "clear": rule.clear_threshold,
            "over": rule.over,
            "trace_time": now,
            "rule": rule.describe(),
        }

    def active(self) -> list[str]:
        """Names of currently-firing rules, in rule order."""
        return [
            rule.name
            for rule in self.rules
            if self._state[rule.name]["active"]
        ]

    # -- checkpoint ----------------------------------------------------
    def checkpoint(self) -> dict:
        return {
            name: dict(state) for name, state in sorted(self._state.items())
        }

    def restore(self, state: dict) -> None:
        """Adopt checkpointed firing state for rules that still exist
        (rules added since the checkpoint start inactive)."""
        for name, rule_state in state.items():
            if name in self._state:
                self._state[name] = {
                    "active": bool(rule_state["active"]),
                    "last_fired": rule_state["last_fired"],
                }
