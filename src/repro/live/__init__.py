"""repro.live: continuous stall monitoring over live captures.

The online counterpart of the one-shot analyzer — the paper frames
TAPO as an always-on, server-side passive monitor, and this subsystem
makes the reproduction run that way:

* :mod:`repro.live.sources` — capture sources (growing-pcap tail,
  rotating-directory watcher, stdin) built on the same incremental
  scanner as the batch reader;
* :mod:`repro.live.windows` — rolling trace-time windows with
  order-independent (hence batch-byte-identical) aggregation;
* :mod:`repro.live.alerts` — declarative threshold rules with
  hysteresis and cooldown;
* :mod:`repro.live.http` — stdlib HTTP endpoint (``/healthz``,
  ``/metrics``, ``/report.json``);
* :mod:`repro.live.daemon` — the orchestrator behind
  ``repro-paper watch``, with graceful shutdown and
  checkpoint/resume.
"""

from .alerts import AlertEngine, AlertRule, JsonlSink
from .daemon import LiveDaemon, batch_report, open_source, watch_directory
from .http import LiveHTTPServer
from .sources import (
    LiveSource,
    PcapTailSource,
    RotatingDirectorySource,
    SourceCounters,
    StdinSource,
)
from .windows import WindowStore, WindowSummary

__all__ = [
    "AlertEngine",
    "AlertRule",
    "JsonlSink",
    "LiveDaemon",
    "LiveHTTPServer",
    "LiveSource",
    "PcapTailSource",
    "RotatingDirectorySource",
    "SourceCounters",
    "StdinSource",
    "WindowStore",
    "WindowSummary",
    "batch_report",
    "open_source",
    "watch_directory",
]
