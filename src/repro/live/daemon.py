"""The live monitoring daemon: sources -> analysis -> windows -> serving.

:class:`LiveDaemon` wires the subsystem together around the existing
streaming analyzer:

* a :class:`~repro.live.sources.LiveSource` is pumped through
  :meth:`repro.core.tapo.Tapo.analyze_stream` by a generator that
  polls for new bytes, sleeps briefly when there are none, and — on
  stop/exhaustion — finalizes the source so the demuxer flushes every
  open flow (backpressure is inherited from the streaming pipeline:
  the pump is only pulled when the analyzer wants packets);
* each completed :class:`~repro.core.flow_analyzer.FlowAnalysis` and
  each quarantined :class:`~repro.errors.SkippedFlow` folds into a
  :class:`~repro.live.windows.WindowStore` under a lock the HTTP
  snapshot handlers share;
* an :class:`~repro.live.alerts.AlertEngine` re-evaluates after every
  absorbed flow; state-change events go to the log and the alert sink.

**Shutdown.** SIGTERM/SIGINT (or :meth:`LiveDaemon.stop`) makes the
pump finalize the source instead of waiting for growth: remaining
bytes drain, the demuxer evicts every open flow, the analyzer yields
them, and the final all-windows report — plus a checkpoint — is
flushed.  A graceful shutdown therefore loses nothing, and the
flushed ``windows`` report is byte-identical to :func:`batch_report`
over the same packets.

**Checkpoint/resume.** A checkpoint atomically (tmp + rename) pairs
the source's consumed offsets with the window-store and alert-engine
state.  After a crash, resume re-reads from the checkpointed offsets:
no completed window is lost and no record is replayed into a window
twice.  The one caveat: flows *open* in the demuxer at checkpoint
time straddle the cut — their pre-checkpoint packets were consumed,
so after a hard crash those flows are analyzed from their
post-checkpoint tail only.  Completed-window data is never affected.
"""

from __future__ import annotations

import json
import logging
import os
import signal
import threading
import time
from collections import deque
from collections.abc import Iterator
from pathlib import Path

from ..config import AnalysisConfig, RunConfig
from ..core.tapo import Tapo
from ..errors import FaultStats
from ..obs.metrics import MetricsRegistry
from ..packet.flow import StreamStats
from ..packet.pcap import PcapReader
from ..results.dashboard import render_dashboard
from ..results.trends import trend_report
from .alerts import AlertEngine, AlertRule
from .http import LiveHTTPServer
from .sources import (
    LiveSource,
    PcapTailSource,
    RotatingDirectorySource,
    StdinSource,
)
from .windows import WindowStore

logger = logging.getLogger("repro.live")

#: Checkpoint schema version (the daemon-level envelope).
CHECKPOINT_VERSION = 1

_SOURCE_TYPES = {
    PcapTailSource.name: PcapTailSource,
    RotatingDirectorySource.name: RotatingDirectorySource,
}


class LiveDaemon:
    """Continuous stall monitoring over a live capture source.

    Parameters mirror the batch pipeline where they overlap
    (``analysis``, ``run``, ``server_side``); the rest are the live
    knobs: window geometry, alert rules, HTTP serving, checkpointing,
    and pacing.  ``http_port``/``http_host`` of ``None`` disables the
    endpoint; port ``0`` binds an ephemeral port (see
    :attr:`http.port <repro.live.http.LiveHTTPServer.port>`).
    """

    def __init__(
        self,
        source: LiveSource,
        *,
        window_seconds: float = 60.0,
        retention: int = 120,
        top_k: int = 10,
        service: str = "live",
        analysis: AnalysisConfig | None = None,
        run: RunConfig | None = None,
        server_side=None,
        rules: "list[AlertRule] | tuple[AlertRule, ...]" = (),
        alert_sink=None,
        http_host: str | None = None,
        http_port: int | None = None,
        checkpoint_path: "str | Path | None" = None,
        checkpoint_interval: float = 30.0,
        poll_interval: float = 0.5,
        once: bool = False,
        resume: bool = False,
        results_store=None,
        alert_history: int = 200,
    ):
        self.source = source
        self.analysis = analysis or AnalysisConfig()
        self.run_config = run or RunConfig()
        self.server_side = server_side
        self.tapo = Tapo(config=self.analysis)
        self.store = WindowStore(
            window_seconds=window_seconds,
            retention=retention,
            top_k=top_k,
            service=service,
        )
        self.engine = AlertEngine(rules, sink=alert_sink)
        self.stats = StreamStats()
        self.poll_interval = poll_interval
        self.once = once
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self.checkpoint_interval = checkpoint_interval
        self._last_checkpoint = 0.0
        #: Wall-clock time of the last checkpoint write (None before
        #: the first) — /healthz reports the age.
        self._last_checkpoint_wall: float | None = None
        #: Longitudinal results store (:class:`repro.results.store.
        #: ResultsStore` or None): one "live" record per expired
        #: (final) window, plus a totals record at shutdown.
        self.results = results_store
        #: Recent alert state-change events, newest last (served on the
        #: dashboard; bounded so memory is O(alert_history)).
        self.alert_history: deque = deque(maxlen=alert_history)
        self.records_in = 0
        self.flows_seen = 0
        self.checkpoints_written = 0
        self._skips_absorbed = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._started_at: float | None = None
        self._finished = False
        self.http: LiveHTTPServer | None = None
        if http_port is not None or http_host is not None:
            self.http = LiveHTTPServer(
                self,
                host=http_host or "127.0.0.1",
                port=http_port or 0,
            )
        self.store.on_expire = self._flush_window
        if resume:
            self._try_resume()

    # -- results-store flushes -----------------------------------------
    def _flush_window(self, window) -> None:
        """Append one expired (final) window to the results store.

        Called by the window store the moment a window can no longer
        change, so every record is the window's final word.  Append
        failures are logged and swallowed: the longitudinal store must
        never take down live monitoring.
        """
        if self.results is None:
            return
        rendered = window.to_dict()
        causes = {
            name: entry["time_share"]
            for name, entry in rendered["causes"].items()
        }
        try:
            self.results.append(
                "live",
                f"{self.store.service}_window",
                metrics={
                    key: rendered[key]
                    for key in (
                        "flows", "flows_with_stalls", "skipped",
                        "coverage", "stalls", "stall_time",
                        "stall_ratio", "transmission_time", "bytes_out",
                        "data_packets", "retransmissions", "timeouts",
                    )
                },
                causes=causes,
                config=self.analysis,
                meta={
                    "bucket": rendered["bucket"],
                    "start": rendered["start"],
                    "end": rendered["end"],
                },
            )
        except OSError:
            logger.exception("results-store append failed; continuing")

    def _flush_totals(self) -> None:
        """Append the all-time totals record at shutdown."""
        if self.results is None:
            return
        totals = self.store.total().to_dict()
        causes = {
            name: entry["time_share"]
            for name, entry in totals["causes"].items()
        }
        faults = self._faults_snapshot()
        try:
            self.results.append(
                "live",
                f"{self.store.service}_totals",
                metrics={
                    key: totals[key]
                    for key in (
                        "flows", "flows_with_stalls", "skipped",
                        "coverage", "stalls", "stall_time",
                        "stall_ratio", "transmission_time", "bytes_out",
                        "data_packets", "retransmissions", "timeouts",
                    )
                },
                causes=causes,
                faults={
                    "corrupt_records": faults.corrupt_records,
                    "resyncs": faults.resyncs,
                    "option_errors": faults.option_errors,
                    "checksum_errors": faults.checksum_errors,
                    "flows_skipped": faults.flows_skipped,
                },
                wall_time=(
                    time.monotonic() - self._started_at
                    if self._started_at is not None
                    else None
                ),
                config=self.analysis,
                meta={
                    "records_in": self.records_in,
                    "alert_events": self.engine.events_emitted,
                },
            )
        except OSError:
            logger.exception("results-store append failed; continuing")

    # -- resume --------------------------------------------------------
    def _try_resume(self) -> None:
        if self.checkpoint_path is None or not self.checkpoint_path.exists():
            return
        state = json.loads(self.checkpoint_path.read_text())
        if state.get("version") != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {state.get('version')!r}"
            )
        self.store = WindowStore.restore(state["windows"])
        self.store.on_expire = self._flush_window
        self.engine.restore(state["alerts"])
        counters = state["counters"]
        self.records_in = counters["records_in"]
        self.flows_seen = counters["flows_seen"]
        source_state = state["source"]
        source_cls = _SOURCE_TYPES.get(source_state.get("type"))
        if source_cls is not None and source_state["type"] == self.source.name:
            self.source.close()
            self.source = source_cls.restore(
                source_state, errors=self.analysis.errors
            )
        logger.info(
            "resumed from %s: %d records, %d flows, %d live windows",
            self.checkpoint_path,
            self.records_in,
            self.flows_seen,
            len(self.store.windows()),
        )

    # -- control -------------------------------------------------------
    def stop(self) -> None:
        """Request graceful shutdown (idempotent, signal-safe)."""
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to :meth:`stop` (main thread only)."""

        def handler(signum, frame):
            logger.info(
                "received %s; flushing final report",
                signal.Signals(signum).name,
            )
            self.stop()

        signal.signal(signal.SIGTERM, handler)
        signal.signal(signal.SIGINT, handler)

    # -- the pump ------------------------------------------------------
    def _records(self) -> Iterator:
        """Feed the analyzer: poll for growth, sleep when idle, and on
        stop/exhaustion finalize the source (drains its tail).

        On the columnar path each poll hands over
        :class:`~repro.packet.columnar.PacketColumns` batches — one per
        drained slab, so per-poll latency is unchanged — instead of
        individual records; :meth:`Tapo.analyze_stream` accepts both.
        """
        source = self.source
        columnar = (
            self.tapo.config.columnar
            and not self.tapo.config.record_series
        )
        if columnar:
            poll, finish = source.poll_columns, source.finish_columns
            weigh = len
        else:
            poll, finish = source.poll, source.finish
            weigh = lambda _record: 1  # noqa: E731
        while True:
            produced = False
            for item in poll():
                produced = True
                self.records_in += weigh(item)
                yield item
            if self._stop.is_set() or self.once or source.exhausted:
                for item in finish():
                    self.records_in += weigh(item)
                    yield item
                return
            self._maybe_checkpoint()
            if not produced:
                # Nothing new; wait in short slices so stop() is
                # honored promptly even mid-sleep.
                deadline = time.monotonic() + self.poll_interval
                while (
                    not self._stop.is_set()
                    and time.monotonic() < deadline
                ):
                    time.sleep(min(0.05, self.poll_interval))

    # -- absorption ----------------------------------------------------
    def _absorb_locked(self, analysis=None) -> list[dict]:
        """Fold new results into the store; returns alert events."""
        if analysis is not None:
            self.store.add(analysis)
            self.flows_seen += 1
        skipped = self.tapo.faults.skipped
        while self._skips_absorbed < len(skipped):
            self.store.add_skip(skipped[self._skips_absorbed])
            self._skips_absorbed += 1
        return self.engine.evaluate(self.store)

    def _log_events(self, events: list[dict]) -> None:
        self.alert_history.extend(events)
        for event in events:
            level = (
                logging.WARNING
                if event["state"] == "firing"
                else logging.INFO
            )
            logger.log(
                level,
                "alert %s %s: %s = %.6g (threshold %s %g)",
                event["alert"],
                event["state"],
                event["metric"],
                event["value"],
                "breach" if event["state"] == "firing" else "clear",
                event["threshold"],
            )

    # -- main loop -----------------------------------------------------
    def run(self) -> dict:
        """Run until stopped (or, with ``once=True``, until the source
        is drained); returns the final flushed report."""
        self._started_at = time.monotonic()
        if self.http is not None:
            self.http.start()
            logger.info("serving on %s", self.http.url)
        try:
            stream = self.tapo.analyze_stream(
                self._records(),
                self.server_side,
                run=self.run_config,
                stats=self.stats,
            )
            for analysis in stream:
                with self._lock:
                    events = self._absorb_locked(analysis)
                self._log_events(events)
                self._maybe_checkpoint()
            with self._lock:
                events = self._absorb_locked()
            self._log_events(events)
        finally:
            self._finished = True
            self._flush_totals()
            self.write_checkpoint()
            report = self.report()
            if self.http is not None:
                self.http.stop()
            self.source.close()
        return report

    # -- checkpointing -------------------------------------------------
    def _maybe_checkpoint(self) -> None:
        if self.checkpoint_path is None:
            return
        now = time.monotonic()
        if now - self._last_checkpoint >= self.checkpoint_interval:
            self.write_checkpoint()

    def write_checkpoint(self) -> None:
        """Atomically persist source offsets + window + alert state."""
        if self.checkpoint_path is None:
            return
        with self._lock:
            state = {
                "version": CHECKPOINT_VERSION,
                "source": self.source.checkpoint(),
                "windows": self.store.checkpoint(),
                "alerts": self.engine.checkpoint(),
                "counters": {
                    "records_in": self.records_in,
                    "flows_seen": self.flows_seen,
                },
            }
        tmp = self.checkpoint_path.with_suffix(
            self.checkpoint_path.suffix + ".tmp"
        )
        tmp.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text(json.dumps(state, sort_keys=True))
        os.replace(tmp, self.checkpoint_path)
        self._last_checkpoint = time.monotonic()
        self._last_checkpoint_wall = time.time()
        self.checkpoints_written += 1

    # -- snapshot surface (shared with the HTTP handlers) --------------
    def _faults_snapshot(self) -> FaultStats:
        faults = FaultStats()
        faults.merge(self.tapo.faults)
        self.source.fold_faults(faults)
        return faults

    def health(self) -> dict:
        now = time.time()
        with self._lock:
            # Wedge detectors: how stale is each durability surface?
            checkpoint_age = (
                now - self._last_checkpoint_wall
                if self._last_checkpoint_wall is not None
                else None
            )
            # Trace time of the newest completed-window edge — the
            # last moment windowed data advanced.
            last_flush = (
                (self.store.max_bucket + 1) * self.store.window_seconds
                if self.store.max_bucket is not None
                else None
            )
            store_age = (
                now - self.results.last_append_ts
                if self.results is not None
                and self.results.last_append_ts is not None
                else None
            )
            return {
                "status": "ok",
                "finished": self._finished,
                "stopping": self._stop.is_set(),
                "source": self.source.name,
                "records_in": self.records_in,
                "flows": self.flows_seen,
                "flows_skipped": self._skips_absorbed,
                "windows_active": len(self.store.windows()),
                "max_bucket": self.store.max_bucket,
                "alerts_active": self.engine.active(),
                "uptime_seconds": (
                    time.monotonic() - self._started_at
                    if self._started_at is not None
                    else 0.0
                ),
                "checkpoint_age_seconds": checkpoint_age,
                "checkpoints_written": self.checkpoints_written,
                "last_window_flush_trace_time": last_flush,
                "results_store": (
                    str(self.results.path)
                    if self.results is not None
                    else None
                ),
                "results_records_appended": (
                    self.results.records_appended
                    if self.results is not None
                    else 0
                ),
                "store_append_age_seconds": store_age,
            }

    def metrics_registry(self) -> MetricsRegistry:
        """One registry for both ``/metrics`` and ``--metrics-out``."""
        registry = MetricsRegistry()
        with self._lock:
            self.stats.to_registry(registry)
            self._faults_snapshot().to_registry(registry)
            self.store.to_registry(registry)
            registry.counter(
                "repro_live_records_total", "Packet records ingested"
            ).inc(self.records_in)
            registry.counter(
                "repro_live_checkpoints_total", "Checkpoints written"
            ).inc(self.checkpoints_written)
            registry.counter(
                "repro_live_alert_events_total",
                "Alert state-change events emitted",
            ).inc(self.engine.events_emitted)
            registry.counter(
                "repro_alerts_emitted_total",
                "Alert state-change events emitted (canonical name)",
            ).inc(self.engine.events_emitted)
            sink = self.engine.sink
            if sink is not None and hasattr(sink, "rotations"):
                registry.counter(
                    "repro_alert_sink_rotations_total",
                    "Size-bounded alert-log rotations performed",
                ).inc(sink.rotations)
            if self.results is not None:
                registry.counter(
                    "repro_results_records_appended_total",
                    "Records appended to the longitudinal results store",
                ).inc(self.results.records_appended)
            registry.gauge(
                "repro_live_alerts_active", "Alert rules currently firing"
            ).set(float(len(self.engine.active())))
            registry.gauge(
                "repro_live_source_offset_bytes",
                "Consumed byte offset of the current capture file",
            ).set(float(getattr(self.source, "offset", 0)))
            registry.gauge(
                "repro_live_files_completed",
                "Rotated capture files fully processed",
            ).set(float(getattr(self.source, "files_completed", 0)))
        return registry

    def report(self) -> dict:
        """The serving/flush shape: a deterministic ``windows`` section
        (pure trace state — what :func:`batch_report` reproduces
        byte-for-byte) plus a ``runtime`` section of process facts."""
        with self._lock:
            faults = self._faults_snapshot()
            return {
                "windows": self.store.report(),
                "runtime": {
                    "source": self.source.name,
                    "records_in": self.records_in,
                    "flows": self.flows_seen,
                    "flows_skipped": self._skips_absorbed,
                    "corrupt_records": faults.corrupt_records,
                    "resyncs": faults.resyncs,
                    "option_errors": faults.option_errors,
                    "alerts_active": self.engine.active(),
                    "alert_events": self.engine.events_emitted,
                    "checkpoints_written": self.checkpoints_written,
                    "finished": self._finished,
                },
            }

    # -- longitudinal surface (dashboard endpoints) --------------------
    def runs(self) -> list:
        """All records of the attached results store (lenient load, so
        a damaged store still serves what survives); ``[]`` without
        one.  Served at ``/runs.json``."""
        if self.results is None:
            return []
        from ..errors import ErrorBudget

        return self.results.load(errors=ErrorBudget.lenient())

    def trends(self) -> dict:
        """Trend report over the attached results store (the
        ``/trends.json`` shape)."""
        return trend_report(self.runs())

    def dashboard_html(self) -> str:
        """The full operator dashboard (the ``/dashboard`` page)."""
        runs = self.runs()
        return render_dashboard(
            title=f"repro live · {self.store.service}",
            subtitle=f"source: {self.source.name}",
            health=self.health(),
            report=self.report()["windows"],
            trends=trend_report(runs),
            runs=runs,
            alerts=list(self.alert_history),
        )


def batch_report(
    paths,
    *,
    window_seconds: float = 60.0,
    retention: int = 120,
    top_k: int = 10,
    service: str = "live",
    analysis: AnalysisConfig | None = None,
    run: RunConfig | None = None,
    server_side=None,
) -> dict:
    """One-shot batch equivalent of the daemon's ``windows`` report.

    Reads the finished capture files (in the given order — pass them
    sorted by rotation name to mirror the directory watcher), streams
    them through one analyzer exactly like the daemon's single demux
    stream, and folds the results into an identically-configured
    :class:`~repro.live.windows.WindowStore`.  Because every window
    aggregate is order-independent (integer arithmetic, total-order
    top-K), the returned dict is byte-identical to what a daemon run
    over the same packets flushes — the equivalence the live-smoke CI
    job asserts.
    """
    analysis = analysis or AnalysisConfig()
    tapo = Tapo(config=analysis)
    store = WindowStore(
        window_seconds=window_seconds,
        retention=retention,
        top_k=top_k,
        service=service,
    )

    def records():
        for path in paths:
            with PcapReader(path, errors=analysis.errors) as reader:
                yield from reader.iter_records()

    for flow_analysis in tapo.analyze_stream(
        records(), server_side, run=run or RunConfig()
    ):
        store.add(flow_analysis)
    for skipped in tapo.faults.skipped:
        store.add_skip(skipped)
    return store.report()


def watch_directory(
    directory,
    pattern: str = "*.pcap",
    *,
    errors=None,
    **daemon_kwargs,
) -> LiveDaemon:
    """Convenience constructor: a daemon watching a rotating-capture
    directory.  ``errors`` (an :class:`~repro.errors.ErrorBudget` or
    spec string) applies to both parsing and analysis; remaining
    keywords go to :class:`LiveDaemon`."""
    analysis = daemon_kwargs.pop("analysis", None) or AnalysisConfig()
    if errors is not None:
        from ..errors import ErrorBudget

        analysis = analysis.replace(errors=ErrorBudget.parse(errors))
    source = RotatingDirectorySource(
        directory, pattern=pattern, errors=analysis.errors
    )
    return LiveDaemon(source, analysis=analysis, **daemon_kwargs)


def open_source(spec, *, pattern: str = "*.pcap", errors=None) -> LiveSource:
    """Resolve a CLI source spec: ``-`` = stdin, a directory = rotating
    watcher, anything else = follow-mode tail of a single pcap."""
    if spec == "-":
        return StdinSource(errors=errors)
    path = Path(spec)
    if path.is_dir():
        return RotatingDirectorySource(path, pattern=pattern, errors=errors)
    return PcapTailSource(path, errors=errors)
