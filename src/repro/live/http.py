"""Stdlib HTTP endpoint for the live monitoring daemon.

Serves read-only routes off a *provider* object (the daemon), each a
snapshot taken under the daemon's lock:

``/healthz``
    Liveness/progress JSON: records and flows processed, source
    offsets, active alerts, checkpoint/store staleness ages (the
    wedged-daemon detectors).  Always ``200`` while the process serves.
``/metrics``
    Prometheus text exposition — the exact string
    :func:`repro.obs.metrics.render_exports` produces, i.e. the same
    serialization ``--metrics-out`` writes to ``PREFIX.prom``
    (``/metrics.json`` serves the JSON flavor).
``/report.json``
    The current rolling-window report
    (:meth:`repro.live.windows.WindowStore.report` plus daemon
    run-state).
``/dashboard``
    The zero-dependency operator dashboard
    (:func:`repro.results.dashboard.render_dashboard`): HTML with
    inline SVG, no JavaScript, no external fetches.
``/runs.json`` / ``/trends.json``
    The longitudinal results store's records and its trend report
    (regressions, ranking flips).  Empty shapes when the daemon runs
    without a ``--results-store``.

Responses to clients advertising ``Accept-Encoding: gzip`` are
gzip-compressed (stdlib :mod:`gzip`, deterministic ``mtime=0``) once
they exceed a small threshold — window reports and dashboards compress
5-10x.  ``Content-Length`` always describes the bytes actually sent.

The server is a ``ThreadingHTTPServer`` on a background thread; every
handler only reads snapshots the provider assembles, so slow scrapers
never block ingestion.  Bind port ``0`` to let the OS pick (the bound
port is on :attr:`LiveHTTPServer.port`) — tests and CI do this to
avoid collisions.
"""

from __future__ import annotations

import gzip
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..obs.metrics import (
    CONTENT_TYPE_JSON,
    CONTENT_TYPE_PROMETHEUS,
    render_exports,
)

#: Responses smaller than this are never compressed (header overhead
#: would outweigh the savings).
GZIP_MIN_BYTES = 512

_ROUTES = [
    "/dashboard",
    "/healthz",
    "/metrics",
    "/report.json",
    "/runs.json",
    "/shards.json",
    "/trends.json",
]


class _Handler(BaseHTTPRequestHandler):
    # The provider is attached to the server instance by LiveHTTPServer.
    server_version = "repro-live/1.0"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # scrapes are routine; the daemon logs what matters

    def _client_accepts_gzip(self) -> bool:
        accept = self.headers.get("Accept-Encoding", "")
        return any(
            token.split(";")[0].strip() == "gzip"
            for token in accept.split(",")
        )

    def _send(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        encoding = None
        if (
            len(payload) >= GZIP_MIN_BYTES
            and self._client_accepts_gzip()
        ):
            # mtime=0: identical bodies compress to identical bytes.
            payload = gzip.compress(payload, mtime=0)
            encoding = "gzip"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        if encoding is not None:
            self.send_header("Content-Encoding", encoding)
        self.send_header("Vary", "Accept-Encoding")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, payload, status: int = 200) -> None:
        self._send(
            status, CONTENT_TYPE_JSON, json.dumps(payload, sort_keys=True)
        )

    def do_GET(self):  # noqa: N802 - stdlib handler name
        provider = self.server.provider  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        try:
            if path == "/healthz":
                self._send_json(provider.health())
            elif path in ("/metrics", "/metrics.json"):
                exports = render_exports(provider.metrics_registry())
                if path == "/metrics":
                    self._send(
                        200, CONTENT_TYPE_PROMETHEUS, exports["prom"]
                    )
                else:
                    self._send(200, CONTENT_TYPE_JSON, exports["json"])
            elif path == "/report.json":
                self._send_json(provider.report())
            elif path == "/runs.json" and hasattr(provider, "runs"):
                self._send_json({"records": provider.runs()})
            elif path == "/shards.json" and hasattr(provider, "shards"):
                # Fleet aggregators (repro.cluster) expose per-shard
                # progress/fault detail alongside the merged report;
                # cross-host runs add per-worker liveness (heartbeats,
                # shards completed, last known state).
                payload = {"shards": provider.shards()}
                if hasattr(provider, "workers"):
                    payload["workers"] = provider.workers()
                self._send_json(payload)
            elif path == "/trends.json" and hasattr(provider, "trends"):
                self._send_json(provider.trends())
            elif path == "/dashboard" and hasattr(
                provider, "dashboard_html"
            ):
                self._send(
                    200,
                    "text/html; charset=utf-8",
                    provider.dashboard_html(),
                )
            else:
                self._send_json(
                    {"error": "not found", "routes": _ROUTES},
                    status=404,
                )
        except Exception as exc:  # surface, don't kill the thread
            self._send_json(
                {"error": type(exc).__name__, "detail": str(exc)},
                status=500,
            )


class LiveHTTPServer:
    """Background-thread HTTP server bound to a snapshot provider.

    ``provider`` must expose ``health() -> dict``,
    ``metrics_registry() -> MetricsRegistry``, and ``report() -> dict``;
    providers additionally exposing ``runs()``, ``trends()``, and
    ``dashboard_html()`` get the longitudinal routes, and fleet
    aggregators exposing ``shards()`` (see
    :class:`repro.cluster.ClusterProvider`) get ``/shards.json``,
    with per-worker liveness folded in when they also expose
    ``workers()``.  All are called
    from handler threads and must be safe to call concurrently with
    ingestion (the daemon snapshots under a lock).
    """

    def __init__(self, provider, host: str = "127.0.0.1", port: int = 0):
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._server.provider = provider  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """The actually-bound port (useful when constructed with 0)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "LiveHTTPServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-live-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "LiveHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
