"""Live capture sources: growing files, rotating directories, stdin.

Batch analysis reads a *finished* pcap; a monitoring daemon reads one
that is still being written.  Every source here is built on the same
incremental :class:`~repro.packet.pcap.PcapScanner` state machine the
batch :class:`~repro.packet.pcap.PcapReader` uses, so framing
recovery, error-budget accounting, and fault counters are identical
between a one-shot run and a live tail of the same bytes — the
property the daemon's batch-equivalence guarantee rests on.

The common contract (:class:`LiveSource`):

* :meth:`~LiveSource.poll` yields every record decodable from the
  bytes available *right now* and returns — it never blocks waiting
  for growth, so the daemon loop stays responsive to signals and
  checkpoints between polls;
* :meth:`~LiveSource.finish` declares end-of-input: remaining bytes
  are drained and a truncated tail is judged under the error budget
  (exactly like a batch reader hitting EOF);
* :meth:`~LiveSource.checkpoint` returns a JSON-serializable resume
  state.  Offsets count *consumed* bytes only — bytes buffered inside
  the scanner but not yet judged are re-read on resume, so no parsed
  record is replayed and none is lost.
"""

from __future__ import annotations

import io
import os
import select
import sys
from collections.abc import Iterator
from dataclasses import asdict, dataclass
from pathlib import Path

from ..errors import ErrorBudget, FaultStats
from ..packet.columnar import PacketColumns
from ..packet.packet import PacketRecord
from ..packet.pcap import (
    READ_BUFFER_BYTES,
    PcapFormatError,
    PcapScanner,
    parse_global_header,
)

#: Size of the classic pcap global header.
PCAP_HEADER_BYTES = 24


@dataclass
class SourceCounters:
    """The counter surface :class:`~repro.packet.pcap.PcapScanner`
    writes into — same attribute names as
    :class:`~repro.packet.pcap.PcapReader`, shared across every file a
    rotating source opens so totals are cumulative."""

    records_read: int = 0
    skipped: int = 0
    corrupt_records: int = 0
    resyncs: int = 0
    bytes_skipped: int = 0
    option_errors: int = 0
    checksum_errors: int = 0
    checksums_skipped: int = 0
    #: Request TCP checksum verification during decode (the columnar
    #: path defers and counts ``checksums_skipped`` instead).
    verify_checksums: bool = False

    def fold_faults(self, faults: FaultStats) -> None:
        faults.corrupt_records += self.corrupt_records
        faults.resyncs += self.resyncs
        faults.option_errors += self.option_errors
        faults.checksum_errors += self.checksum_errors
        faults.checksums_skipped += self.checksums_skipped

    def to_state(self) -> dict:
        return asdict(self)

    @classmethod
    def from_state(cls, state: dict) -> "SourceCounters":
        return cls(**state)


class LiveSource:
    """Interface shared by every live capture source."""

    name = "source"
    counters: SourceCounters

    def poll(self) -> Iterator[PacketRecord]:
        """Yield records decodable from currently available bytes,
        then return (never blocks on input growth)."""
        raise NotImplementedError

    def finish(self) -> Iterator[PacketRecord]:
        """Declare end-of-input and drain the tail under the budget."""
        raise NotImplementedError

    def poll_columns(self) -> Iterator[PacketColumns]:
        """Columnar counterpart of :meth:`poll`: everything decodable
        right now as :class:`PacketColumns` batches (non-empty only).

        Byte-stream sources decode straight into columns; this default
        wraps :meth:`poll` for sources without a columnar decoder.
        """
        records = list(self.poll())
        if records:
            yield PacketColumns.from_records(records)

    def finish_columns(self) -> Iterator[PacketColumns]:
        """Columnar counterpart of :meth:`finish`."""
        records = list(self.finish())
        if records:
            yield PacketColumns.from_records(records)

    @property
    def exhausted(self) -> bool:
        """Whether no further data can ever arrive (e.g. stdin EOF)."""
        return False

    def checkpoint(self) -> dict:
        """JSON-serializable resume state."""
        raise NotImplementedError

    def close(self) -> None:
        pass

    def fold_faults(self, faults: FaultStats) -> None:
        self.counters.fold_faults(faults)


class _ScanningSource(LiveSource):
    """Shared header-then-scanner plumbing for byte-stream sources."""

    def __init__(
        self,
        errors: "ErrorBudget | str | None" = None,
        counters: SourceCounters | None = None,
    ):
        self.errors = ErrorBudget.parse(errors)
        self.counters = counters if counters is not None else SourceCounters()
        self._scanner: PcapScanner | None = None
        self._header = b""
        self._base = 0       # consumed-offset baseline (header/resume)
        self._pushed = 0     # bytes pushed into the scanner since base
        self._finished = False

    @property
    def offset(self) -> int:
        """Consumed byte offset: resuming a read here replays no
        already-parsed record and skips none."""
        if self._scanner is None:
            return 0
        return self._base + self._pushed - self._scanner.pending_bytes

    def _attach(self, endian: str, linktype: int, base: int) -> None:
        self._scanner = PcapScanner(
            endian, linktype, self.errors, counters=self.counters
        )
        self._base = base

    def _ingest(self, data: bytes) -> None:
        """Feed raw capture bytes, parsing the global header first."""
        if self._scanner is not None:
            self._pushed += len(data)
            self._scanner.push(data)
            return
        self._header += data
        if len(self._header) < PCAP_HEADER_BYTES:
            return
        endian, linktype = parse_global_header(
            self._header[:PCAP_HEADER_BYTES]
        )
        rest = self._header[PCAP_HEADER_BYTES:]
        self._header = b""
        self._attach(endian, linktype, base=PCAP_HEADER_BYTES)
        if rest:
            self._pushed += len(rest)
            self._scanner.push(rest)

    def _judge_truncated_header(self) -> None:
        if not self.errors.tolerant:
            raise PcapFormatError("pcap global header truncated")
        self.counters.corrupt_records += 1
        self.counters.bytes_skipped += len(self._header)
        self._header = b""

    def _finish_scan(self) -> Iterator[PacketRecord]:
        """Judge the tail: a partial header or record becomes a fault."""
        if self._finished:
            return
        if self._scanner is not None:
            self._scanner.finish()
            yield from self._scanner.drain()
        elif self._header:
            self._judge_truncated_header()
        self._finished = True

    def _finish_scan_columns(self) -> Iterator[PacketColumns]:
        """Columnar :meth:`_finish_scan`."""
        if self._finished:
            return
        if self._scanner is not None:
            self._scanner.finish()
            columns = self._scanner.drain_columns()
            if len(columns):
                yield columns
        elif self._header:
            self._judge_truncated_header()
        self._finished = True


class PcapTailSource(_ScanningSource):
    """Follow-mode tail of a growing pcap file.

    Reads whatever the writer has flushed so far; a record half-written
    at poll time simply waits in the scanner until the rest lands.
    ``offset`` supports resume: pass the checkpointed value to continue
    exactly where a previous process stopped.  A file *smaller* than
    the resume offset means the path was recycled with new content
    (appending writers never shrink), so the source starts over at 0.
    """

    name = "pcap_tail"

    def __init__(
        self,
        path: str | Path,
        errors: "ErrorBudget | str | None" = None,
        offset: int = 0,
        counters: SourceCounters | None = None,
    ):
        super().__init__(errors, counters)
        self.path = Path(path)
        # Unbuffered so reads past a previous EOF see appended bytes.
        self._file = open(self.path, "rb", buffering=0)
        if offset:
            if os.fstat(self._file.fileno()).st_size < offset:
                offset = 0  # path recycled: a fresh capture lives here
            else:
                raw = self._file.read(PCAP_HEADER_BYTES)
                endian, linktype = parse_global_header(raw)
                self._file.seek(offset)
                self._attach(endian, linktype, base=offset)

    def poll(self) -> Iterator[PacketRecord]:
        if self._finished:
            return
        while True:
            data = self._file.read(READ_BUFFER_BYTES)
            if not data:
                return
            self._ingest(data)
            if self._scanner is not None:
                yield from self._scanner.drain()

    def finish(self) -> Iterator[PacketRecord]:
        yield from self.poll()
        yield from self._finish_scan()

    def poll_columns(self) -> Iterator[PacketColumns]:
        if self._finished:
            return
        while True:
            data = self._file.read(READ_BUFFER_BYTES)
            if not data:
                return
            self._ingest(data)
            if self._scanner is not None:
                columns = self._scanner.drain_columns()
                if len(columns):
                    yield columns

    def finish_columns(self) -> Iterator[PacketColumns]:
        yield from self.poll_columns()
        yield from self._finish_scan_columns()

    def checkpoint(self) -> dict:
        return {
            "type": self.name,
            "path": str(self.path),
            "offset": self.offset,
            "counters": self.counters.to_state(),
        }

    @classmethod
    def restore(
        cls, state: dict, errors: "ErrorBudget | str | None" = None
    ) -> "PcapTailSource":
        return cls(
            state["path"],
            errors=errors,
            offset=state["offset"],
            counters=SourceCounters.from_state(state["counters"]),
        )

    def close(self) -> None:
        self._file.close()


class RotatingDirectorySource(LiveSource):
    """Watch a directory of rotating capture files.

    Matching files are processed in lexicographic name order — the
    convention of every rotating-capture writer (``tcpdump -W``,
    timestamped names): names grow monotonically.  The newest matching
    file is tailed; the moment a strictly newer name appears, the
    current file is finalized (its tail judged under the budget),
    recorded in the dedup set, and the watcher moves on.  A finished
    name never re-enters processing even if its mtime changes.

    All files share one :class:`SourceCounters`, so fault totals span
    the whole rotation history, and one error budget governs the whole
    stream — exactly like a batch run over the concatenated files.
    """

    name = "rotating"

    def __init__(
        self,
        directory: str | Path,
        pattern: str = "*.pcap",
        errors: "ErrorBudget | str | None" = None,
    ):
        self.directory = Path(directory)
        if not self.directory.is_dir():
            raise FileNotFoundError(
                f"not a directory: {self.directory}"
            )
        self.pattern = pattern
        self.errors = ErrorBudget.parse(errors)
        self.counters = SourceCounters()
        self._done: set[str] = set()
        self._tail: PcapTailSource | None = None
        self._finished = False
        self.files_completed = 0

    # -- directory scanning -------------------------------------------
    def _pending(self) -> list[str]:
        """Matching names not yet finished and not currently tailed,
        in processing order."""
        current = self._tail.path.name if self._tail is not None else None
        return sorted(
            p.name
            for p in self.directory.glob(self.pattern)
            if p.is_file()
            and p.name not in self._done
            and p.name != current
        )

    def _open_tail(self, name: str, offset: int = 0) -> None:
        self._tail = PcapTailSource(
            self.directory / name,
            errors=self.errors,
            offset=offset,
            counters=self.counters,
        )

    def _complete_tail(self) -> None:
        self._done.add(self._tail.path.name)
        self._tail.close()
        self._tail = None
        self.files_completed += 1

    # -- LiveSource ----------------------------------------------------
    def poll(self) -> Iterator[PacketRecord]:
        if self._finished:
            return
        while True:
            if self._tail is None:
                pending = self._pending()
                if not pending:
                    return
                self._open_tail(pending[0])
            yield from self._tail.poll()
            current = self._tail.path.name
            if any(name > current for name in self._pending()):
                # Rotated: a newer file exists, so this one is closed
                # for writing — judge its tail and move on.
                yield from self._tail.finish()
                self._complete_tail()
                continue
            return

    def finish(self) -> Iterator[PacketRecord]:
        if self._finished:
            return
        yield from self.poll()
        while True:
            if self._tail is not None:
                yield from self._tail.finish()
                self._complete_tail()
            pending = self._pending()
            if not pending:
                break
            self._open_tail(pending[0])
        self._finished = True

    def poll_columns(self) -> Iterator[PacketColumns]:
        if self._finished:
            return
        while True:
            if self._tail is None:
                pending = self._pending()
                if not pending:
                    return
                self._open_tail(pending[0])
            yield from self._tail.poll_columns()
            current = self._tail.path.name
            if any(name > current for name in self._pending()):
                yield from self._tail.finish_columns()
                self._complete_tail()
                continue
            return

    def finish_columns(self) -> Iterator[PacketColumns]:
        if self._finished:
            return
        yield from self.poll_columns()
        while True:
            if self._tail is not None:
                yield from self._tail.finish_columns()
                self._complete_tail()
            pending = self._pending()
            if not pending:
                break
            self._open_tail(pending[0])
        self._finished = True

    def checkpoint(self) -> dict:
        return {
            "type": self.name,
            "directory": str(self.directory),
            "pattern": self.pattern,
            "done": sorted(self._done),
            "current": (
                self._tail.path.name if self._tail is not None else None
            ),
            "offset": self._tail.offset if self._tail is not None else 0,
            "files_completed": self.files_completed,
            "counters": self.counters.to_state(),
        }

    @classmethod
    def restore(
        cls, state: dict, errors: "ErrorBudget | str | None" = None
    ) -> "RotatingDirectorySource":
        source = cls(
            state["directory"], pattern=state["pattern"], errors=errors
        )
        source._done = set(state["done"])
        source.files_completed = state["files_completed"]
        source.counters = SourceCounters.from_state(state["counters"])
        current = state["current"]
        if current is not None:
            path = source.directory / current
            if path.is_file():
                source._open_tail(current, offset=state["offset"])
            else:
                # Rotated away (deleted) while we were down; its unread
                # tail is gone — mark finished so it is not re-awaited.
                source._done.add(current)
        return source

    def close(self) -> None:
        if self._tail is not None:
            self._tail.close()
            self._tail = None


class StdinSource(_ScanningSource):
    """Read a pcap stream from stdin (or any binary stream).

    On a real pipe, availability is probed with :func:`select.select`
    at zero timeout so :meth:`poll` never blocks the daemon loop; on
    plain file-like objects (tests, files) it just reads.  EOF drains
    the tail and marks the source :attr:`exhausted` — a pipe cannot
    grow back.  Checkpointing records no offset: a pipe is not
    seekable, so resume-from-checkpoint replays window state only.
    """

    name = "stdin"

    def __init__(
        self,
        stream=None,
        errors: "ErrorBudget | str | None" = None,
    ):
        super().__init__(errors)
        self._stream = sys.stdin.buffer if stream is None else stream
        try:
            self._fd: int | None = self._stream.fileno()
        except (AttributeError, OSError, io.UnsupportedOperation):
            self._fd = None

    def _read_available(self) -> bytes | None:
        """One non-blocking read: ``None`` = nothing yet, ``b""`` = EOF."""
        if self._fd is None:
            return self._stream.read(READ_BUFFER_BYTES)
        ready, _, _ = select.select([self._fd], [], [], 0.0)
        if not ready:
            return None
        return os.read(self._fd, READ_BUFFER_BYTES)

    def poll(self) -> Iterator[PacketRecord]:
        if self._finished:
            return
        while True:
            data = self._read_available()
            if data is None:
                return
            if data == b"":
                yield from self._finish_scan()
                return
            self._ingest(data)
            if self._scanner is not None:
                yield from self._scanner.drain()

    def finish(self) -> Iterator[PacketRecord]:
        if self._finished:
            return
        while True:
            data = self._read_available()
            if not data:
                break
            self._ingest(data)
            if self._scanner is not None:
                yield from self._scanner.drain()
        yield from self._finish_scan()

    def poll_columns(self) -> Iterator[PacketColumns]:
        if self._finished:
            return
        while True:
            data = self._read_available()
            if data is None:
                return
            if data == b"":
                yield from self._finish_scan_columns()
                return
            self._ingest(data)
            if self._scanner is not None:
                columns = self._scanner.drain_columns()
                if len(columns):
                    yield columns

    def finish_columns(self) -> Iterator[PacketColumns]:
        if self._finished:
            return
        while True:
            data = self._read_available()
            if not data:
                break
            self._ingest(data)
            if self._scanner is not None:
                columns = self._scanner.drain_columns()
                if len(columns):
                    yield columns
        yield from self._finish_scan_columns()

    @property
    def exhausted(self) -> bool:
        return self._finished

    def checkpoint(self) -> dict:
        return {"type": self.name}
