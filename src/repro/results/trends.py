"""Trend analysis over the longitudinal results store.

Three questions an operator asks of a ranked stall-mitigation
benchmark, answered over the records of
:class:`~repro.results.store.ResultsStore`:

* **How is each metric moving?**  :func:`metric_series` groups records
  into per-``(kind, name, metric)`` time series ordered by the total
  record order (``ts, run_id, seq``).
* **Did something regress?**  :func:`detect_regressions` compares each
  series' newest point against a rolling baseline — the median of up
  to ``baseline_n`` preceding points — and flags deviations beyond
  ``threshold`` in the metric's *bad* direction.  Direction is
  inferred from the metric name (``*_kpps`` up is good, ``*_seconds``
  down is good; see :func:`metric_direction`) with explicit overrides
  winning; metrics with no inferable direction are never flagged
  (series still render, so the dashboard shows the movement).
* **Did a policy ranking flip?**  :func:`detect_ranking_flips` walks
  records carrying ``rankings`` and reports every consecutive pair
  whose per-scenario policy order differs — the signal that a Table
  8/9-style conclusion changed between runs.  Both the mitigation
  sweep's per-service rankings and the ``repro-paper matrix``
  tournament's per-``workload/path`` rankings flow through here
  unchanged (scenario keys are opaque strings).

:func:`trend_report` bundles all three into the JSON the daemon serves
at ``/trends.json`` and ``repro-paper results trends`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .store import _sort_key

#: Name fragments implying "higher is better" (throughput-like).
_HIGHER_TOKENS = frozenset(
    {
        "kpps", "pps", "qps", "ops", "mbps", "gbps", "speedup",
        "throughput", "coverage", "improvement", "bandwidth",
        "hits", "hit", "fast",
    }
)

#: Name fragments implying "lower is better" (latency/damage-like).
_LOWER_TOKENS = frozenset(
    {
        "seconds", "ms", "ns", "latency", "lag", "rss", "overhead",
        "errors", "corrupt", "skipped", "poisoned", "loss", "stall",
        "stalls", "stalled", "retransmissions", "timeouts", "misses",
        "rtt", "rto", "ratio", "time", "regression", "dropped",
        "resyncs", "fallback",
    }
)


def metric_direction(
    metric: str, overrides: "dict[str, str] | None" = None
) -> str | None:
    """``"up"`` if higher is better, ``"down"`` if lower is, ``None``
    when the name implies neither (or contradicts itself)."""
    if overrides:
        direction = overrides.get(metric)
        if direction in ("up", "down"):
            return direction
    tokens = set(metric.lower().replace(".", "_").split("_"))
    higher = bool(tokens & _HIGHER_TOKENS)
    lower = bool(tokens & _LOWER_TOKENS)
    if higher and not lower:
        return "up"
    if lower and not higher:
        return "down"
    return None


@dataclass(frozen=True)
class TrendConfig:
    """Knobs of the regression detector.

    ``threshold`` is the relative deviation of the newest point versus
    the baseline median that flags a regression (0.2 = 20%);
    ``baseline_n`` bounds the rolling window the median is taken over;
    ``min_points`` is the minimum series length (baseline points plus
    the newest) before any judgment is made — short histories stay
    quiet instead of flapping.  ``directions`` force a per-metric
    good direction (``{"metric": "up" | "down"}``) past the name
    heuristic.
    """

    threshold: float = 0.2
    baseline_n: int = 5
    min_points: int = 4
    directions: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.threshold <= 0:
            raise ValueError("threshold must be > 0")
        if self.baseline_n < 1:
            raise ValueError("baseline_n must be >= 1")
        if self.min_points < 2:
            raise ValueError("min_points must be >= 2")
        for metric, direction in self.directions.items():
            if direction not in ("up", "down"):
                raise ValueError(
                    f"direction for {metric!r} must be 'up' or 'down', "
                    f"got {direction!r}"
                )


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def metric_series(records) -> dict:
    """Group records into ``{(kind, name, metric): [point, ...]}``.

    Points are ``{"ts", "value", "run_id", "git_sha"}`` dicts in total
    record order, so two stores holding the same records (in any file
    order) produce identical series.
    """
    series: dict[tuple, list[dict]] = {}
    for record in sorted(records, key=_sort_key):
        metrics = record.get("metrics") or {}
        for metric, value in metrics.items():
            if not isinstance(value, (int, float)) or isinstance(
                value, bool
            ):
                continue
            series.setdefault(
                (record["kind"], record["name"], metric), []
            ).append(
                {
                    "ts": record["ts"],
                    "value": float(value),
                    "run_id": record["run_id"],
                    "git_sha": record.get("git_sha"),
                }
            )
    return series


def detect_regressions(
    records, config: TrendConfig | None = None
) -> list[dict]:
    """Flag newest-vs-baseline deviations in each metric's bad
    direction; returns one finding dict per flagged series."""
    config = config or TrendConfig()
    findings: list[dict] = []
    for (kind, name, metric), points in sorted(
        metric_series(records).items()
    ):
        if len(points) < config.min_points:
            continue
        direction = metric_direction(metric, config.directions)
        if direction is None:
            continue
        history = [p["value"] for p in points]
        newest = history[-1]
        window = history[-(config.baseline_n + 1):-1]
        baseline = _median(window)
        if baseline == 0:
            continue
        change = (newest - baseline) / abs(baseline)
        regressed = (
            change <= -config.threshold
            if direction == "up"
            else change >= config.threshold
        )
        if not regressed:
            continue
        findings.append(
            {
                "kind": kind,
                "name": name,
                "metric": metric,
                "direction": direction,
                "baseline": baseline,
                "baseline_points": len(window),
                "latest": newest,
                "change": change,
                "threshold": config.threshold,
                "ts": points[-1]["ts"],
                "run_id": points[-1]["run_id"],
                "git_sha": points[-1]["git_sha"],
            }
        )
    return findings


def detect_ranking_flips(records) -> list[dict]:
    """Report consecutive records whose policy rankings differ.

    Records carrying a ``rankings`` section are grouped by
    ``(kind, name)``; within each group every consecutive pair is
    compared scenario by scenario.  Each differing scenario yields one
    flip dict with the before/after orders and the policy pairs whose
    relative order inverted.
    """
    groups: dict[tuple, list[dict]] = {}
    for record in sorted(records, key=_sort_key):
        if record.get("rankings"):
            groups.setdefault(
                (record["kind"], record["name"]), []
            ).append(record)
    flips: list[dict] = []
    for (kind, name), group in sorted(groups.items()):
        for previous, current in zip(group, group[1:]):
            for scenario in sorted(
                set(previous["rankings"]) & set(current["rankings"])
            ):
                before = list(previous["rankings"][scenario])
                after = list(current["rankings"][scenario])
                if before == after:
                    continue
                flips.append(
                    {
                        "kind": kind,
                        "name": name,
                        "scenario": scenario,
                        "before": before,
                        "after": after,
                        "swapped": _swapped_pairs(before, after),
                        "ts": current["ts"],
                        "run_id": current["run_id"],
                        "git_sha": current.get("git_sha"),
                    }
                )
    return flips


def _swapped_pairs(before: list, after: list) -> list[list]:
    """Policy pairs whose relative order inverted between rankings."""
    pos_before = {p: i for i, p in enumerate(before)}
    pos_after = {p: i for i, p in enumerate(after)}
    common = [p for p in before if p in pos_after]
    pairs: list[list] = []
    for i, a in enumerate(common):
        for b in common[i + 1:]:
            if (pos_before[a] - pos_before[b]) * (
                pos_after[a] - pos_after[b]
            ) < 0:
                pairs.append(sorted([a, b]))
    return pairs


def trend_report(
    records,
    config: TrendConfig | None = None,
    *,
    max_points: int = 100,
) -> dict:
    """The full trend picture: series, regressions, ranking flips.

    The shape served at ``/trends.json``.  Series keys flatten to
    ``"kind/name/metric"`` strings; each series carries its rendered
    points (newest ``max_points``), direction, and latest value.
    """
    config = config or TrendConfig()
    records = list(records)
    flagged = {
        (f["kind"], f["name"], f["metric"]): f
        for f in detect_regressions(records, config)
    }
    series_out = {}
    for key, points in sorted(metric_series(records).items()):
        kind, name, metric = key
        series_out["/".join(key)] = {
            "kind": kind,
            "name": name,
            "metric": metric,
            "direction": metric_direction(metric, config.directions),
            "points": [
                [p["ts"], p["value"]] for p in points[-max_points:]
            ],
            "latest": points[-1]["value"],
            "regressed": key in flagged,
        }
    return {
        "config": {
            "threshold": config.threshold,
            "baseline_n": config.baseline_n,
            "min_points": config.min_points,
        },
        "records": len(records),
        "series": series_out,
        "regressions": sorted(
            flagged.values(),
            key=lambda f: (f["kind"], f["name"], f["metric"]),
        ),
        "ranking_flips": detect_ranking_flips(records),
    }
