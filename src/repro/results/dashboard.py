"""Zero-dependency static HTML dashboard.

Renders the operator console the live daemon serves at ``/dashboard``
(and ``repro-paper results dashboard`` writes offline): health tiles,
per-window stall-cause shares, alert history, benchmark trend
sparklines, regression flags, and policy-comparison tables — all as
one self-contained HTML document.  Charts are inline SVG built here by
hand; there is no JavaScript, no external stylesheet, no framework,
and nothing to fetch: the page is a pure function of its input dicts,
so it renders identically from a daemon snapshot, a CI artifact, or a
file opened from disk years later.

Every input section is optional; missing data renders as an honest
"no data" note instead of an empty chart, so the page is useful from
the first minute of a fresh daemon.
"""

from __future__ import annotations

import html

#: Okabe-Ito palette: colorblind-safe, print-safe, readable on white.
_PALETTE = (
    "#0072B2",  # blue
    "#E69F00",  # orange
    "#009E73",  # green
    "#CC79A7",  # purple-pink
    "#56B4E9",  # sky
    "#D55E00",  # vermillion
    "#F0E442",  # yellow
    "#999999",  # grey
)

_GOOD = "#009E73"
_BAD = "#D55E00"
_INK = "#1a1a2e"
_MUTED = "#667085"

_CSS = """
:root { color-scheme: light; }
body { font: 14px/1.5 system-ui, -apple-system, 'Segoe UI', sans-serif;
       margin: 0; background: #f4f6f8; color: %(ink)s; }
header { background: %(ink)s; color: #fff; padding: 14px 28px; }
header h1 { font-size: 18px; margin: 0; font-weight: 600; }
header p { margin: 2px 0 0; color: #b6c2cf; font-size: 12px; }
main { max-width: 1200px; margin: 0 auto; padding: 20px 28px 48px; }
section { margin-top: 28px; }
h2 { font-size: 15px; margin: 0 0 10px; font-weight: 600; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile { background: #fff; border: 1px solid #e3e8ee; border-radius: 8px;
        padding: 10px 16px; min-width: 130px; }
.tile .v { font-size: 20px; font-weight: 600; }
.tile .k { font-size: 11px; color: %(muted)s; text-transform: uppercase;
           letter-spacing: .04em; }
.tile.bad .v { color: %(bad)s; }
.tile.good .v { color: %(good)s; }
table { border-collapse: collapse; background: #fff; width: 100%%;
        border: 1px solid #e3e8ee; border-radius: 8px; }
th, td { text-align: left; padding: 6px 12px; font-size: 13px;
         border-top: 1px solid #eef1f4; vertical-align: middle; }
th { background: #fafbfc; color: %(muted)s; font-weight: 600;
     font-size: 11px; text-transform: uppercase; letter-spacing: .04em;
     border-top: none; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.flag { display: inline-block; border-radius: 4px; padding: 1px 7px;
        font-size: 11px; font-weight: 600; color: #fff; }
.flag.bad { background: %(bad)s; }
.flag.ok { background: %(good)s; }
.flag.info { background: #667085; }
.legend { font-size: 12px; color: %(muted)s; margin-top: 6px; }
.legend span.swatch { display: inline-block; width: 10px; height: 10px;
        border-radius: 2px; margin: 0 4px 0 10px; vertical-align: baseline; }
.note { color: %(muted)s; font-size: 13px; }
svg { display: block; }
svg.spark { display: inline-block; vertical-align: middle; }
""" % {"ink": _INK, "muted": _MUTED, "good": _GOOD, "bad": _BAD}


def _esc(value) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value, digits: int = 3) -> str:
    """Compact human number: 12345.678 -> '12345.7', 0.1234 -> '0.123'."""
    if value is None:
        return "–"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        if abs(value) >= 1:
            return f"{value:.{digits}g}"
        return f"{value:.{digits}g}"
    return str(value)


def cause_color(name: str, order: "list[str] | None" = None) -> str:
    """Stable palette assignment: by position in ``order`` when given,
    else by a deterministic hash of the name."""
    if order and name in order:
        return _PALETTE[order.index(name) % len(_PALETTE)]
    return _PALETTE[sum(name.encode()) % len(_PALETTE)]


# -- SVG primitives ----------------------------------------------------
def sparkline(
    values: "list[float]",
    *,
    width: int = 150,
    height: int = 34,
    color: str = _PALETTE[0],
) -> str:
    """Inline SVG sparkline of a value series (newest rightmost)."""
    if not values:
        return '<span class="note">no points</span>'
    pad = 3.0
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    inner_w, inner_h = width - 2 * pad, height - 2 * pad
    if len(values) == 1:
        xs = [pad + inner_w / 2]
    else:
        step = inner_w / (len(values) - 1)
        xs = [pad + i * step for i in range(len(values))]
    ys = [pad + inner_h * (1 - (v - lo) / span) for v in values]
    points = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(xs, ys))
    last_x, last_y = xs[-1], ys[-1]
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="trend of {len(values)} points">'
        f'<polyline points="{points}" fill="none" stroke="{color}" '
        f'stroke-width="1.5" stroke-linejoin="round" '
        f'stroke-linecap="round"></polyline>'
        f'<circle cx="{last_x:.1f}" cy="{last_y:.1f}" r="2.5" '
        f'fill="{color}"></circle>'
        f"</svg>"
    )


def share_bar(
    shares: "dict[str, float]",
    *,
    order: "list[str] | None" = None,
    width: int = 260,
    height: int = 16,
) -> str:
    """One horizontal stacked bar of named shares (values sum to <=1)."""
    order = order or sorted(shares)
    x = 0.0
    rects = []
    for name in order:
        share = float(shares.get(name, 0.0))
        if share <= 0:
            continue
        w = max(0.0, min(1.0, share)) * width
        rects.append(
            f'<rect x="{x:.1f}" y="0" width="{w:.1f}" '
            f'height="{height}" fill="{cause_color(name, order)}">'
            f"<title>{_esc(name)}: {share * 100:.1f}%</title></rect>"
        )
        x += w
    if not rects:
        rects.append(
            f'<rect x="0" y="0" width="{width}" height="{height}" '
            f'fill="#e3e8ee"></rect>'
        )
    return (
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="share breakdown">{"".join(rects)}</svg>'
    )


# -- sections ----------------------------------------------------------
def _tiles(health: dict) -> str:
    def tile(label, value, cls=""):
        cls_attr = f' class="tile {cls}"' if cls else ' class="tile"'
        return (
            f"<div{cls_attr}><div class=\"v\">{_esc(value)}</div>"
            f'<div class="k">{_esc(label)}</div></div>'
        )

    alerts = health.get("alerts_active") or []
    tiles = [
        tile("records in", _fmt(health.get("records_in", 0))),
        tile("flows", _fmt(health.get("flows", 0))),
        tile("flows skipped", _fmt(health.get("flows_skipped", 0))),
        tile("windows active", _fmt(health.get("windows_active", 0))),
        tile(
            "alerts firing",
            len(alerts),
            cls="bad" if alerts else "good",
        ),
    ]
    checkpoint_age = health.get("checkpoint_age_seconds")
    if checkpoint_age is not None:
        tiles.append(
            tile("checkpoint age", f"{checkpoint_age:.0f}s")
        )
    store_age = health.get("store_append_age_seconds")
    if store_age is not None:
        tiles.append(tile("store append age", f"{store_age:.0f}s"))
    return '<div class="tiles">' + "".join(tiles) + "</div>"


def _windows_section(report: "dict | None") -> str:
    if not report or not report.get("windows"):
        return '<p class="note">No completed windows yet.</p>'
    windows = report["windows"][-12:]
    causes_seen: list[str] = []
    for window in windows:
        for name in sorted(window.get("causes", {})):
            if name not in causes_seen:
                causes_seen.append(name)
    rows = []
    for window in windows:
        shares = {
            name: entry.get("time_share", 0.0)
            for name, entry in window.get("causes", {}).items()
        }
        rows.append(
            "<tr>"
            f'<td class="num">{_fmt(window.get("start"))}s–'
            f'{_fmt(window.get("end"))}s</td>'
            f'<td class="num">{_fmt(window.get("flows", 0))}</td>'
            f'<td class="num">{_fmt(window.get("stalls", 0))}</td>'
            f'<td class="num">'
            f'{window.get("stall_ratio", 0.0) * 100:.1f}%</td>'
            f"<td>{share_bar(shares, order=causes_seen)}</td>"
            "</tr>"
        )
    legend = "".join(
        f'<span class="swatch" '
        f'style="background:{cause_color(name, causes_seen)}"></span>'
        f"{_esc(name)}"
        for name in causes_seen
    )
    legend_html = (
        f'<p class="legend">stall-cause time shares:{legend}</p>'
        if causes_seen
        else ""
    )
    return (
        "<table><thead><tr><th>window</th><th>flows</th><th>stalls</th>"
        "<th>stall ratio</th><th>causes (time share)</th></tr></thead>"
        "<tbody>" + "".join(rows) + "</tbody></table>" + legend_html
    )


def _alerts_section(alerts: "list[dict] | None") -> str:
    if not alerts:
        return '<p class="note">No alert events.</p>'
    rows = []
    for event in list(alerts)[-20:][::-1]:
        state = event.get("state", "?")
        flag = "bad" if state == "firing" else "ok"
        rows.append(
            "<tr>"
            f'<td class="num">{_fmt(event.get("trace_time"))}s</td>'
            f'<td><span class="flag {flag}">{_esc(state)}</span></td>'
            f'<td>{_esc(event.get("alert", ""))}</td>'
            f'<td>{_esc(event.get("metric", ""))}</td>'
            f'<td class="num">{_fmt(event.get("value"))}</td>'
            f'<td class="num">{_fmt(event.get("threshold"))}</td>'
            "</tr>"
        )
    return (
        "<table><thead><tr><th>trace time</th><th>state</th><th>alert</th>"
        "<th>metric</th><th>value</th><th>threshold</th></tr></thead>"
        "<tbody>" + "".join(rows) + "</tbody></table>"
    )


def _trends_section(trends: "dict | None", max_series: int = 24) -> str:
    series = (trends or {}).get("series") or {}
    if not series:
        return (
            '<p class="note">No result records yet — point the daemon '
            "at a results store (--results-store) and run a benchmark "
            "with the same store to populate trends.</p>"
        )
    shown = sorted(
        series.items(),
        key=lambda kv: (not kv[1].get("regressed"), kv[0]),
    )[:max_series]
    rows = []
    for key, entry in shown:
        values = [point[1] for point in entry.get("points", [])]
        regressed = entry.get("regressed")
        color = _BAD if regressed else _PALETTE[0]
        flag = (
            '<span class="flag bad">regressed</span>'
            if regressed
            else '<span class="flag ok">ok</span>'
        )
        rows.append(
            "<tr>"
            f"<td>{_esc(key)}</td>"
            f"<td>{sparkline(values, color=color)}</td>"
            f'<td class="num">{_fmt(entry.get("latest"))}</td>'
            f'<td>{_esc(entry.get("direction") or "—")}</td>'
            f"<td>{flag}</td>"
            "</tr>"
        )
    dropped = len(series) - len(shown)
    more = (
        f'<p class="note">{dropped} more series in /trends.json.</p>'
        if dropped > 0
        else ""
    )
    return (
        "<table><thead><tr><th>series</th><th>trend</th><th>latest</th>"
        "<th>good dir</th><th>status</th></tr></thead><tbody>"
        + "".join(rows)
        + "</tbody></table>"
        + more
    )


def _regressions_section(trends: "dict | None") -> str:
    regressions = (trends or {}).get("regressions") or []
    flips = (trends or {}).get("ranking_flips") or []
    if not regressions and not flips:
        return (
            '<p class="note">No regressions or ranking flips '
            "detected.</p>"
        )
    parts = []
    if regressions:
        rows = [
            "<tr>"
            f'<td>{_esc(f["kind"])}/{_esc(f["name"])}</td>'
            f'<td>{_esc(f["metric"])}</td>'
            f'<td class="num">{_fmt(f["baseline"])}</td>'
            f'<td class="num">{_fmt(f["latest"])}</td>'
            f'<td class="num">{f["change"] * 100:+.1f}%</td>'
            f'<td>{_esc((f.get("git_sha") or "")[:10])}</td>'
            "</tr>"
            for f in regressions
        ]
        parts.append(
            "<table><thead><tr><th>series</th><th>metric</th>"
            "<th>baseline</th><th>latest</th><th>change</th>"
            "<th>commit</th></tr></thead><tbody>"
            + "".join(rows)
            + "</tbody></table>"
        )
    if flips:
        rows = [
            "<tr>"
            f'<td>{_esc(f["kind"])}/{_esc(f["name"])}</td>'
            f'<td>{_esc(f["scenario"])}</td>'
            f'<td>{_esc(" > ".join(f["before"]))}</td>'
            f'<td>{_esc(" > ".join(f["after"]))}</td>'
            f'<td>{_esc(", ".join("/".join(p) for p in f["swapped"]))}'
            "</td></tr>"
            for f in flips
        ]
        parts.append(
            "<table><thead><tr><th>series</th><th>scenario</th>"
            "<th>before</th><th>after</th><th>swapped pairs</th>"
            "</tr></thead><tbody>" + "".join(rows) + "</tbody></table>"
        )
    return "".join(parts)


def _rankings_section(runs: "list[dict] | None") -> str:
    """Latest policy-comparison table from the newest ranked record."""
    newest = None
    for record in runs or []:
        if record.get("rankings"):
            newest = record
    if newest is None:
        return '<p class="note">No ranked policy records yet.</p>'
    rows = [
        "<tr>"
        f"<td>{_esc(scenario)}</td>"
        f'<td>{_esc(" > ".join(order))}</td>'
        "</tr>"
        for scenario, order in sorted(newest["rankings"].items())
    ]
    return (
        f'<p class="note">from {_esc(newest["kind"])}/'
        f'{_esc(newest["name"])} run {_esc(newest["run_id"][:10])} '
        f'(best first)</p>'
        "<table><thead><tr><th>scenario</th><th>policy ranking</th>"
        "</tr></thead><tbody>" + "".join(rows) + "</tbody></table>"
    )


def _matrix_section(runs: "list[dict] | None") -> str:
    """Policy-ranking grid from the newest matrix record.

    Rows are workloads, columns are path scenarios, each cell the
    policy order (best first) of that scenario — the ``repro-paper
    matrix`` tournament at a glance.  Matrix records key their
    rankings ``workload/path``; records without such keys (e.g. the
    per-service mitigation sweep) are left to the generic policy-
    comparison section.
    """
    newest = None
    for record in runs or []:
        if record.get("name") == "matrix" and record.get("rankings"):
            newest = record
    if newest is None:
        return (
            '<p class="note">No matrix runs yet — run '
            "<code>repro-paper matrix --results-store ...</code>.</p>"
        )
    grid: dict[str, dict[str, list]] = {}
    paths: list[str] = []
    for scenario, order in newest["rankings"].items():
        workload, sep, path = scenario.partition("/")
        if not sep:
            workload, path = scenario, ""
        grid.setdefault(workload, {})[path] = order
        if path not in paths:
            paths.append(path)
    head = "".join(f"<th>{_esc(path)}</th>" for path in paths)
    rows = []
    for workload in grid:
        cells = []
        for path in paths:
            order = grid[workload].get(path)
            if not order:
                cells.append("<td>—</td>")
                continue
            winner, rest = order[0], order[1:]
            cells.append(
                f'<td><span class="flag ok">{_esc(winner)}</span>'
                + (f' &gt; {_esc(" > ".join(rest))}' if rest else "")
                + "</td>"
            )
        rows.append(f"<tr><td>{_esc(workload)}</td>{''.join(cells)}</tr>")
    return (
        f'<p class="note">from run {_esc(newest["run_id"][:10])} '
        "(winner highlighted, best first)</p>"
        f"<table><thead><tr><th>workload</th>{head}</tr></thead>"
        "<tbody>" + "".join(rows) + "</tbody></table>"
    )


def _runs_section(runs: "list[dict] | None", limit: int = 15) -> str:
    if not runs:
        return '<p class="note">The results store is empty.</p>'
    rows = []
    for record in list(runs)[-limit:][::-1]:
        metrics = record.get("metrics") or {}
        rows.append(
            "<tr>"
            f'<td class="num">{_fmt(record.get("ts"))}</td>'
            f'<td><span class="flag info">{_esc(record["kind"])}</span>'
            "</td>"
            f'<td>{_esc(record["name"])}</td>'
            f'<td>{_esc(record["run_id"][:10])}</td>'
            f'<td>{_esc((record.get("git_sha") or "")[:10])}</td>'
            f'<td class="num">{len(metrics)}</td>'
            f'<td class="num">{_fmt(record.get("wall_time"))}</td>'
            "</tr>"
        )
    return (
        "<table><thead><tr><th>ts</th><th>kind</th><th>name</th>"
        "<th>run</th><th>commit</th><th>metrics</th><th>wall s</th>"
        "</tr></thead><tbody>" + "".join(rows) + "</tbody></table>"
    )


def render_dashboard(
    *,
    title: str = "repro results",
    health: "dict | None" = None,
    report: "dict | None" = None,
    trends: "dict | None" = None,
    runs: "list[dict] | None" = None,
    alerts: "list[dict] | None" = None,
    subtitle: str = "",
) -> str:
    """Render the full operator dashboard as one HTML document.

    Every argument is optional; the page degrades to honest "no data"
    notes.  ``report`` is the daemon's ``windows`` report shape
    (:meth:`repro.live.windows.WindowStore.report`), ``trends`` the
    :func:`repro.results.trends.trend_report` shape, ``runs`` a list
    of store records (file order), ``alerts`` a list of alert-event
    dicts (oldest first).
    """
    sections = [
        ("Health", _tiles(health or {})),
        ("Rolling windows — stall-cause shares", _windows_section(report)),
        ("Alert history", _alerts_section(alerts)),
        ("Benchmark trends", _trends_section(trends)),
        ("Regressions &amp; ranking flips", _regressions_section(trends)),
        ("Policy comparison", _rankings_section(runs)),
        ("Policy tournament — scenario grid", _matrix_section(runs)),
        ("Recent result records", _runs_section(runs)),
    ]
    body = "".join(
        f"<section><h2>{heading}</h2>{content}</section>"
        for heading, content in sections
    )
    return (
        "<!DOCTYPE html>"
        '<html lang="en"><head><meta charset="utf-8">'
        '<meta name="viewport" '
        'content="width=device-width, initial-scale=1">'
        f"<title>{_esc(title)}</title>"
        f"<style>{_CSS}</style></head>"
        f"<body><header><h1>{_esc(title)}</h1>"
        f"<p>{_esc(subtitle) if subtitle else 'longitudinal results store &amp; live monitor'}</p>"
        f"</header><main>{body}</main></body></html>"
    )
