"""Longitudinal results store, trend engine, and dashboard.

See :mod:`repro.results.store` for the record schema,
:mod:`repro.results.trends` for regression/ranking-flip detection, and
:mod:`repro.results.dashboard` for the zero-dependency HTML renderer.
"""

from .dashboard import render_dashboard
from .store import (
    SCHEMA_VERSION,
    ResultsStore,
    config_hash,
    current_git_sha,
    flatten_metrics,
    merge_records,
    new_run_id,
    record_fields_from_registry,
    record_fields_from_report,
    validate_record,
)
from .trends import (
    TrendConfig,
    detect_ranking_flips,
    detect_regressions,
    metric_direction,
    metric_series,
    trend_report,
)

__all__ = [
    "SCHEMA_VERSION",
    "ResultsStore",
    "TrendConfig",
    "config_hash",
    "current_git_sha",
    "detect_ranking_flips",
    "detect_regressions",
    "flatten_metrics",
    "merge_records",
    "metric_direction",
    "metric_series",
    "new_run_id",
    "record_fields_from_registry",
    "record_fields_from_report",
    "render_dashboard",
    "trend_report",
    "validate_record",
]
